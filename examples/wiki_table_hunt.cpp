/// \file wiki_table_hunt.cpp
/// Recreates the paper's headline experiment narrative (Sec. 4.3): scan a
/// large set of Wikipedia-style table columns that are *supposed* to be
/// clean, and report how many errors Auto-Detect surfaces, with per-class
/// precision against the construction-time ground truth.
///
/// Run:  ./wiki_table_hunt [num_columns]

#include <cstdio>
#include <map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "eval/harness.h"

using namespace autodetect;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  size_t num_columns = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 8000;

  HarnessConfig config;
  config.train_columns = 20000;
  config.cache_dir = "bench_cache";
  auto model = TrainOrLoadModel(config);
  AD_CHECK_OK(model.status());
  Detector detector(&*model);
  SequentialExecutor executor(&detector);

  // WIKI-style columns at the paper's measured cleanliness (97.8% clean).
  GeneratorOptions gen;
  gen.profile = CorpusProfile::Wiki();
  gen.num_columns = num_columns;
  gen.inject_errors = true;
  gen.seed = 8'210'2017;  // the paper's data snapshot date
  Corpus corpus = GenerateCorpus(gen);

  std::printf("scanning %zu WIKI-style columns (%zu truly dirty)...\n\n",
              corpus.size(), corpus.CountDirty());

  Stopwatch watch;
  size_t flagged = 0, correct = 0;
  std::map<std::string, std::pair<size_t, size_t>> per_class;  // hit, total
  for (const auto& column : corpus.columns()) {
    ColumnReport report =
        executor.DetectOne(DetectRequest{column.domain, column.values, RequestContext{"", "wiki"}}).column;
    if (column.dirty()) {
      auto& bucket = per_class[std::string(ErrorClassName(column.error_class))];
      ++bucket.second;
      if (report.HasFindings() && report.Top()->value == column.dirty_value()) {
        ++bucket.first;
      }
    }
    if (!report.HasFindings()) continue;
    ++flagged;
    correct += column.dirty() && report.Top()->value == column.dirty_value() ? 1 : 0;
  }
  double seconds = watch.ElapsedSeconds();

  std::printf("flagged %zu columns, %zu verified correct (precision %.3f)\n",
              flagged, correct,
              flagged ? static_cast<double>(correct) / static_cast<double>(flagged)
                      : 0.0);
  std::printf("scan rate: %.0f columns/s (%.2f ms/column)\n\n",
              static_cast<double>(corpus.size()) / seconds,
              1000.0 * seconds / static_cast<double>(corpus.size()));

  std::printf("recall by error class (found/total):\n");
  for (const auto& [name, hit_total] : per_class) {
    std::printf("  %-20s %3zu / %-3zu\n", name.c_str(), hit_total.first,
                hit_total.second);
  }
  std::printf(
      "\n(The paper extrapolates ~294K +/- 24K true errors across the real\n"
      "30M-column WIKI corpus from the same kind of scan.)\n");
  return 0;
}
