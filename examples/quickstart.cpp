/// \file quickstart.cpp
/// Minimal end-to-end tour of the Auto-Detect API:
///   1. synthesize a (clean) training corpus,
///   2. train a model under a memory budget and precision target,
///   3. scan some columns — including the paper's introductory examples
///      Col-1/Col-2/Col-3 — for incompatible values.
///
/// Run:  ./quickstart [num_training_columns]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"

using namespace autodetect;

namespace {

void ScanColumn(SequentialExecutor& executor, const std::string& title,
                const std::vector<std::string>& values) {
  DetectReport report = executor.DetectOne(DetectRequest{title, values, RequestContext{"", "quickstart"}});
  std::printf("\n== %s (%zu values, %zu distinct)\n", title.c_str(), values.size(),
              report.column.distinct_values);
  if (!report.column.HasFindings()) {
    std::printf("   no incompatible values found\n");
    return;
  }
  for (const auto& cell : report.column.cells) {
    std::printf("   SUSPECT row %u: \"%s\"  (confidence %.3f, clashes with %u values)\n",
                cell.row, cell.value.c_str(), cell.confidence, cell.incompatible_with);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  size_t train_columns = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30000;

  // 1. Training corpus: clean synthetic web tables. (The paper trains on a
  // 93-98% clean corpus of 350M columns, where any specific incompatible
  // format pair still almost never shares a column. At our reduced scale,
  // injected dirt would concentrate into measurable co-occurrence between
  // incompatible formats and distort the statistics, so training corpora
  // here are generated clean — see DESIGN.md.)
  GeneratorOptions gen;
  gen.profile = CorpusProfile::Web();
  gen.num_columns = train_columns;
  gen.inject_errors = false;
  gen.seed = 20180610;  // SIGMOD'18 opening day
  GeneratedColumnSource source(gen);

  // 2. Train: P >= 0.95, 64 MB budget.
  TrainOptions train;
  train.precision_target = 0.95;
  train.memory_budget_bytes = 64ull << 20;
  train.corpus_name = "WEB-synthetic";
  auto model_result = TrainModel(&source, train);
  AD_CHECK_OK(model_result.status());
  const Model& model = *model_result;
  std::printf("%s", model.Summary().c_str());

  Detector detector(&model);
  // The sequential executor of the unified detection API: one scratch,
  // reused across every scan below.
  SequentialExecutor executor(&detector);

  // 3a. Paper Col-1: mixed thousand separators are NOT errors.
  std::vector<std::string> col1;
  for (int i = 990; i <= 999; ++i) col1.push_back(std::to_string(i));
  col1.push_back("1,000");
  ScanColumn(executor, "Col-1: integers with one separated value (clean)", col1);

  // 3b. Paper Col-2: occasional floats among integers are NOT errors.
  std::vector<std::string> col2;
  for (int i = 90; i <= 99; ++i) col2.push_back(std::to_string(i));
  col2.push_back("1.99");
  ScanColumn(executor, "Col-2: integers with one float (clean)", col2);

  // 3c. Paper Col-3: mixed date formats ARE errors.
  std::vector<std::string> col3 = {"2011-01-01", "2011-01-02", "2011-01-03",
                                   "2011-01-04", "2011-01-05", "2011/01/06"};
  ScanColumn(executor, "Col-3: mixed date formats (dirty)", col3);

  // 3d. An extra trailing dot (paper Fig. 1a / Table 4).
  std::vector<std::string> col4 = {"1962", "1981", "1974", "1990", "2003", "1865."};
  ScanColumn(executor, "Years with a stray trailing dot (dirty)", col4);

  // 3e. Pairwise API.
  auto verdict = detector.ScorePair("2011-01-01", "2011.01.02");
  std::printf("\nScorePair(\"2011-01-01\", \"2011.01.02\"): %s (confidence %.3f)\n",
              verdict.incompatible ? "INCOMPATIBLE" : "compatible", verdict.confidence);
  verdict = detector.ScorePair("100", "1,000,000");
  std::printf("ScorePair(\"100\", \"1,000,000\"): %s (confidence %.3f)\n",
              verdict.incompatible ? "INCOMPATIBLE" : "compatible", verdict.confidence);
  return 0;
}
