/// \file format_mixture_demo.cpp
/// Walks through the paper's core intuition with live numbers: which value
/// mixtures are compatible (co-occur globally) and which are errors, and
/// how the different selected generalization languages "see" each pair.
/// This is the explain-yourself view of the detector.
///
/// Run:  ./format_mixture_demo

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "detect/detector.h"
#include "eval/harness.h"
#include "stats/npmi.h"
#include "text/pattern.h"

using namespace autodetect;

namespace {

void Explain(const Detector& detector, const std::string& u, const std::string& v,
             const char* expectation) {
  const Model& model = detector.model();
  PairVerdict verdict = detector.ScorePair(u, v);
  std::printf("\n\"%s\"  vs  \"%s\"   ->  %s (confidence %.3f)   [%s]\n", u.c_str(),
              v.c_str(), verdict.incompatible ? "INCOMPATIBLE" : "compatible",
              verdict.confidence, expectation);
  for (const auto& l : model.languages) {
    NpmiScorer scorer(&l.stats, model.smoothing_factor);
    uint64_t ku = GeneralizeToKey(u, l.language());
    uint64_t kv = GeneralizeToKey(v, l.language());
    double s = scorer.Score(ku, kv);
    std::printf("   %-26s %-22s | %-22s npmi %+5.2f vs theta %+5.2f %s\n",
                l.language().Name().c_str(),
                GeneralizeToString(u, l.language()).c_str(),
                GeneralizeToString(v, l.language()).c_str(), s, l.threshold,
                s <= l.threshold ? "<-- fires" : "");
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  HarnessConfig config;
  config.train_columns = 20000;
  config.cache_dir = "bench_cache";
  auto model = TrainOrLoadModel(config);
  AD_CHECK_OK(model.status());
  Detector detector(&*model);

  std::printf("Selected generalization languages:\n%s", model->Summary().c_str());

  // The paper's introduction, as pair judgments.
  Explain(detector, "999", "1,000", "paper Col-1: compatible");
  Explain(detector, "99", "1.99", "paper Col-2: compatible");
  Explain(detector, "2011-01-01", "2011/01/02", "paper Col-3: error");
  Explain(detector, "2011-01-01", "2011.01.02", "paper Example 2 (v1,v2): error");
  Explain(detector, "2014-01", "July-01", "paper Example 2 (v3,v4): error");
  Explain(detector, "1918-01-01", "2018-12-31", "paper Sec 2.2: compatible");
  Explain(detector, "1962", "1865.", "paper Fig 1a / Table 4: error");
  Explain(detector, "(425) 555-0123", "425.555.0123", "paper Fig 2b: error");
  // Fig 1c's inconsistent weights are *structural* ("12 st 7 lb" vs metric);
  // a pure unit-word swap ("kg" vs "lb") is invisible to any language that
  // generalizes lowercase letters, and the selected ensemble does.
  Explain(detector, "12 st 7 lb", "79 kg", "paper Fig 1c: error");
  Explain(detector, "Seattle", "N/A", "paper Fig 1d: error");
  return 0;
}
