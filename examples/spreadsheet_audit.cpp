/// \file spreadsheet_audit.cpp
/// Audits a directory of CSV spreadsheets for single-column errors — the
/// paper's enterprise-Excel scenario (Sec. 4.1, Ent-XLS). For each file,
/// every column is scanned with a trained Auto-Detect model and suspected
/// cells are reported with confidence.
///
/// Run:  ./spreadsheet_audit [directory]
/// Without a directory, a small demo workbook set is generated first.

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "eval/csv_benchmark.h"
#include "eval/harness.h"
#include "io/csv.h"

using namespace autodetect;
namespace fs = std::filesystem;

namespace {

Result<Model> GetModel() {
  HarnessConfig config;
  config.train_columns = 20000;
  config.cache_dir = "bench_cache";
  return TrainOrLoadModel(config);
}

void AuditFile(SequentialExecutor& executor, const std::string& path) {
  auto table = ReadCsvFile(path);
  if (!table.ok()) {
    std::printf("  ! cannot parse %s: %s\n", path.c_str(),
                table.status().ToString().c_str());
    return;
  }
  size_t findings = 0;
  for (size_t c = 0; c < table->num_cols(); ++c) {
    ColumnReport report =
        executor.DetectOne(DetectRequest{table->header[c], table->Column(c), RequestContext{"", "audit"}})
            .column;
    for (const auto& cell : report.cells) {
      ++findings;
      std::printf("  %-24s column %-12s row %-4u  \"%s\"  (confidence %.3f)\n",
                  fs::path(path).filename().c_str(),
                  table->header[c].c_str(), cell.row + 2,  // 1-based + header
                  cell.value.c_str(), cell.confidence);
    }
  }
  if (findings == 0) {
    std::printf("  %-24s clean\n", fs::path(path).filename().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    // Generate a demo workbook directory on first use.
    dir = "audit_demo";
    CsvBenchmarkOptions demo;
    demo.directory = dir;
    demo.num_files = 6;
    demo.total_columns = 30;
    demo.dirty_fraction = 0.4;
    auto built = BuildCsvBenchmark(demo);
    AD_CHECK_OK(built.status());
    std::printf("(no directory given; generated demo spreadsheets in %s/)\n\n",
                dir.c_str());
  }

  auto model = GetModel();
  AD_CHECK_OK(model.status());
  Detector detector(&*model);
  SequentialExecutor executor(&detector);
  std::printf("model: %zu languages, %s resident\n\n", model->languages.size(),
              HumanBytes(model->MemoryBytes()).c_str());

  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    if (entry.path().filename() == "labels.csv") continue;
    AuditFile(executor, entry.path().string());
    ++files;
  }
  std::printf("\naudited %zu files\n", files);
  return files > 0 ? 0 : 1;
}
