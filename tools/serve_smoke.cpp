/// \file serve_smoke.cpp
/// Black-box smoke client for `autodetect_cli serve`, driven by
/// tools/run_tier1.sh's SERVE leg. Each mode proves one serving contract
/// from outside the process and exits non-zero on any deviation:
///
///   serve_smoke --port N --mode wire       ADWIRE1 round trip: one batch,
///                                          every column reported, batch-done
///   serve_smoke --port N --mode http       POST /detect JSON + GET /healthz
///   serve_smoke --port N --mode metrics    GET /metrics to stdout (caller
///                                          greps for required counters)
///   serve_smoke --port N --mode slowloris  trickle a partial request; PASS
///                                          only if the server closes us
///                                          (sheds the slot) within
///                                          --wait-ms instead of hanging
///   serve_smoke --port N --mode drain --pid P
///                                          send a batch, SIGTERM the server
///                                          mid-flight, and require every
///                                          admitted column to still report
///                                          (zero dropped in-flight work)
///                                          while new connections are refused
///   serve_smoke --port N --mode wedge      with serve.worker.wedge armed in
///                                          the server: drive a request and
///                                          watch /healthz flip to degraded,
///                                          then recover to healthy
///
/// Uses the blocking client helpers (net/client.h) — deliberately a separate
/// implementation from the server's async path, so agreement between the two
/// is evidence, not tautology.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "flag_set.h"
#include "net/client.h"
#include "net/json.h"
#include "net/wire.h"

using namespace autodetect;

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "serve_smoke: FAIL: %s\n", what.c_str());
  return 1;
}

int FailStatus(const std::string& what, const Status& status) {
  return Fail(what + ": " + status.ToString());
}

WireRequest SmokeRequest(const std::string& tenant) {
  WireRequest request;
  request.request_id = 7;
  request.tenant = tenant;
  request.tag = "smoke";
  request.columns.push_back(
      {"date", {"2011-01-01", "2011-01-02", "2011-01-03", "99-bad-99"}});
  request.columns.push_back({"qty", {"12", "15", "9", "twelve"}});
  return request;
}

int RunWire(const std::string& host, uint16_t port, const std::string& tenant) {
  auto client = WireClient::Connect(host, port);
  if (!client.ok()) return FailStatus("connect", client.status());
  WireRequest request = SmokeRequest(tenant);
  Status sent = client->SendRequest(request);
  if (!sent.ok()) return FailStatus("send", sent);
  auto batch = client->ReadBatch(request.request_id);
  if (!batch.ok()) return FailStatus("read batch", batch.status());
  if (batch->errored) return Fail("server error: " + batch->error.message);
  if (!batch->done) return Fail("no batch-done frame");
  if (batch->reports.size() != request.columns.size()) {
    return Fail("expected " + std::to_string(request.columns.size()) +
                " reports, got " + std::to_string(batch->reports.size()));
  }
  for (const WireReport& report : batch->reports) {
    std::printf("serve_smoke: wire column %llu '%s' status=%s findings=%zu\n",
                static_cast<unsigned long long>(report.column_index),
                report.report.name.c_str(),
                std::string(ColumnStatusName(report.report.status)).c_str(),
                report.report.column.cells.size());
  }
  std::printf("serve_smoke: wire OK\n");
  return 0;
}

int RunHttp(const std::string& host, uint16_t port, const std::string& tenant) {
  auto health = HttpGet(host, port, "/healthz");
  if (!health.ok()) return FailStatus("GET /healthz", health.status());
  if (health->status_code != 200) {
    return Fail("/healthz returned " + std::to_string(health->status_code));
  }

  std::string body =
      "{\"tenant\":\"" + tenant +
      "\",\"tag\":\"smoke\",\"columns\":["
      "{\"name\":\"date\",\"values\":[\"2011-01-01\",\"2011-01-02\","
      "\"99-bad-99\"]},"
      "{\"name\":\"qty\",\"values\":[\"12\",\"15\",\"twelve\"]}]}";
  auto response = HttpPost(host, port, "/detect", body);
  if (!response.ok()) return FailStatus("POST /detect", response.status());
  if (response->status_code != 200) {
    return Fail("/detect returned " + std::to_string(response->status_code) +
                ": " + response->body);
  }
  auto json = ParseJson(response->body);
  if (!json.ok()) return FailStatus("parsing /detect response", json.status());
  const JsonValue* reports = json->Find("reports");
  if (reports == nullptr || !reports->IsArray() ||
      reports->array.size() != 2) {
    return Fail("expected 2 reports in /detect response: " + response->body);
  }
  std::printf("serve_smoke: http OK (%zu byte response)\n",
              response->body.size());
  return 0;
}

int RunMetrics(const std::string& host, uint16_t port) {
  auto response = HttpGet(host, port, "/metrics");
  if (!response.ok()) return FailStatus("GET /metrics", response.status());
  if (response->status_code != 200) {
    return Fail("/metrics returned " + std::to_string(response->status_code));
  }
  // Raw scrape to stdout; the caller greps for the counters it requires.
  std::fwrite(response->body.data(), 1, response->body.size(), stdout);
  return 0;
}

/// Trickles an eternally-incomplete HTTP request one byte at a time. A
/// correct server gives up on the slot after partial_timeout_ms and closes
/// the socket; a vulnerable one lets the connection park forever.
int RunSlowloris(const std::string& host, uint16_t port, int64_t wait_ms) {
  auto fd = RawConnect(host, port);
  if (!fd.ok()) return FailStatus("connect", fd.status());
  const std::string drip = "GET /healthz HT";  // never finishes the preamble
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
  size_t sent = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (sent < drip.size()) {
      if (::write(*fd, drip.data() + sent, 1) < 0) {
        // Server already shut the socket on us — that's the defense working.
        ::close(*fd);
        std::printf("serve_smoke: slowloris shed (write refused)\n");
        return 0;
      }
      ++sent;
    }
    struct pollfd pfd = {*fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready > 0) {
      char buf[256];
      ssize_t n = ::read(*fd, buf, sizeof(buf));
      if (n <= 0) {
        ::close(*fd);
        std::printf("serve_smoke: slowloris shed (connection closed)\n");
        return 0;
      }
      // Data back on a half-request would be a protocol bug.
      ::close(*fd);
      return Fail("server answered a partial request");
    }
  }
  ::close(*fd);
  return Fail("server kept the slow-loris connection open past " +
              std::to_string(wait_ms) + "ms");
}

/// Drain contract, proven from outside: a batch admitted before the drain
/// lands must complete in full — every column report plus the batch-done
/// frame — while the draining server refuses new work with a typed error
/// instead of a hang or a silent drop. With --pid the drain is triggered by
/// SIGTERM (the operator path); without it, by POST /drain (the API path).
int RunDrain(const std::string& host, uint16_t port, const std::string& tenant,
             int64_t server_pid, int64_t wait_ms) {
  auto client = WireClient::Connect(host, port);
  if (!client.ok()) return FailStatus("connect", client.status());

  // A batch heavy enough that the SIGTERM below reliably lands while its
  // columns are still in the dispatch pool.
  WireRequest request;
  request.request_id = 21;
  request.tenant = tenant;
  request.tag = "drain-smoke";
  for (int c = 0; c < 16; ++c) {
    WireColumn column;
    column.name = "col" + std::to_string(c);
    for (int v = 0; v < 400; ++v) {
      column.values.push_back("2011-01-" + std::to_string(v % 28 + 1));
    }
    column.values.push_back("not-a-date-" + std::to_string(c));
    request.columns.push_back(std::move(column));
  }
  Status sent = client->SendRequest(request);
  if (!sent.ok()) return FailStatus("send", sent);

  // Trigger the drain mid-batch from a helper thread while ReadBatch blocks.
  std::thread killer([&host, port, server_pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    if (server_pid > 0) {
      ::kill(static_cast<pid_t>(server_pid), SIGTERM);
    } else {
      auto posted = HttpPost(host, port, "/drain", "");
      (void)posted;  // refusal probing below judges the outcome
    }
  });
  auto batch = client->ReadBatch(request.request_id);
  killer.join();
  if (!batch.ok()) return FailStatus("read batch across drain", batch.status());
  if (batch->errored) {
    return Fail("in-flight batch errored during drain: " + batch->error.message);
  }
  if (!batch->done) return Fail("no batch-done frame during drain");
  if (batch->reports.size() != request.columns.size()) {
    return Fail("drain dropped in-flight columns: expected " +
                std::to_string(request.columns.size()) + " reports, got " +
                std::to_string(batch->reports.size()));
  }

  // New work must now be refused: either the listener is already closed
  // (connect fails) or a draining server answers with a typed error frame.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    auto probe = WireClient::Connect(host, port);
    if (!probe.ok()) {
      std::printf("serve_smoke: drain OK (%zu reports, listener closed)\n",
                  batch->reports.size());
      return 0;
    }
    WireRequest tiny = SmokeRequest(tenant);
    tiny.request_id = 22;
    if (!probe->SendRequest(tiny).ok()) {
      std::printf("serve_smoke: drain OK (%zu reports, send refused)\n",
                  batch->reports.size());
      return 0;
    }
    auto refused = probe->ReadBatch(tiny.request_id);
    if (!refused.ok() || refused->errored) {
      std::printf("serve_smoke: drain OK (%zu reports, new request refused)\n",
                  batch->reports.size());
      return 0;
    }
    // The drain may not have latched yet; give the server a beat and retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Fail("server still accepted new batches after SIGTERM");
}

/// Polls /healthz until its JSON body reports `state`, failing after the
/// deadline. Connection errors are retried — during recovery the server may
/// briefly be between accept loops.
int AwaitHealthState(const std::string& host, uint16_t port,
                     const std::string& state,
                     std::chrono::steady_clock::time_point deadline) {
  std::string last;
  while (std::chrono::steady_clock::now() < deadline) {
    auto health = HttpGet(host, port, "/healthz");
    if (health.ok()) {
      last = health->body;
      if (last.find("\"" + state + "\"") != std::string::npos) {
        std::printf("serve_smoke: /healthz reached %s\n", state.c_str());
        return 0;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Fail("/healthz never reported '" + state + "' (last body: " + last +
              ")");
}

/// Requires the server to run with serve.worker.wedge armed and a short
/// --wedge-timeout-ms: the wedged dispatch worker must flip the health
/// ladder to degraded, and once the worker unwedges the ladder must recover
/// to healthy on its own.
int RunWedge(const std::string& host, uint16_t port, const std::string& tenant,
             int64_t wait_ms) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::milliseconds(wait_ms);

  // The wedge failpoint stalls the dispatch worker, so this POST blocks for
  // the stall's duration — run it from a helper thread while the main
  // thread watches the health ladder.
  std::thread driver([&host, port, &tenant] {
    std::string body = "{\"tenant\":\"" + tenant +
                       "\",\"tag\":\"wedge\",\"columns\":["
                       "{\"name\":\"qty\",\"values\":[\"12\",\"twelve\"]}]}";
    auto response = HttpPost(host, port, "/detect", body);
    (void)response;  // outcome judged via the health ladder, not the reply
  });
  int degraded = AwaitHealthState(host, port, "degraded", deadline);
  driver.join();
  if (degraded != 0) return degraded;
  int healthy = AwaitHealthState(host, port, "healthy", deadline);
  if (healthy != 0) return healthy;
  std::printf("serve_smoke: wedge OK (degraded then recovered)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string mode = "wire";
  std::string tenant;
  int64_t port = 0;
  int64_t wait_ms = 15000;
  int64_t pid = 0;

  FlagSet flags;
  flags.String("host", &host, "server address");
  flags.Int("port", &port, "server port");
  flags.String("mode", &mode, "wire | http | metrics | slowloris | drain | wedge");
  flags.String("tenant", &tenant, "tenant to claim in requests");
  flags.Int("wait-ms", &wait_ms,
            "slowloris/drain/wedge: how long the server gets to react");
  flags.Int("pid", &pid, "drain: server pid to SIGTERM mid-batch");
  Status parsed = flags.Parse(argc, argv, 1);
  if (!parsed.ok() || flags.help_requested()) {
    std::fprintf(stderr, "usage: serve_smoke --port N [flags]\nflags:\n%s",
                 flags.Usage().c_str());
    return parsed.ok() ? 0 : 2;
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "serve_smoke: --port is required\n");
    return 2;
  }

  uint16_t p = static_cast<uint16_t>(port);
  if (mode == "wire") return RunWire(host, p, tenant);
  if (mode == "http") return RunHttp(host, p, tenant);
  if (mode == "metrics") return RunMetrics(host, p);
  if (mode == "slowloris") return RunSlowloris(host, p, wait_ms);
  if (mode == "drain") return RunDrain(host, p, tenant, pid, wait_ms);
  if (mode == "wedge") return RunWedge(host, p, tenant, wait_ms);
  std::fprintf(stderr, "serve_smoke: unknown --mode '%s'\n", mode.c_str());
  return 2;
}
