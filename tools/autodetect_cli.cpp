/// \file autodetect_cli.cpp
/// Command-line front end for the library — the "spell-checker for data"
/// deployment shape the paper targets:
///
///   autodetect_cli train --columns 30000 --profile WEB --budget-mb 64
///                        --precision 0.95 --out model.bin
///   autodetect_cli train-shard --columns 30000 --shard 2 --num-shards 4
///                        --out shard2.ads
///   autodetect_cli merge-stats --out merged.ads shard*.ads
///   autodetect_cli train --from-stats merged.ads --budget-mb 64 --out model.bin
///   autodetect_cli retrain --model model.bin --stats merged.ads
///                        --add-shard new.ads
///   autodetect_cli scan  --model model.bin data/*.csv
///   autodetect_cli scan  --model model.bin --metrics-out scan_metrics.json data/*.csv
///   autodetect_cli pair  --model model.bin "2011-01-01" "2011/01/02"
///   autodetect_cli info  --model model.bin
///
/// `train`, `train-shard` and `retrain` use the synthetic corpus substrate
/// (an ADSHARD1 artifact records which profile/seed/range it was built
/// over, so merge and retrain can reconstruct the stream); plug a real
/// corpus in by implementing ColumnSource and linking against the library.
///
/// Error handling: any unreadable input (bad flag, missing model, corrupt
/// CSV) aborts the run with a structured message on stderr and a non-zero
/// exit — a scan never half-completes silently.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "flag_set.h"
#include "io/csv.h"
#include "net/server.h"
#include "net/tenant.h"
#include "obs/dump.h"
#include "serve/detection_engine.h"
#include "train/shard.h"

using namespace autodetect;

namespace {

Result<CorpusProfile> ProfileByName(const std::string& name) {
  if (name == "WEB") return CorpusProfile::Web();
  if (name == "WIKI") return CorpusProfile::Wiki();
  if (name == "PUB-XLS") return CorpusProfile::PubXls();
  if (name == "ENT-XLS") return CorpusProfile::EntXls();
  return Status::Invalid("unknown profile '" + name +
                         "' (expected WEB, WIKI, PUB-XLS or ENT-XLS)");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Parses a command's flags. Returns true when the command should proceed;
/// otherwise *exit_code holds the process exit (0 for --help, which prints
/// the auto-generated flag table to stdout; 2 for a parse error, which
/// prints it to stderr alongside the error).
bool ParseFlags(FlagSet& flags, int argc, char** argv, const char* synopsis,
                int* exit_code) {
  Status parsed = flags.Parse(argc, argv, 2);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\nusage: %s\nflags:\n%s",
                 parsed.ToString().c_str(), synopsis, flags.Usage().c_str());
    *exit_code = 2;
    return false;
  }
  if (flags.help_requested()) {
    std::printf("usage: %s\nflags:\n%s", synopsis, flags.Usage().c_str());
    *exit_code = 0;
    return false;
  }
  return true;
}

Result<ModelFormat> FormatByName(const std::string& name) {
  if (name == "v1") return ModelFormat::kV1;
  if (name == "v2") return ModelFormat::kV2;
  return Status::Invalid("unknown --format '" + name + "' (expected v1 or v2)");
}

/// Rebuilds the synthetic column stream a stats artifact was built over
/// (the generator's column i depends only on (seed, index), so a grown
/// corpus's prefix matches the original stream exactly).
Result<GeneratorOptions> GeneratorFromProvenance(const ShardProvenance& prov) {
  if (prov.profile.empty()) {
    return Status::Invalid(
        "stats artifact lacks synthetic-corpus provenance (built over an "
        "external corpus?); supervision needs the original column stream");
  }
  AD_ASSIGN_OR_RETURN(CorpusProfile profile, ProfileByName(prov.profile));
  GeneratorOptions gen;
  gen.profile = std::move(profile);
  gen.seed = prov.seed;
  gen.num_columns = static_cast<size_t>(prov.total_columns);
  gen.inject_errors = false;
  return gen;
}

Status RequireFullCoverage(const ShardProvenance& prov) {
  if (prov.column_begin != 0 || prov.column_end != prov.total_columns) {
    return Status::Invalid(StrFormat(
        "statistics cover columns [%llu, %llu) of %llu; finalization needs "
        "the whole corpus — merge the missing shards first",
        static_cast<unsigned long long>(prov.column_begin),
        static_cast<unsigned long long>(prov.column_end),
        static_cast<unsigned long long>(prov.total_columns)));
  }
  return Status::OK();
}

/// Supervision + selection + save, shared by `train`, `train --from-stats`
/// and `retrain`. With `atomic` the model lands via temp-file + rename, so
/// a serving process watching the path (--model-watch / ModelRegistry)
/// only ever sees a complete artifact and hot-swaps cleanly.
Status FinalizeAndSave(TrainSession* session, ColumnSource* source,
                       const std::string& out, ModelFormat format,
                       bool atomic) {
  AD_RETURN_NOT_OK(session->Supervise(source));
  AD_ASSIGN_OR_RETURN(Model model, session->Finalize());
  if (atomic) {
    const std::string tmp = out + ".tmp";
    AD_RETURN_NOT_OK(model.Save(tmp, format).WithContext("save failed"));
    std::error_code ec;
    std::filesystem::rename(tmp, out, ec);
    if (ec) {
      return Status::IOError("cannot rename " + tmp + " to " + out + ": " +
                             ec.message());
    }
  } else {
    AD_RETURN_NOT_OK(model.Save(out, format).WithContext("save failed"));
  }
  std::printf("%s", model.Summary().c_str());
  std::printf("saved to %s (%s)\n", out.c_str(),
              format == ModelFormat::kV2 ? "ADMODEL2" : "ADMODEL1");
  return Status::OK();
}

int CmdTrain(int argc, char** argv) {
  std::string profile_name = "WEB", out = "autodetect.model", format_name = "v2";
  std::string from_stats;
  int64_t columns = 30000, seed = 20180610, budget_mb = 64;
  int64_t sketch_budget_mb = 0;
  double precision = 0.95, sketch = 1.0, smoothing = 0.1;
  int64_t jobs = 0;
  MetricsFlags metrics;

  FlagSet flags;
  flags.String("profile", &profile_name, "training corpus profile");
  flags.Int("columns", &columns, "training columns to synthesize");
  flags.Int("seed", &seed, "corpus seed");
  flags.String("from-stats", &from_stats,
               "finalize from a merged ADSHARD1 statistics artifact instead "
               "of scanning a corpus (--profile/--columns/--seed then come "
               "from the artifact's provenance)");
  flags.Int("budget-mb", &budget_mb, "model memory budget");
  flags.Double("precision", &precision, "precision target");
  flags.Double("sketch", &sketch, "co-occurrence sketch ratio (0,1]");
  flags.Int("sketch-budget-mb", &sketch_budget_mb,
            "cap each language's co-occurrence sketch at this many MB "
            "(0 = off; mutually exclusive with --sketch)");
  flags.Double("smoothing", &smoothing, "NPMI smoothing factor");
  flags.Int("jobs", &jobs, "worker threads (0 = all cores)");
  flags.String("out", &out, "model output path");
  flags.String("format", &format_name,
               "model file format: v2 (zero-copy, default) or v1 (legacy)");
  // Sharded training moved to dedicated subcommands; reject the spellings
  // people will guess with a pointer instead of "unknown flag".
  flags.Deprecated("shard", "the train-shard subcommand");
  flags.Deprecated("num-shards", "the train-shard subcommand");
  flags.Deprecated("merge", "the merge-stats subcommand");
  flags.Deprecated("add-shard", "the retrain subcommand");
  metrics.Register(&flags);
  int rc = 0;
  if (!ParseFlags(flags, argc, argv, "autodetect_cli train [flags]", &rc)) {
    return rc;
  }

  auto format = FormatByName(format_name);
  if (!format.ok()) return Fail(format.status());

  if (sketch_budget_mb < 0) {
    return Fail(Status::Invalid("--sketch-budget-mb must be >= 0"));
  }
  if (sketch_budget_mb > 0 && sketch < 1.0) {
    return Fail(Status::Invalid(
        "--sketch and --sketch-budget-mb are mutually exclusive (pick the "
        "relative ratio or the absolute per-language cap)"));
  }

  TrainOptions train;
  train.precision_target = precision;
  train.memory_budget_bytes = static_cast<size_t>(budget_mb) << 20;
  train.sketch_ratio = sketch;
  train.sketch_budget_bytes = static_cast<size_t>(sketch_budget_mb) << 20;
  train.smoothing_factor = smoothing;
  train.num_threads = static_cast<size_t>(jobs);

  MetricsRegistry* registry = MetricsRegistry::Default();
  std::unique_ptr<MetricsDumper> dumper = metrics.StartDumper(registry);
  Status trained;

  if (!from_stats.empty()) {
    // Reduce output in, statistics pass skipped: adopt the merged shard,
    // then supervision + selection against the reconstructed stream.
    auto shard = ReadShard(from_stats);
    if (!shard.ok()) return Fail(shard.status());
    Status covered = RequireFullCoverage(shard->provenance);
    if (!covered.ok()) return Fail(covered);
    auto gen = GeneratorFromProvenance(shard->provenance);
    if (!gen.ok()) return Fail(gen.status());
    train.corpus_name = shard->provenance.corpus_name;
    GeneratedColumnSource source(*gen);
    TrainSession session(train);
    Status used = session.UseStats(std::move(*shard));
    if (!used.ok()) return Fail(used.WithContext("adopting " + from_stats));
    std::printf("finalizing from %s (%llu %s columns, P>=%.2f, budget %s)...\n",
                from_stats.c_str(),
                static_cast<unsigned long long>(session.corpus_columns()),
                gen->profile.name.c_str(), train.precision_target,
                HumanBytes(train.memory_budget_bytes).c_str());
    trained = FinalizeAndSave(&session, &source, out, *format, /*atomic=*/false);
  } else {
    auto profile = ProfileByName(profile_name);
    if (!profile.ok()) return Fail(profile.status());
    GeneratorOptions gen;
    gen.profile = *profile;
    gen.num_columns = static_cast<size_t>(columns);
    gen.inject_errors = false;
    gen.seed = static_cast<uint64_t>(seed);
    GeneratedColumnSource source(gen);
    train.corpus_name = gen.profile.name + "-synthetic";
    std::printf("training on %zu %s columns (P>=%.2f, budget %s)...\n",
                gen.num_columns, gen.profile.name.c_str(),
                train.precision_target,
                HumanBytes(train.memory_budget_bytes).c_str());
    TrainSession session(train);
    trained = session.BuildStats(&source);
    if (trained.ok()) {
      trained = FinalizeAndSave(&session, &source, out, *format, /*atomic=*/false);
    }
  }
  if (!trained.ok()) return Fail(trained.WithContext("training failed"));

  Status dumped = metrics.Finish(registry, std::move(dumper));
  if (!dumped.ok()) return Fail(dumped.WithContext("metrics export failed"));
  if (metrics.enabled()) std::printf("metrics written to %s\n", metrics.metrics_out.c_str());
  return 0;
}

int CmdTrainShard(int argc, char** argv) {
  std::string profile_name = "WEB", out = "shard.ads";
  int64_t columns = 30000, seed = 20180610;
  int64_t shard_index = 0, num_shards = 1;
  int64_t jobs = 0;

  FlagSet flags;
  flags.String("profile", &profile_name, "training corpus profile");
  flags.Int("columns", &columns, "columns in the FULL corpus being partitioned");
  flags.Int("seed", &seed, "corpus seed");
  flags.Int("shard", &shard_index, "which partition to build (0-based)");
  flags.Int("num-shards", &num_shards, "total number of partitions");
  flags.Int("jobs", &jobs, "worker threads (0 = all cores)");
  flags.String("out", &out, "shard output path (ADSHARD1)");
  int rc = 0;
  if (!ParseFlags(flags, argc, argv, "autodetect_cli train-shard [flags]", &rc)) {
    return rc;
  }
  if (columns <= 0) return Fail(Status::Invalid("--columns must be positive"));
  if (num_shards <= 0 || shard_index < 0 || shard_index >= num_shards) {
    return Fail(Status::Invalid(
        "--shard must be in [0, --num-shards) and --num-shards positive"));
  }

  auto profile = ProfileByName(profile_name);
  if (!profile.ok()) return Fail(profile.status());

  GeneratorOptions gen;
  gen.profile = *profile;
  gen.num_columns = static_cast<size_t>(columns);
  gen.inject_errors = false;
  gen.seed = static_cast<uint64_t>(seed);
  GeneratedColumnSource full(gen);

  const uint64_t total = static_cast<uint64_t>(columns);
  const uint64_t begin =
      total * static_cast<uint64_t>(shard_index) / static_cast<uint64_t>(num_shards);
  const uint64_t end = total * static_cast<uint64_t>(shard_index + 1) /
                       static_cast<uint64_t>(num_shards);
  SlicedColumnSource partition(&full, static_cast<size_t>(begin),
                               static_cast<size_t>(end));

  TrainOptions train;
  train.num_threads = static_cast<size_t>(jobs);
  ShardProvenance prov;
  prov.corpus_name = gen.profile.name + "-synthetic";
  prov.profile = gen.profile.name;
  prov.seed = gen.seed;
  prov.total_columns = total;
  prov.column_begin = begin;
  prov.column_end = end;

  std::printf("building stats shard %lld/%lld: %s columns [%llu, %llu) of %llu...\n",
              static_cast<long long>(shard_index),
              static_cast<long long>(num_shards), gen.profile.name.c_str(),
              static_cast<unsigned long long>(begin),
              static_cast<unsigned long long>(end),
              static_cast<unsigned long long>(total));
  auto shard = TrainSession::BuildShard(&partition, train, std::move(prov));
  if (!shard.ok()) return Fail(shard.status().WithContext("building shard"));
  Status written = WriteShard(out, *shard);
  if (!written.ok()) return Fail(written);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out, ec);
  std::printf("wrote %s (%s, %zu languages, %llu columns)\n", out.c_str(),
              HumanBytes(ec ? 0 : bytes).c_str(),
              shard->stats.LanguageIds().size(),
              static_cast<unsigned long long>(shard->provenance.num_columns()));
  return 0;
}

int CmdMergeStats(int argc, char** argv) {
  std::string out = "merged.ads";
  FlagSet flags;
  flags.String("out", &out, "merged shard output path (ADSHARD1)");
  int rc = 0;
  if (!ParseFlags(flags, argc, argv,
                  "autodetect_cli merge-stats --out merged.ads shard.ads...",
                  &rc)) {
    return rc;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: autodetect_cli merge-stats --out merged.ads "
                 "shard.ads...\n%s",
                 flags.Usage().c_str());
    return 2;
  }
  auto merged = MergeShardFiles(flags.positional());
  if (!merged.ok()) return Fail(merged.status());
  Status written = WriteShard(out, *merged);
  if (!written.ok()) return Fail(written);
  std::printf("merged %zu shard(s) -> %s: columns [%llu, %llu) of %llu\n",
              flags.positional().size(), out.c_str(),
              static_cast<unsigned long long>(merged->provenance.column_begin),
              static_cast<unsigned long long>(merged->provenance.column_end),
              static_cast<unsigned long long>(merged->provenance.total_columns));
  return 0;
}

int CmdRetrain(int argc, char** argv) {
  std::string model_path, stats_path, out, format_name = "v2";
  std::vector<std::string> add_shards;
  int64_t budget_mb = 64;
  int64_t sketch_budget_mb = 0;
  double sketch = 1.0;
  int64_t jobs = 0;

  FlagSet flags;
  flags.String("model", &model_path,
               "existing model whose training knobs (precision target, "
               "smoothing, corpus) to reuse");
  flags.String("stats", &stats_path,
               "merged ADSHARD1 statistics the model was trained from");
  flags.StringList("add-shard", &add_shards,
                   "new-data shard to fold in (repeatable); ranges must "
                   "extend the base statistics contiguously");
  flags.Int("budget-mb", &budget_mb, "model memory budget");
  flags.Double("sketch", &sketch, "co-occurrence sketch ratio (0,1]");
  flags.Int("sketch-budget-mb", &sketch_budget_mb,
            "cap each language's co-occurrence sketch at this many MB (0 = off)");
  flags.Int("jobs", &jobs, "worker threads (0 = all cores)");
  flags.String("out", &out,
               "output model path (default: overwrite --model in place, "
               "atomically — a --model-watch server hot-swaps it)");
  flags.String("format", &format_name,
               "model file format: v2 (zero-copy, default) or v1 (legacy)");
  int rc = 0;
  if (!ParseFlags(flags, argc, argv,
                  "autodetect_cli retrain --model m.bin --stats base.ads "
                  "--add-shard new.ads",
                  &rc)) {
    return rc;
  }
  if (model_path.empty() || stats_path.empty()) {
    return Fail(Status::Invalid("retrain needs --model and --stats"));
  }
  auto format = FormatByName(format_name);
  if (!format.ok()) return Fail(format.status());
  if (out.empty()) out = model_path;

  auto model = Model::Load(model_path);
  if (!model.ok()) return Fail(model.status());

  std::vector<std::string> shard_paths;
  shard_paths.push_back(stats_path);
  shard_paths.insert(shard_paths.end(), add_shards.begin(), add_shards.end());
  auto merged = MergeShardFiles(shard_paths);
  if (!merged.ok()) return Fail(merged.status());
  Status covered = RequireFullCoverage(merged->provenance);
  if (!covered.ok()) return Fail(covered);
  auto gen = GeneratorFromProvenance(merged->provenance);
  if (!gen.ok()) return Fail(gen.status());

  // The refreshed model keeps the original's quality knobs; the memory
  // budget is not recorded in a model artifact, so it stays a flag.
  TrainOptions train;
  train.precision_target = model->precision_target;
  train.smoothing_factor = model->smoothing_factor;
  train.corpus_name = model->corpus_name;
  train.memory_budget_bytes = static_cast<size_t>(budget_mb) << 20;
  train.sketch_ratio = sketch;
  train.sketch_budget_bytes = static_cast<size_t>(sketch_budget_mb) << 20;
  train.num_threads = static_cast<size_t>(jobs);

  GeneratedColumnSource source(*gen);
  TrainSession session(train);
  Status used = session.UseStats(std::move(*merged));
  if (!used.ok()) return Fail(used.WithContext("adopting merged statistics"));

  std::printf("retraining %s: %llu columns (%llu previously trained), "
              "%zu new shard(s)...\n",
              model_path.c_str(),
              static_cast<unsigned long long>(session.corpus_columns()),
              static_cast<unsigned long long>(model->trained_columns),
              add_shards.size());
  Status trained =
      FinalizeAndSave(&session, &source, out, *format, /*atomic=*/true);
  if (!trained.ok()) return Fail(trained.WithContext("retrain failed"));
  if (out == model_path) {
    std::printf("swapped in place; serving processes watching it "
                "(--model-watch) hot-reload on the next poll\n");
  }
  return 0;
}

int CmdScan(int argc, char** argv) {
  double min_confidence = 0.0;
  ModelFlags model_flags;
  EngineFlags engine_flags;
  MetricsFlags metrics;

  FlagSet flags;
  model_flags.Register(&flags);
  flags.Double("min-confidence", &min_confidence, "suppress findings below this");
  engine_flags.Register(&flags);
  metrics.Register(&flags);
  int rc = 0;
  if (!ParseFlags(flags, argc, argv,
                  "autodetect_cli scan --model m.bin [flags] file.csv...",
                  &rc)) {
    return rc;
  }

  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: autodetect_cli scan --model m.bin [options] file.csv...\n%s",
                 flags.Usage().c_str());
    return 2;
  }

  MetricsRegistry* registry = MetricsRegistry::Default();
  std::unique_ptr<MetricsDumper> dumper = metrics.StartDumper(registry);

  // FixedModel for a one-shot scan, or a watching ModelRegistry under
  // --model-watch; the engine refreshes its snapshot per batch either way.
  auto provider = model_flags.MakeProvider(registry);
  if (!provider.ok()) return Fail(provider.status());

  EngineOptions engine_opts;
  Status applied = engine_flags.Apply(&engine_opts);
  if (!applied.ok()) return Fail(applied);
  engine_opts.metrics = registry;
  DetectionEngine engine(provider->get(), engine_opts);

  Stopwatch timer;
  size_t total_findings = 0;
  size_t degraded = 0, partial = 0, shed = 0;
  for (const auto& path : flags.positional()) {
    auto table = ReadCsvFile(path);
    // Fail fast: a bad input file aborts the scan with a non-zero exit
    // instead of being skipped into a silently partial report.
    if (!table.ok()) return Fail(table.status());
    std::vector<DetectRequest> batch;
    batch.reserve(table->num_cols());
    for (size_t c = 0; c < table->num_cols(); ++c) {
      batch.push_back(
          DetectRequest{table->header[c], table->Column(c), RequestContext{"", path}});
    }
    std::vector<DetectReport> reports = engine.Detect(batch);
    for (const DetectReport& report : reports) {
      switch (report.status) {
        case ColumnStatus::kOk: break;
        case ColumnStatus::kDegraded: ++degraded; break;
        case ColumnStatus::kDeadlineExceeded:
        case ColumnStatus::kCancelled: ++partial; break;
        case ColumnStatus::kShed: ++shed; break;
      }
      for (const auto& cell : report.column.cells) {
        if (cell.confidence < min_confidence) continue;
        ++total_findings;
        std::printf("%s:%s:row %u: suspicious value \"%s\" (confidence %.3f, "
                    "clashes with %u values)\n",
                    path.c_str(), report.name.c_str(), cell.row + 2,
                    cell.value.c_str(), cell.confidence, cell.incompatible_with);
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();
  EngineStats stats = engine.Stats();
  std::printf("%zu finding(s)\n", total_findings);
  // Resilience accounting: anything other than a clean full-fidelity scan
  // is called out, never silent.
  if (degraded + partial + shed > 0) {
    std::printf("resilience: %zu column(s) degraded, %zu partial "
                "(deadline/cancel), %zu shed\n",
                degraded, partial, shed);
  }
  std::printf("scanned %llu column(s) with %zu thread(s) in %.3fs "
              "(%.0f columns/s, cache hit rate %.1f%%)\n",
              static_cast<unsigned long long>(stats.columns),
              engine.num_threads(), elapsed,
              elapsed > 0 ? static_cast<double>(stats.columns) / elapsed : 0.0,
              stats.cache.HitRate() * 100.0);

  Status dumped = metrics.Finish(registry, std::move(dumper));
  if (!dumped.ok()) return Fail(dumped.WithContext("metrics export failed"));
  if (metrics.enabled()) std::printf("metrics written to %s\n", metrics.metrics_out.c_str());
  return 0;
}

int CmdPair(int argc, char** argv) {
  ModelFlags model_flags;
  FlagSet flags;
  model_flags.Register(&flags);
  int rc = 0;
  if (!ParseFlags(flags, argc, argv,
                  "autodetect_cli pair --model m.bin VALUE1 VALUE2", &rc)) {
    return rc;
  }
  if (flags.positional().size() != 2) {
    std::fprintf(stderr, "usage: autodetect_cli pair --model m.bin VALUE1 VALUE2\n");
    return 2;
  }
  auto model = model_flags.Load();
  if (!model.ok()) return Fail(model.status());
  Detector detector(&*model);
  PairExplanation explanation =
      detector.ExplainPair(flags.positional()[0], flags.positional()[1]);
  std::printf("\"%s\" vs \"%s\"\n%s", flags.positional()[0].c_str(),
              flags.positional()[1].c_str(), explanation.ToString().c_str());
  return explanation.verdict.incompatible ? 3 : 0;
}

int CmdInfo(int argc, char** argv) {
  ModelFlags model_flags;
  FlagSet flags;
  model_flags.Register(&flags);
  int rc = 0;
  if (!ParseFlags(flags, argc, argv, "autodetect_cli info --model m.bin",
                  &rc)) {
    return rc;
  }
  auto model = model_flags.Load();
  if (!model.ok()) return Fail(model.status());
  std::printf("%s", model->Summary().c_str());
  // A v1 model is fully deserialized, not file-backed, so report the
  // artifact's on-disk size rather than FileBytes() (0 when unmapped).
  std::error_code ec;
  const auto file_bytes = std::filesystem::file_size(model_flags.model, ec);
  std::printf("format: %s%s, file %s\n",
              model->format() == ModelFormat::kV2 ? "ADMODEL2" : "ADMODEL1",
              model->mapped() ? " (memory-mapped)" : "",
              HumanBytes(ec ? 0 : file_bytes).c_str());
  const ModelSketchInfo sketch = model->SketchInfo();
  if (sketch.languages > 0) {
    std::printf("sketch: %zu/%zu language(s) served from count-min sketches, "
                "%s of counters (width %zu, depth %zu)\n",
                sketch.languages, model->languages.size(),
                HumanBytes(sketch.bytes).c_str(), sketch.width, sketch.depth);
  } else {
    std::printf("sketch: none (all languages exact)\n");
  }
  std::printf("tokenizer: %s (max supported: %s)\n",
              std::string(SimdTierName(ActiveSimdTier())).c_str(),
              std::string(SimdTierName(MaxSupportedSimdTier())).c_str());
  return 0;
}

/// SIGINT/SIGTERM land here; the serve loop polls it. sig_atomic_t because
/// a signal handler may not touch anything wider.
volatile std::sig_atomic_t g_serve_stop = 0;

void ServeSignalHandler(int) { g_serve_stop = 1; }

int CmdServe(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t acceptors = 2;
  int64_t dispatch_threads = 0;
  int64_t max_frame_mb = 64;
  int64_t idle_timeout_ms = 120000;
  int64_t partial_timeout_ms = 5000;
  int64_t mem_budget_mb = 0;
  int64_t request_budget_mb = 0;
  int64_t drain_timeout_ms = 10000;
  int64_t wedge_timeout_ms = 5000;
  std::string tenants_spec;
  std::string port_file;
  ModelFlags model_flags;
  EngineFlags engine_flags;
  MetricsFlags metrics;

  FlagSet flags;
  model_flags.Register(&flags);
  engine_flags.Register(&flags);
  metrics.Register(&flags);
  flags.String("host", &host, "listen address");
  flags.Int("port", &port, "listen port (0 = ephemeral; see --port-file)");
  flags.Int("acceptors", &acceptors,
            "event-loop threads, each with its own SO_REUSEPORT listener");
  flags.Int("dispatch-threads", &dispatch_threads,
            "blocking-detect dispatch pool size (0 = all cores)");
  flags.Int("max-frame-mb", &max_frame_mb,
            "largest accepted wire frame / HTTP body");
  flags.Int("idle-timeout-ms", &idle_timeout_ms,
            "close idle keep-alive connections after this");
  flags.Int("partial-timeout-ms", &partial_timeout_ms,
            "close connections parked on a partial request after this "
            "(slow-loris defense)");
  flags.Int("mem-budget-mb", &mem_budget_mb,
            "global request-memory budget; over-budget requests get a typed "
            "ResourceExhausted error instead of an OOM (0 = unlimited)");
  flags.Int("request-budget-mb", &request_budget_mb,
            "per-request memory budget, checked from the wire frame's "
            "length prefix before the payload is buffered (0 = unlimited)");
  flags.Int("drain-timeout-ms", &drain_timeout_ms,
            "on SIGTERM or POST /drain, wait this long for in-flight "
            "batches before cancelling stragglers");
  flags.Int("wedge-timeout-ms", &wedge_timeout_ms,
            "watchdog flags a dispatch worker stuck past this as wedged "
            "(health degraded until it recovers)");
  flags.String("tenants", &tenants_spec,
               "per-tenant admission quotas, comma-separated "
               "name=cap[:block|shed-oldest|reject]; '*' names the default");
  flags.String("port-file", &port_file,
               "write the bound port here once listening (for scripts "
               "using --port 0)");
  int rc = 0;
  if (!ParseFlags(flags, argc, argv, "autodetect_cli serve [flags]", &rc)) {
    return rc;
  }
  if (port < 0 || port > 65535) {
    return Fail(Status::Invalid("--port must be in [0, 65535]"));
  }
  if (acceptors <= 0) {
    return Fail(Status::Invalid("--acceptors must be positive"));
  }
  if (max_frame_mb <= 0) {
    return Fail(Status::Invalid("--max-frame-mb must be positive"));
  }

  MetricsRegistry* registry = MetricsRegistry::Default();
  std::unique_ptr<MetricsDumper> dumper = metrics.StartDumper(registry);

  // Lifecycle subsystem: health ladder behind /healthz, watchdog over the
  // dispatch workers and acceptor loops, memory budget on the request path,
  // and a circuit breaker around model hot-reload.
  HealthLadder health(registry);
  WatchdogOptions dog_opts;
  dog_opts.wedge_timeout_ms = static_cast<uint64_t>(wedge_timeout_ms);
  dog_opts.stall_timeout_ms = static_cast<uint64_t>(wedge_timeout_ms);
  dog_opts.health = &health;
  dog_opts.metrics = registry;
  Watchdog watchdog(dog_opts);
  MemoryBudgetOptions budget_opts;
  budget_opts.global_bytes = static_cast<size_t>(mem_budget_mb) << 20;
  budget_opts.per_request_bytes = static_cast<size_t>(request_budget_mb) << 20;
  budget_opts.metrics = registry;
  MemoryBudget memory(budget_opts);
  CircuitBreakerOptions breaker_opts;
  breaker_opts.name = "model-reload";
  breaker_opts.health = &health;
  breaker_opts.metrics = registry;
  CircuitBreaker reload_breaker(breaker_opts);

  auto provider = model_flags.MakeProvider(registry);
  if (!provider.ok()) return Fail(provider.status());
  if (auto* model_registry = dynamic_cast<ModelRegistry*>(provider->get())) {
    // --model-watch: repeated reload failures trip the breaker, stop the
    // disk hammering, and mark the server degraded until a probe succeeds.
    model_registry->AttachBreaker(&reload_breaker);
  }

  EngineOptions engine_opts;
  Status applied = engine_flags.Apply(&engine_opts);
  if (!applied.ok()) return Fail(applied);
  engine_opts.metrics = registry;
  DetectionEngine engine(provider->get(), engine_opts);

  TenantTable tenants(registry);
  if (!tenants_spec.empty()) {
    Status parsed_tenants = tenants.Parse(tenants_spec);
    if (!parsed_tenants.ok()) {
      return Fail(parsed_tenants.WithContext("parsing --tenants"));
    }
  }

  ServerOptions server_opts;
  server_opts.host = host;
  server_opts.port = static_cast<uint16_t>(port);
  server_opts.num_acceptors = static_cast<size_t>(acceptors);
  server_opts.dispatch_threads = static_cast<size_t>(dispatch_threads);
  server_opts.wire_limits.max_frame_bytes =
      static_cast<size_t>(max_frame_mb) << 20;
  server_opts.http_limits.max_body_bytes =
      static_cast<size_t>(max_frame_mb) << 20;
  server_opts.partial_timeout_ms = static_cast<uint64_t>(partial_timeout_ms);
  server_opts.idle_timeout_ms = static_cast<uint64_t>(idle_timeout_ms);
  server_opts.tenants = &tenants;
  server_opts.metrics = registry;
  server_opts.memory = memory.enabled() ? &memory : nullptr;
  server_opts.health = &health;
  server_opts.watchdog = &watchdog;
  server_opts.drain_timeout_ms = static_cast<uint64_t>(drain_timeout_ms);

  Server server(&engine, server_opts);
  Status started = server.Start();
  if (!started.ok()) return Fail(started.WithContext("starting server"));
  watchdog.Start();

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      server.Stop();
      return Fail(Status::IOError("cannot write --port-file " + port_file));
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  for (const std::string& tenant : tenants.ConfiguredTenants()) {
    TenantSpec spec = tenants.SpecFor(tenant);
    std::printf("tenant %s: cap %zu columns\n", tenant.c_str(),
                spec.queue_cap_columns);
  }
  std::printf("serving on %s:%u (%zu acceptors, ADWIRE1 + HTTP/1.1)\n",
              host.c_str(), server.port(), server_opts.num_acceptors);
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  // POST /drain flips server.draining() without a signal; both paths exit
  // the wait and take the same graceful sequence below.
  while (g_serve_stop == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining (up to %lld ms)...\n",
              static_cast<long long>(drain_timeout_ms));
  std::fflush(stdout);
  server.BeginDrain();
  const bool clean = server.AwaitDrain();
  if (!clean) {
    std::printf("drain timeout; cancelling remaining batches\n");
  }
  server.Stop();
  watchdog.Stop();

  ServerStats stats = server.Stats();
  std::printf("served %llu request(s) over %llu connection(s) "
              "(%llu HTTP, %llu protocol error(s), %llu disconnect "
              "cancel(s), %llu timeout close(s))\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.http_requests),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.disconnect_cancels),
              static_cast<unsigned long long>(stats.timeout_closes));

  Status dumped = metrics.Finish(registry, std::move(dumper));
  if (!dumped.ok()) return Fail(dumped.WithContext("metrics export failed"));
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "autodetect_cli — corpus-statistics error detection "
               "(Auto-Detect, SIGMOD'18)\n\n"
               "commands:\n"
               "  train --columns N --profile WEB|WIKI|PUB-XLS|ENT-XLS\n"
               "        --precision P --budget-mb M [--sketch R |\n"
               "        --sketch-budget-mb M] [--seed S]\n"
               "        [--out FILE] [--format v2|v1]    train + save a model\n"
               "        (v2 = zero-copy mmap ADMODEL2, the default;\n"
               "         v1 = legacy streamed ADMODEL1; --sketch-budget-mb\n"
               "         caps each language's co-occurrence sketch, writing\n"
               "         a v3 artifact with a page-aligned SKCH section that\n"
               "         scan auto-detects; --from-stats FILE skips the\n"
               "         statistics pass and finalizes from a merged\n"
               "         ADSHARD1 artifact)\n"
               "  train-shard --columns N --shard I --num-shards K\n"
               "        [--profile P] [--seed S] --out FILE\n"
               "        build corpus statistics for one contiguous column\n"
               "        partition as a checksummed ADSHARD1 artifact\n"
               "  merge-stats --out merged.ads shard.ads...\n"
               "        deterministically merge shards (any order -> same\n"
               "        bytes); the ranges must tile one contiguous range\n"
               "  retrain --model FILE --stats base.ads --add-shard new.ads\n"
               "        [--out FILE] fold new-data shards into existing\n"
               "        statistics, recalibrate, and atomically swap the\n"
               "        model (a --model-watch server hot-reloads it);\n"
               "        skips the statistics pass over the old columns\n"
               "  scan  --model FILE [--min-confidence C] [--jobs N]\n"
               "        [--cache-mb M] [--model-watch [--model-poll-ms N]]\n"
               "        [--deadline-ms N] [--column-budget-us N]\n"
               "        [--queue-cap N [--admission-policy block|shed-oldest|\n"
               "         reject] [--admission-timeout-ms N]]\n"
               "        [--no-simd] [--no-dedup] [--no-sketch]\n"
               "        file.csv...                       flag suspicious cells\n"
               "        (--jobs 0 = all cores; --cache-mb 0 disables the\n"
               "         cross-column pair-verdict cache; --model-watch\n"
               "         hot-reloads the model when the file changes;\n"
               "         --deadline-ms bounds batch latency with partial\n"
               "         reports; --column-budget-us degrades slow columns to\n"
               "         the single-language fallback; --queue-cap bounds\n"
               "         in-flight work by admission policy; --no-simd and\n"
               "         --no-dedup pin the scalar tokenizer / disable value\n"
               "         interning — reports are identical either way;\n"
               "         --no-sketch excludes sketched languages from\n"
               "         scoring, serving only a mixed model's exact ones)\n"
               "  serve --model FILE [--port N] [--tenants SPEC]\n"
               "        [--acceptors N] [--port-file FILE]  network server:\n"
               "        ADWIRE1 binary + HTTP/1.1 JSON on one port\n"
               "        (POST /detect, GET /metrics, GET /healthz);\n"
               "        per-tenant admission via --tenants\n"
               "        \"acme=512:block,free=64,*=4096\"\n"
               "  pair  --model FILE VALUE1 VALUE2       explain one pair\n"
               "  info  --model FILE                     describe a model\n\n"
               "every command accepts --help for its full generated flag\n"
               "table. train, scan and serve also accept --metrics-out FILE\n"
               "(JSON, or Prometheus text for .prom/.txt) and\n"
               "--metrics-interval-ms N for live-updating snapshots.\n");
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "train") return CmdTrain(argc, argv);
  if (command == "train-shard") return CmdTrainShard(argc, argv);
  if (command == "merge-stats") return CmdMergeStats(argc, argv);
  if (command == "retrain") return CmdRetrain(argc, argv);
  if (command == "scan") return CmdScan(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "pair") return CmdPair(argc, argv);
  if (command == "info") return CmdInfo(argc, argv);
  Usage();
  return 2;
}
