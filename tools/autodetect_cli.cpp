/// \file autodetect_cli.cpp
/// Command-line front end for the library — the "spell-checker for data"
/// deployment shape the paper targets:
///
///   autodetect_cli train --columns 30000 --profile WEB --budget-mb 64 \
///                        --precision 0.95 --out model.bin
///   autodetect_cli scan  --model model.bin data/*.csv
///   autodetect_cli pair  --model model.bin "2011-01-01" "2011/01/02"
///   autodetect_cli info  --model model.bin
///
/// `train` uses the synthetic corpus substrate; plug a real corpus in by
/// implementing ColumnSource and linking against the library.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "io/csv.h"
#include "serve/detection_engine.h"

using namespace autodetect;

namespace {

/// Tiny --key value / --flag parser: everything after the command.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "true";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : std::atoll(it->second.c_str());
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

CorpusProfile ProfileByName(const std::string& name) {
  if (name == "WEB") return CorpusProfile::Web();
  if (name == "WIKI") return CorpusProfile::Wiki();
  if (name == "PUB-XLS") return CorpusProfile::PubXls();
  if (name == "ENT-XLS") return CorpusProfile::EntXls();
  std::fprintf(stderr, "unknown profile '%s' (WEB, WIKI, PUB-XLS, ENT-XLS)\n",
               name.c_str());
  std::exit(2);
}

int CmdTrain(const Args& args) {
  GeneratorOptions gen;
  gen.profile = ProfileByName(args.Get("profile", "WEB"));
  gen.num_columns = static_cast<size_t>(args.GetInt("columns", 30000));
  gen.inject_errors = false;
  gen.seed = static_cast<uint64_t>(args.GetInt("seed", 20180610));
  GeneratedColumnSource source(gen);

  TrainOptions train;
  train.precision_target = args.GetDouble("precision", 0.95);
  train.memory_budget_bytes =
      static_cast<size_t>(args.GetInt("budget-mb", 64)) << 20;
  train.sketch_ratio = args.GetDouble("sketch", 1.0);
  train.smoothing_factor = args.GetDouble("smoothing", 0.1);
  train.num_threads = static_cast<size_t>(args.GetInt("jobs", 0));
  train.corpus_name = gen.profile.name + "-synthetic";

  std::printf("training on %zu %s columns (P>=%.2f, budget %s)...\n",
              gen.num_columns, gen.profile.name.c_str(), train.precision_target,
              HumanBytes(train.memory_budget_bytes).c_str());
  auto model = TrainModel(&source, train);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::string out = args.Get("out", "autodetect.model");
  Status saved = model->Save(out);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("%s", model->Summary().c_str());
  std::printf("saved to %s\n", out.c_str());
  return 0;
}

Result<Model> LoadModelArg(const Args& args) {
  std::string path = args.Get("model", "autodetect.model");
  auto model = Model::Load(path);
  if (!model.ok()) {
    std::fprintf(stderr, "cannot load model '%s': %s\n(train one first: autodetect_cli train --out %s)\n",
                 path.c_str(), model.status().ToString().c_str(), path.c_str());
  }
  return model;
}

int CmdScan(const Args& args) {
  auto model = LoadModelArg(args);
  if (!model.ok()) return 1;
  double min_confidence = args.GetDouble("min-confidence", 0.0);

  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: autodetect_cli scan --model m.bin "
                 "[--jobs N] [--cache-mb M] file.csv...\n");
    return 2;
  }

  EngineOptions engine_opts;
  engine_opts.num_threads = static_cast<size_t>(args.GetInt("jobs", 0));
  engine_opts.cache_bytes =
      static_cast<size_t>(args.GetInt("cache-mb", 32)) << 20;
  DetectionEngine engine(&*model, engine_opts);

  Stopwatch timer;
  size_t total_findings = 0;
  for (const auto& path : args.positional()) {
    auto table = ReadCsvFile(path);
    if (!table.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   table.status().ToString().c_str());
      continue;
    }
    std::vector<ColumnRequest> batch;
    batch.reserve(table->num_cols());
    for (size_t c = 0; c < table->num_cols(); ++c) {
      batch.push_back(ColumnRequest{table->header[c], table->Column(c)});
    }
    std::vector<ColumnReport> reports = engine.DetectBatch(batch);
    for (size_t c = 0; c < reports.size(); ++c) {
      for (const auto& cell : reports[c].cells) {
        if (cell.confidence < min_confidence) continue;
        ++total_findings;
        std::printf("%s:%s:row %u: suspicious value \"%s\" (confidence %.3f, "
                    "clashes with %u values)\n",
                    path.c_str(), batch[c].name.c_str(), cell.row + 2,
                    cell.value.c_str(), cell.confidence, cell.incompatible_with);
      }
    }
  }
  double elapsed = timer.ElapsedSeconds();
  EngineStats stats = engine.Stats();
  std::printf("%zu finding(s)\n", total_findings);
  std::printf("scanned %llu column(s) with %zu thread(s) in %.3fs "
              "(%.0f columns/s, cache hit rate %.1f%%)\n",
              static_cast<unsigned long long>(stats.columns),
              engine.num_threads(), elapsed,
              elapsed > 0 ? static_cast<double>(stats.columns) / elapsed : 0.0,
              stats.cache.HitRate() * 100.0);
  return 0;
}

int CmdPair(const Args& args) {
  auto model = LoadModelArg(args);
  if (!model.ok()) return 1;
  if (args.positional().size() != 2) {
    std::fprintf(stderr, "usage: autodetect_cli pair --model m.bin VALUE1 VALUE2\n");
    return 2;
  }
  Detector detector(&*model);
  PairExplanation explanation =
      detector.ExplainPair(args.positional()[0], args.positional()[1]);
  std::printf("\"%s\" vs \"%s\"\n%s", args.positional()[0].c_str(),
              args.positional()[1].c_str(), explanation.ToString().c_str());
  return explanation.verdict.incompatible ? 3 : 0;
}

int CmdInfo(const Args& args) {
  auto model = LoadModelArg(args);
  if (!model.ok()) return 1;
  std::printf("%s", model->Summary().c_str());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "autodetect_cli — corpus-statistics error detection "
               "(Auto-Detect, SIGMOD'18)\n\n"
               "commands:\n"
               "  train --columns N --profile WEB|WIKI|PUB-XLS|ENT-XLS\n"
               "        --precision P --budget-mb M [--sketch R] [--seed S]\n"
               "        [--out FILE]                     train + save a model\n"
               "  scan  --model FILE [--min-confidence C] [--jobs N]\n"
               "        [--cache-mb M] file.csv...        flag suspicious cells\n"
               "        (--jobs 0 = all cores; --cache-mb 0 disables the\n"
               "         cross-column pair-verdict cache)\n"
               "  pair  --model FILE VALUE1 VALUE2       explain one pair\n"
               "  info  --model FILE                     describe a model\n");
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "train") return CmdTrain(args);
  if (command == "scan") return CmdScan(args);
  if (command == "pair") return CmdPair(args);
  if (command == "info") return CmdInfo(args);
  Usage();
  return 2;
}
