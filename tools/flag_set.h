#pragma once

#include <cerrno>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/dump.h"
#include "serve/detection_engine.h"

/// \file flag_set.h
/// Shared typed flag parsing for the CLI tools. Each tool registers the
/// flags it understands (or whole reusable groups like the engine and
/// metrics flags, which used to be copy-pasted per command) and gets strict
/// parsing in return: unknown flags, malformed numbers and missing values
/// are Status errors instead of silently-ignored strings, so a typo'd
/// `--jobz 8` fails the run rather than quietly single-threading it.

namespace autodetect {

/// Typed --key value / --switch parser over argv. Values bind to caller-owned
/// storage (which also carries the default), so a parsed flag set IS the
/// tool's config struct.
class FlagSet {
 public:
  /// Registration. `help` is shown by Usage(); the flag name is spelled
  /// without the leading "--".
  void String(std::string name, std::string* target, std::string help) {
    Register(std::move(name), Flag{Flag::kString, target, std::move(help)});
  }
  void Double(std::string name, double* target, std::string help) {
    Register(std::move(name), Flag{Flag::kDouble, target, std::move(help)});
  }
  void Int(std::string name, int64_t* target, std::string help) {
    Register(std::move(name), Flag{Flag::kInt, target, std::move(help)});
  }
  /// A presence switch: `--flag` sets the bool, no value is consumed.
  void Bool(std::string name, bool* target, std::string help) {
    Register(std::move(name), Flag{Flag::kBool, target, std::move(help)});
  }

  /// \brief Parses argv[start..argc). Flags may appear in any position;
  /// non-flag tokens accumulate as positionals (readable via positional()).
  Status Parse(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::string name = arg.substr(2);
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::Invalid("unknown flag --" + name);
      }
      Flag& flag = it->second;
      if (flag.type == Flag::kBool) {
        *static_cast<bool*>(flag.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::Invalid("flag --" + name + " requires a value");
      }
      AD_RETURN_NOT_OK(flag.Assign(name, argv[++i]));
    }
    return Status::OK();
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// \brief One "  --name  help" line per registered flag, sorted by name.
  std::string Usage() const {
    std::string out;
    for (const auto& [name, flag] : flags_) {
      out += "  --" + name;
      if (flag.type != Flag::kBool) out += " <v>";
      out += "  " + flag.help + "\n";
    }
    return out;
  }

 private:
  struct Flag {
    enum Type { kString, kDouble, kInt, kBool };
    Type type;
    void* target;
    std::string help;

    Status Assign(const std::string& name, const char* value) {
      errno = 0;
      char* end = nullptr;
      switch (type) {
        case kString:
          *static_cast<std::string*>(target) = value;
          return Status::OK();
        case kDouble: {
          double v = std::strtod(value, &end);
          if (end == value || *end != '\0' || errno == ERANGE) {
            return Status::Invalid("flag --" + name + ": '" + value +
                                   "' is not a number");
          }
          *static_cast<double*>(target) = v;
          return Status::OK();
        }
        case kInt: {
          long long v = std::strtoll(value, &end, 10);
          if (end == value || *end != '\0' || errno == ERANGE) {
            return Status::Invalid("flag --" + name + ": '" + value +
                                   "' is not an integer");
          }
          *static_cast<int64_t*>(target) = v;
          return Status::OK();
        }
        case kBool:
          return Status::Internal("bool flag --" + name + " consumed a value");
      }
      return Status::Internal("unreachable");
    }
  };

  void Register(std::string name, Flag flag) { flags_.emplace(std::move(name), flag); }

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// The engine knobs shared by every scanning command.
struct EngineFlags {
  int64_t jobs = 0;       ///< worker threads; 0 = all cores
  int64_t cache_mb = 32;  ///< pair-verdict cache budget; 0 disables

  void Register(FlagSet* flags) {
    flags->Int("jobs", &jobs, "worker threads (0 = all cores)");
    flags->Int("cache-mb", &cache_mb, "pair-verdict cache MB (0 = off)");
  }

  void Apply(EngineOptions* options) const {
    options->num_threads = static_cast<size_t>(jobs);
    options->cache_bytes = static_cast<size_t>(cache_mb) << 20;
  }
};

/// The metrics export knobs shared by every long-running command.
struct MetricsFlags {
  std::string metrics_out;       ///< empty = no export
  int64_t metrics_interval_ms = 0;  ///< 0 = one final dump only

  void Register(FlagSet* flags) {
    flags->String("metrics-out", &metrics_out,
                  "write metrics snapshot here (.json, or .prom/.txt for "
                  "Prometheus text)");
    flags->Int("metrics-interval-ms", &metrics_interval_ms,
               "also rewrite the snapshot every N ms while running");
  }

  bool enabled() const { return !metrics_out.empty(); }

  /// \brief Starts the periodic dumper when an interval was requested.
  /// Returns null when disabled or in one-shot mode; call Finish() at exit
  /// either way.
  std::unique_ptr<MetricsDumper> StartDumper(MetricsRegistry* registry) const {
    if (!enabled() || metrics_interval_ms <= 0) return nullptr;
    return std::make_unique<MetricsDumper>(registry, metrics_out,
                                           static_cast<uint64_t>(metrics_interval_ms));
  }

  /// \brief Writes the final snapshot (stopping `dumper` first if running).
  Status Finish(MetricsRegistry* registry,
                std::unique_ptr<MetricsDumper> dumper) const {
    if (!enabled()) return Status::OK();
    if (dumper != nullptr) return dumper->Stop();
    return WriteMetricsFile(registry, metrics_out);
  }
};

}  // namespace autodetect
