#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "detect/model_provider.h"
#include "obs/dump.h"
#include "serve/detection_engine.h"
#include "serve/model_registry.h"
#include "text/run_tokenizer.h"

/// \file flag_set.h
/// Shared typed flag parsing for the CLI tools. Each tool registers the
/// flags it understands (or whole reusable groups like the engine and
/// metrics flags, which used to be copy-pasted per command) and gets strict
/// parsing in return: unknown flags, malformed numbers and missing values
/// are Status errors instead of silently-ignored strings, so a typo'd
/// `--jobz 8` fails the run rather than quietly single-threading it.

namespace autodetect {

/// Typed --key value / --switch parser over argv. Values bind to caller-owned
/// storage (which also carries the default), so a parsed flag set IS the
/// tool's config struct. Registration snapshots each target's current value
/// as the default shown by Usage(), so the auto-generated --help is always
/// in sync with the config struct — no hand-maintained usage strings.
class FlagSet {
 public:
  /// Registration. `help` is shown by Usage(); the flag name is spelled
  /// without the leading "--".
  void String(std::string name, std::string* target, std::string help) {
    std::string def = target->empty() ? "" : "\"" + *target + "\"";
    Register(std::move(name),
             Flag{Flag::kString, target, std::move(help), std::move(def)});
  }
  void Double(std::string name, double* target, std::string help) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", *target);
    Register(std::move(name),
             Flag{Flag::kDouble, target, std::move(help), buf});
  }
  void Int(std::string name, int64_t* target, std::string help) {
    Register(std::move(name), Flag{Flag::kInt, target, std::move(help),
                                   std::to_string(*target)});
  }
  /// A presence switch: `--flag` sets the bool, no value is consumed.
  void Bool(std::string name, bool* target, std::string help) {
    Register(std::move(name), Flag{Flag::kBool, target, std::move(help), ""});
  }
  /// A repeatable value flag: every occurrence appends to `target`
  /// (`retrain --add-shard a.ads --add-shard b.ads`).
  void StringList(std::string name, std::vector<std::string>* target,
                  std::string help) {
    Register(std::move(name),
             Flag{Flag::kStringList, target, std::move(help), ""});
  }

  /// \brief Registers a retired spelling. Using it is a parse error that
  /// names the replacement — strictly better than silently accepting two
  /// spellings forever or "unknown flag" with no hint. `replacement` is
  /// either a bare flag name ("model", rendered as --model) or a free-text
  /// pointer ("the train-shard subcommand") for flags whose job moved to a
  /// different subcommand entirely.
  void Deprecated(std::string name, std::string replacement) {
    if (replacement.rfind("--", 0) != 0 &&
        replacement.find(' ') == std::string::npos) {
      replacement = "--" + replacement;
    }
    deprecated_.emplace(std::move(name), std::move(replacement));
  }

  /// \brief Parses argv[start..argc). Flags may appear in any position;
  /// non-flag tokens accumulate as positionals (readable via positional()).
  /// `--help` / `-h` are built in: they short-circuit parsing (nothing after
  /// them is validated) and set help_requested() — callers print Usage() and
  /// exit 0 instead of running the command.
  Status Parse(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        return Status::OK();
      }
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::string name = arg.substr(2);
      auto dep = deprecated_.find(name);
      if (dep != deprecated_.end()) {
        return Status::Invalid("flag --" + name + " was retired; use " +
                               dep->second);
      }
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::Invalid("unknown flag --" + name);
      }
      Flag& flag = it->second;
      if (flag.type == Flag::kBool) {
        *static_cast<bool*>(flag.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::Invalid("flag --" + name + " requires a value");
      }
      AD_RETURN_NOT_OK(flag.Assign(name, argv[++i]));
    }
    return Status::OK();
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// True once Parse saw `--help` or `-h`.
  bool help_requested() const { return help_requested_; }

  /// \brief One line per registered flag, sorted by name: the spelling with
  /// a type hint (<str>/<int>/<float>), the help text, and the default that
  /// was in the bound storage at registration time. Generated, so it cannot
  /// drift from the flags a command actually accepts.
  std::string Usage() const {
    // First pass: column width so the help text lines up.
    size_t width = 0;
    for (const auto& [name, flag] : flags_) {
      width = std::max(width, name.size() + flag.TypeHint().size());
    }
    std::string out;
    for (const auto& [name, flag] : flags_) {
      std::string left = "--" + name + std::string(flag.TypeHint());
      out += "  " + left;
      out.append(width + 4 - (name.size() + flag.TypeHint().size()), ' ');
      out += flag.help;
      if (!flag.default_text.empty()) {
        out += " (default: " + flag.default_text + ")";
      }
      out += "\n";
    }
    out += "  --help";
    out.append(width >= 4 ? width - 4 + 4 : 4, ' ');
    out += "show this help\n";
    return out;
  }

 private:
  struct Flag {
    enum Type { kString, kDouble, kInt, kBool, kStringList };
    Type type;
    void* target;
    std::string help;
    std::string default_text;  ///< snapshot of *target at registration

    std::string_view TypeHint() const {
      switch (type) {
        case kString: return " <str>";
        case kDouble: return " <float>";
        case kInt: return " <int>";
        case kBool: return "";
        case kStringList: return " <str>...";
      }
      return "";
    }

    Status Assign(const std::string& name, const char* value) {
      errno = 0;
      char* end = nullptr;
      switch (type) {
        case kString:
          *static_cast<std::string*>(target) = value;
          return Status::OK();
        case kStringList:
          static_cast<std::vector<std::string>*>(target)->push_back(value);
          return Status::OK();
        case kDouble: {
          double v = std::strtod(value, &end);
          if (end == value || *end != '\0' || errno == ERANGE) {
            return Status::Invalid("flag --" + name + ": '" + value +
                                   "' is not a number");
          }
          *static_cast<double*>(target) = v;
          return Status::OK();
        }
        case kInt: {
          long long v = std::strtoll(value, &end, 10);
          if (end == value || *end != '\0' || errno == ERANGE) {
            return Status::Invalid("flag --" + name + ": '" + value +
                                   "' is not an integer");
          }
          *static_cast<int64_t*>(target) = v;
          return Status::OK();
        }
        case kBool:
          return Status::Internal("bool flag --" + name + " consumed a value");
      }
      return Status::Internal("unreachable");
    }
  };

  void Register(std::string name, Flag flag) { flags_.emplace(std::move(name), flag); }

  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> deprecated_;  ///< old name -> new name
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

/// The model-acquisition knobs shared by every model-consuming command:
/// `--model PATH` names the artifact, `--model-watch` turns on hot reload
/// (mtime-polled via ModelRegistry). Old flag spellings are registered as
/// deprecated so users get pointed at the new name instead of a bare
/// "unknown flag".
struct ModelFlags {
  std::string model = "autodetect.model";
  bool model_watch = false;
  int64_t model_poll_ms = 1000;

  void Register(FlagSet* flags) {
    flags->String("model", &model, "trained model file (ADMODEL1 or ADMODEL2)");
    flags->Bool("model-watch", &model_watch,
                "hot-reload the model when the file changes");
    flags->Int("model-poll-ms", &model_poll_ms,
               "mtime poll interval for --model-watch");
    flags->Deprecated("model-path", "model");
    flags->Deprecated("model-file", "model");
    flags->Deprecated("watch", "model-watch");
  }

  /// \brief Loads the model once, with a hint appended to load failures.
  Result<Model> Load() const {
    auto loaded = Model::Load(model);
    if (!loaded.ok()) {
      return loaded.status().WithContext(
          "cannot load model '" + model +
          "' (train one first: autodetect_cli train --out " + model + ")");
    }
    return loaded;
  }

  /// \brief Builds the provider the flags describe: a FixedModel around one
  /// load, or a watching ModelRegistry when --model-watch is set. The
  /// returned provider owns the model/registry; keep it alive as long as
  /// any executor built on it.
  Result<std::unique_ptr<ModelProvider>> MakeProvider(
      MetricsRegistry* metrics) const {
    if (model_watch) {
      auto registry = std::make_unique<ModelRegistry>(metrics);
      AD_RETURN_NOT_OK(registry->StartWatch(
          model, std::chrono::milliseconds(model_poll_ms)));
      return std::unique_ptr<ModelProvider>(std::move(registry));
    }
    AD_ASSIGN_OR_RETURN(Model loaded, Load());
    return std::unique_ptr<ModelProvider>(std::make_unique<FixedModel>(
        std::make_shared<const Model>(std::move(loaded))));
  }
};

/// The engine knobs shared by every scanning command, including the
/// resilience surface: deadlines (partial reports instead of slow scans),
/// per-column degradation budgets, and admission control in front of the
/// worker pool.
struct EngineFlags {
  int64_t jobs = 0;       ///< worker threads; 0 = all cores
  int64_t cache_mb = 32;  ///< pair-verdict cache budget; 0 disables
  int64_t deadline_ms = 0;        ///< per-batch deadline; 0 = none
  int64_t column_budget_us = 0;   ///< degrade past this per-column; 0 = off
  int64_t queue_cap = 0;          ///< admission cap in columns; 0 = unbounded
  std::string admission_policy = "block";
  int64_t admission_timeout_ms = 1000;
  bool no_simd = false;   ///< pin the tokenizer to the scalar reference
  bool no_dedup = false;  ///< score columns without value interning
  bool no_sketch = false; ///< exclude sketch-compressed languages from scoring

  void Register(FlagSet* flags) {
    flags->Int("jobs", &jobs, "worker threads (0 = all cores)");
    flags->Int("cache-mb", &cache_mb, "pair-verdict cache MB (0 = off)");
    flags->Int("deadline-ms", &deadline_ms,
               "per-batch deadline; past-deadline columns return partial "
               "reports (0 = none)");
    flags->Int("column-budget-us", &column_budget_us,
               "per-column score budget before the degraded single-language "
               "fallback kicks in (0 = unlimited)");
    flags->Int("queue-cap", &queue_cap,
               "admission cap in columns across in-flight batches (0 = "
               "unbounded)");
    flags->String("admission-policy", &admission_policy,
                  "over-capacity behaviour: block, shed-oldest or reject");
    flags->Int("admission-timeout-ms", &admission_timeout_ms,
               "longest a batch waits for capacity under --admission-policy "
               "block");
    flags->Bool("no-simd", &no_simd,
                "tokenize with the scalar reference instead of the dispatched "
                "SIMD tier (escape hatch / A-B runs)");
    flags->Bool("no-dedup", &no_dedup,
                "scan columns without value interning (escape hatch; reports "
                "are identical either way)");
    flags->Bool("no-sketch", &no_sketch,
                "exclude sketch-compressed languages from scoring (escape "
                "hatch for mixed exact/sketched models)");
  }

  Status Apply(EngineOptions* options) const {
    options->num_threads = static_cast<size_t>(jobs);
    options->cache_bytes = static_cast<size_t>(cache_mb) << 20;
    options->default_deadline_ms = static_cast<uint64_t>(deadline_ms);
    options->detector.column_budget_us = static_cast<uint64_t>(column_budget_us);
    options->detector.dedup = !no_dedup;
    options->detector.sketch_estimates = !no_sketch;
    // Process-wide: the tokenizer dispatch is shared by every detector.
    if (no_simd) SetSimdTier(SimdTier::kScalar);
    options->admission.queue_cap_columns = static_cast<size_t>(queue_cap);
    Result<AdmissionPolicy> policy = ParseAdmissionPolicy(admission_policy);
    if (!policy.ok()) {
      return policy.status().WithContext("parsing --admission-policy");
    }
    options->admission.policy = *policy;
    options->admission.block_timeout_ms =
        static_cast<uint64_t>(admission_timeout_ms);
    return Status::OK();
  }
};

/// The metrics export knobs shared by every long-running command.
struct MetricsFlags {
  std::string metrics_out;       ///< empty = no export
  int64_t metrics_interval_ms = 0;  ///< 0 = one final dump only

  void Register(FlagSet* flags) {
    flags->String("metrics-out", &metrics_out,
                  "write metrics snapshot here (.json, or .prom/.txt for "
                  "Prometheus text)");
    flags->Int("metrics-interval-ms", &metrics_interval_ms,
               "also rewrite the snapshot every N ms while running");
  }

  bool enabled() const { return !metrics_out.empty(); }

  /// \brief Starts the periodic dumper when an interval was requested.
  /// Returns null when disabled or in one-shot mode; call Finish() at exit
  /// either way.
  std::unique_ptr<MetricsDumper> StartDumper(MetricsRegistry* registry) const {
    if (!enabled() || metrics_interval_ms <= 0) return nullptr;
    return std::make_unique<MetricsDumper>(registry, metrics_out,
                                           static_cast<uint64_t>(metrics_interval_ms));
  }

  /// \brief Writes the final snapshot (stopping `dumper` first if running).
  Status Finish(MetricsRegistry* registry,
                std::unique_ptr<MetricsDumper> dumper) const {
    if (!enabled()) return Status::OK();
    if (dumper != nullptr) return dumper->Stop();
    return WriteMetricsFile(registry, metrics_out);
  }
};

}  // namespace autodetect
