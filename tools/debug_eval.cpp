/// \file debug_eval.cpp
/// Developer tool: runs Auto-Detect on a splice test set and prints the top
/// ranked predictions with ground truth, to diagnose ranking and
/// false-positive behaviour.

#include <cstdio>

#include "../bench/bench_util.h"

using namespace autodetect;
using namespace autodetect::benchutil;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  size_t ratio = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10;
  HarnessConfig config = StandardConfig();
  auto model = TrainOrLoadModel(config);
  AD_CHECK_OK(model.status());
  Detector detector(&*model);
  AutoDetectMethod method(&detector);

  auto cases = SpliceSet(config, CorpusProfile::Wiki(), 400, ratio, 1000 + ratio);
  MethodEvaluation eval = EvaluateMethod(method, cases);

  std::printf("predictions=%zu dirty_cases=%zu\n", eval.ranked.size(),
              eval.num_dirty_cases);

  // Detail the first few false positives: which pairs fired, under which
  // language, with what statistics.
  int fp_shown = 0;
  for (const auto& p : eval.ranked) {
    if (p.correct || fp_shown >= 3) continue;
    const TestCase& tc = cases[p.case_index];
    ++fp_shown;
    std::printf("\nFP detail: \"%s\" in %s column (%s)\n", p.suspicion.value.c_str(),
                tc.domain.c_str(), tc.dirty ? "dirty elsewhere" : "clean");
    ColumnReport report = detector.Detect(DetectRequest{tc.domain, tc.values}).column;
    for (size_t i = 0; i < report.pairs.size() && i < 4; ++i) {
      const auto& pair = report.pairs[i];
      PairVerdict v = detector.ScorePair(pair.u, pair.v);
      std::printf("  pair \"%s\" ~ \"%s\": conf=%.3f min_npmi=%+.3f lang=%d\n",
                  pair.u.c_str(), pair.v.c_str(), pair.confidence, v.min_npmi,
                  v.best_language);
    }
  }
  std::printf("\n");
  std::printf("%-4s %-5s %-8s %-24s %-18s %s\n", "rank", "ok?", "conf", "value",
              "domain", "truth");
  for (size_t i = 0; i < eval.ranked.size() && i < 60; ++i) {
    const auto& p = eval.ranked[i];
    const TestCase& tc = cases[p.case_index];
    std::printf("%-4zu %-5s %-8.4f %-24.24s %-18s %s\n", i + 1,
                p.correct ? "ok" : "FP", p.suspicion.score,
                p.suspicion.value.c_str(), tc.domain.c_str(),
                tc.dirty ? tc.dirty_value.c_str() : "(clean)");
  }
  return 0;
}
