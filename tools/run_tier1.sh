#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then run the
# generalization-kernel benchmark and leave its JSON report in the build
# directory (BENCH_generalize.json). Run from anywhere; exits non-zero on
# the first failing step.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Kernel throughput report: old per-language loop vs the shared-tokenization
# kernel, plus the stats-build and calibration stages that sit on it.
"$BUILD_DIR/bench/bench_generalize_kernel" \
  --benchmark_min_time=0.1 \
  --benchmark_out="$BUILD_DIR/BENCH_generalize.json" \
  --benchmark_out_format=json

echo "tier-1 green; benchmark report: $BUILD_DIR/BENCH_generalize.json"
