#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then run the
# generalization-kernel and detection-engine benchmarks and leave their JSON
# reports in the build directory (BENCH_generalize.json, BENCH_detect.json).
# Run from anywhere; exits non-zero on the first failing step.
#
# Opt-in sanitizer mode: SANITIZE=thread (or address/undefined) builds the
# library and the serving-layer stress test in a separate build-$SANITIZE
# tree with -fsanitize=$SANITIZE and runs serve_test under it, so data races
# in DetectionEngine/ShardedPairCache fail the gate deterministically
# instead of flaking. Example:
#
#   SANITIZE=thread tools/run_tier1.sh
#
# Opt-in compile-out mode: METRICS=off builds the whole tree with
# -DAUTODETECT_NO_METRICS=ON in a separate build-nometrics tree and runs the
# full test suite there, proving the observability layer compiles out
# cleanly (call sites need no #ifdefs and tests stay green with all-zero
# snapshots):
#
#   METRICS=off tools/run_tier1.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SANITIZE="${SANITIZE:-}"
METRICS="${METRICS:-on}"

if [[ "$METRICS" == "off" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-nometrics}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_NO_METRICS=ON \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  echo "tests green with -DAUTODETECT_NO_METRICS=ON"
  exit 0
fi

if [[ -n "$SANITIZE" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-$SANITIZE}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_SANITIZE="$SANITIZE" \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target serve_test
  "$BUILD_DIR/tests/serve_test"
  echo "serve_test green under -fsanitize=$SANITIZE"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Kernel throughput report: old per-language loop vs the shared-tokenization
# kernel, plus the stats-build and calibration stages that sit on it.
"$BUILD_DIR/bench/bench_generalize_kernel" \
  --benchmark_min_time=0.1 \
  --benchmark_out="$BUILD_DIR/BENCH_generalize.json" \
  --benchmark_out_format=json

# Serving throughput report: sequential Detector vs DetectionEngine at
# 1/2/4/8 workers, cached and uncached (columns/s + cache hit rate).
"$BUILD_DIR/bench/bench_detect_engine" \
  --benchmark_min_time=0.1 \
  --benchmark_out="$BUILD_DIR/BENCH_detect.json" \
  --benchmark_out_format=json

echo "tier-1 green; benchmark reports: $BUILD_DIR/BENCH_generalize.json $BUILD_DIR/BENCH_detect.json"
