#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite (the golden leg
# runs once per model artifact format, MODEL=v1 and MODEL=v2, and must
# produce identical reports), then run the generalization-kernel,
# detection-engine and model-load benchmarks and leave their JSON reports in
# the build directory (BENCH_generalize.json, BENCH_detect.json,
# BENCH_model_load.json). Two of those are self-gating: bench_model_load
# asserts v2 cold-load speedup and v1/v2 + hot-reload report equivalence;
# bench_generalize_kernel asserts SIMD-tier/scalar tokenizer equivalence,
# a >=2x keys/s floor for the shared-tokenization kernel over the
# per-language loop, and a >=2x SIMD-vs-scalar tokenize floor on
# run-dominated cells. Either failing fails the gate.
# Run from anywhere; exits non-zero on the first failing step.
#
# Opt-in sanitizer mode: SANITIZE=thread (or address/undefined) builds the
# library and the concurrency/fuzz-sensitive tests in a separate
# build-$SANITIZE tree with -fsanitize=$SANITIZE and runs serve_test
# (DetectionEngine/ShardedPairCache races, ModelRegistry reload races),
# io_test (mmap + serde bounds) and model_v2_test (ADMODEL2
# truncation/bit-flip fuzz) under it, so races and out-of-bounds reads fail
# the gate deterministically instead of flaking. Example:
#
#   SANITIZE=thread tools/run_tier1.sh
#
# Opt-in compile-out mode: METRICS=off builds the whole tree with
# -DAUTODETECT_NO_METRICS=ON in a separate build-nometrics tree and runs the
# full test suite there, proving the observability layer compiles out
# cleanly (call sites need no #ifdefs and tests stay green with all-zero
# snapshots):
#
#   METRICS=off tools/run_tier1.sh
#
# Opt-in scalar-tokenizer mode: SIMD=off builds the whole tree with
# -DAUTODETECT_NO_SIMD=ON in a separate build-nosimd tree and runs the full
# test suite plus the golden detection suite there, proving the SSSE3/AVX2
# kernels compile out cleanly and the scalar reference produces identical
# reports (the default build's fuzz_test already proves per-tier run-list
# equality where the CPU supports the kernels):
#
#   SIMD=off tools/run_tier1.sh
#
# Opt-in model-format mode: MODEL=v1 (or v2) builds the default tree and
# runs just the golden detection suite with the model round-tripped through
# that artifact format — the full gate already runs both; this is the quick
# single-format spelling:
#
#   MODEL=v1 tools/run_tier1.sh
#
# Opt-in chaos mode: FAILPOINTS=on builds a separate build-failpoints tree
# with -DAUTODETECT_FAILPOINTS=ON and runs (a) resilience_test, which arms
# failpoints through the API (reload failures, short reads, forced cache
# misses, slow workers), (b) the serve/io/model suites with all failpoints
# disarmed — a chaos build must change nothing until a site is armed — and
# (c) io_test with AD_FAILPOINTS injecting short reads and EINTR, proving
# the buffered read loop recovers byte-exactly:
#
#   FAILPOINTS=on tools/run_tier1.sh
#
# The default build compiles failpoints OUT (AD_FAILPOINT expands to a
# literal `false`); the default leg asserts no failpoint site string leaks
# into the shipped binary.
#
# Opt-in sketch mode: SKETCH=on runs the full suite in the default tree
# (which includes the quality-delta harness pinning sketched-vs-exact
# precision/recall), re-checks exact-mode golden byte-identity on the
# sketch-capable build for both artifact formats, and runs the self-gating
# sketch benchmark, which asserts the SKCH section costs <= 10% of the
# exact DATA bytes, an estimate throughput floor, and the precision-delta
# bound, leaving BENCH_sketch.json in the build directory:
#
#   SKETCH=on tools/run_tier1.sh
#
# Opt-in serving smoke: SERVE=on trains a tiny model, boots
# `autodetect_cli serve` on an ephemeral loopback port (--port 0 +
# --port-file) with memory budgets armed, then drives it black-box with
# serve_smoke: an ADWIRE1 batch, an HTTP/1.1 JSON /detect round-trip, a
# slow-loris probe that the partial-request timeout must shut down, and a
# /metrics scrape that must carry the serve.net.*, serve.mem.* and
# serve.health.* series — finishing with the drain smoke: SIGTERM lands
# mid-batch, every admitted column still reports, new connections are
# refused, and the server exits 0 inside --drain-timeout-ms:
#
#   SERVE=on tools/run_tier1.sh
#
# Combined chaos serving: SERVE=on FAILPOINTS=on boots the chaos build's
# server twice — once with serve.worker.wedge armed (the health ladder must
# flip degraded and recover to healthy, watched from outside via /healthz),
# once with registry.reload.flap armed under --model-watch (repeated reload
# failures must trip the model-reload circuit breaker, visible in the
# /metrics scrape) — and finishes each with a POST /drain shutdown:
#
#   SERVE=on FAILPOINTS=on tools/run_tier1.sh
#
# Opt-in sharded-training gate: SHARDS=on exercises the map/reduce training
# CLI end to end — four train-shard partitions, merge-stats in scrambled
# order, train --from-stats — and byte-compares the resulting model with a
# one-shot train of the same corpus (the ADSHARD1 determinism contract at
# the artifact level). It then runs the self-gating incremental-retraining
# benchmark, which asserts a delta retrain on a 10%-grown corpus is >=3x
# faster than a full retrain AND byte-identical to it, leaving
# BENCH_train_shards.json in the build directory:
#
#   SHARDS=on tools/run_tier1.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SANITIZE="${SANITIZE:-}"
METRICS="${METRICS:-on}"
MODEL="${MODEL:-}"
FAILPOINTS="${FAILPOINTS:-off}"
SIMD="${SIMD:-on}"
SKETCH="${SKETCH:-off}"
SERVE="${SERVE:-off}"
SHARDS="${SHARDS:-off}"

if [[ "$SIMD" == "off" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-nosimd}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_NO_SIMD=ON \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  # Scalar-only reports must be byte-identical to the SIMD build's golden
  # reports — same fixtures, same expectations.
  AD_MODEL_FORMAT=v1 "$BUILD_DIR/tests/golden_test"
  AD_MODEL_FORMAT=v2 "$BUILD_DIR/tests/golden_test"
  echo "tests green with -DAUTODETECT_NO_SIMD=ON (scalar tokenizer)"
  exit 0
fi

if [[ "$METRICS" == "off" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-nometrics}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_NO_METRICS=ON \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  echo "tests green with -DAUTODETECT_NO_METRICS=ON"
  exit 0
fi

if [[ -n "$MODEL" ]]; then
  if [[ "$MODEL" != "v1" && "$MODEL" != "v2" ]]; then
    echo "MODEL must be v1 or v2, got '$MODEL'" >&2
    exit 2
  fi
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target golden_test
  AD_MODEL_FORMAT="$MODEL" "$BUILD_DIR/tests/golden_test"
  echo "golden detection suite green with the $MODEL model artifact"
  exit 0
fi

if [[ "$FAILPOINTS" == "on" && "$SERVE" == "on" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-failpoints}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_FAILPOINTS=ON \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target autodetect_cli serve_smoke
  SERVE_DIR="$(mktemp -d)"
  SERVE_PID=""
  trap '[[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$SERVE_DIR"' EXIT
  "$BUILD_DIR/tools/autodetect_cli" train \
    --columns 400 --budget-mb 8 --out "$SERVE_DIR/model.bin"

  # --- Wedged-worker chaos: the first dispatch stalls 400ms, which must
  # trip the 250ms watchdog into degraded and then recover to healthy.
  AD_FAILPOINTS="serve.worker.wedge=once" \
    "$BUILD_DIR/tools/autodetect_cli" serve --model "$SERVE_DIR/model.bin" \
    --port 0 --port-file "$SERVE_DIR/port" --wedge-timeout-ms 250 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SERVE_DIR/port" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "wedge server died on startup" >&2; exit 1; }
    sleep 0.1
  done
  PORT="$(cat "$SERVE_DIR/port")"
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode wedge --wait-ms 15000
  # POST /drain shutdown: an idle drain must still exit 0 promptly.
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode drain --wait-ms 10000
  wait "$SERVE_PID" || { echo "wedge server exited non-zero after drain" >&2; exit 1; }
  SERVE_PID=""
  rm -f "$SERVE_DIR/port"

  # --- Flapping-reload chaos: the initial load succeeds (skip1), every
  # watcher reload after it fails, and the repeated failures must trip the
  # model-reload circuit breaker where the scrape can see it.
  AD_FAILPOINTS="registry.reload.flap=skip1" \
    "$BUILD_DIR/tools/autodetect_cli" serve --model "$SERVE_DIR/model.bin" \
    --model-watch --model-poll-ms 50 \
    --port 0 --port-file "$SERVE_DIR/port" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SERVE_DIR/port" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "flap server died on startup" >&2; exit 1; }
    sleep 0.1
  done
  PORT="$(cat "$SERVE_DIR/port")"
  TRIPPED=""
  for _ in $(seq 1 100); do
    touch "$SERVE_DIR/model.bin"  # new mtime so the watcher keeps reloading
    SCRAPE="$("$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode metrics)"
    if awk '$1 == "autodetect_serve_breaker_model_reload_open_total" && $2 + 0 >= 1 { found = 1 } END { exit !found }' <<<"$SCRAPE"; then
      TRIPPED=1
      break
    fi
    sleep 0.1
  done
  [[ -n "$TRIPPED" ]] || { echo "reload flapping never tripped the circuit breaker" >&2; exit 1; }
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode drain --wait-ms 10000
  wait "$SERVE_PID" || { echo "flap server exited non-zero after drain" >&2; exit 1; }
  SERVE_PID=""
  echo "chaos serving green: wedge -> degraded -> healthy; reload flapping tripped the breaker; POST /drain exits 0"
  exit 0
fi

if [[ "$FAILPOINTS" == "on" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-failpoints}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_FAILPOINTS=ON \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target resilience_test serve_test io_test model_v2_test shard_test
  # The chaos suite proper: arms failpoints via the API per test case.
  "$BUILD_DIR/tests/resilience_test"
  # Disarmed chaos build must behave exactly like the default build.
  "$BUILD_DIR/tests/serve_test"
  "$BUILD_DIR/tests/io_test"
  "$BUILD_DIR/tests/model_v2_test"
  # Checkpoint loading under injected faults: shard_test's failpoint cases
  # arm io.read.short/eintr and serde.read.truncate through the API and
  # require byte-exact recovery or typed IOError — never silent truncation.
  "$BUILD_DIR/tests/shard_test"
  # Env-armed injection: short reads and EINTR on the buffered read path
  # must be absorbed by the retry loop with byte-exact results.
  AD_FAILPOINTS="io.read.short=4x;io.read.eintr=2x" "$BUILD_DIR/tests/io_test"
  echo "chaos suite green with -DAUTODETECT_FAILPOINTS=ON"
  exit 0
fi

if [[ "$SKETCH" == "on" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$JOBS"
  # Full suite includes quality_delta_test: the sketched sibling of a
  # pinned pipeline must stay within the precision/recall gate and match
  # the committed golden metric table.
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  # Exact-mode golden reports must stay byte-identical on a sketch-capable
  # build, in both artifact formats — sketching is strictly opt-in.
  AD_MODEL_FORMAT=v1 "$BUILD_DIR/tests/golden_test"
  AD_MODEL_FORMAT=v2 "$BUILD_DIR/tests/golden_test"
  # Self-gating sketch benchmark: SKCH <= 10% of exact DATA bytes,
  # corrected-estimate throughput floor, precision-delta bound.
  "$BUILD_DIR/bench/bench_fig8a_sketch" "$BUILD_DIR/BENCH_sketch.json"
  echo "sketch gate green; report: $BUILD_DIR/BENCH_sketch.json"
  exit 0
fi

if [[ "$SERVE" == "on" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target autodetect_cli serve_smoke
  SERVE_DIR="$(mktemp -d)"
  SERVE_PID=""
  trap '[[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$SERVE_DIR"' EXIT
  # A tiny model is enough: the smoke proves protocol plumbing end to end,
  # not detection quality.
  "$BUILD_DIR/tools/autodetect_cli" train \
    --columns 400 --budget-mb 8 --out "$SERVE_DIR/model.bin"
  "$BUILD_DIR/tools/autodetect_cli" serve --model "$SERVE_DIR/model.bin" \
    --port 0 --port-file "$SERVE_DIR/port" \
    --tenants 'free=2:reject' --partial-timeout-ms 2000 \
    --mem-budget-mb 64 --request-budget-mb 8 --drain-timeout-ms 10000 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SERVE_DIR/port" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "server died on startup" >&2; exit 1; }
    sleep 0.1
  done
  [[ -s "$SERVE_DIR/port" ]] || { echo "server never wrote its port file" >&2; exit 1; }
  PORT="$(cat "$SERVE_DIR/port")"
  # Black-box protocol smokes, each a hard failure if the contract breaks.
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode wire
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode http
  # The slow-loris probe must be disconnected by the partial-request
  # timeout, not answered and not left hanging.
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode slowloris --wait-ms 10000
  # The scrape must attribute the traffic the smokes just generated and
  # carry the lifecycle series (budget gauges, health ladder state).
  SCRAPE="$("$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode metrics)"
  for metric in autodetect_serve_net_requests_total \
                autodetect_serve_net_http_requests_total \
                autodetect_serve_net_frames_out_total \
                autodetect_serve_net_timeout_closes_total \
                autodetect_serve_mem_inflight_bytes \
                autodetect_serve_mem_peak_bytes \
                autodetect_serve_health_state; do
    grep -q "^$metric " <<<"$SCRAPE" || {
      echo "missing $metric in the /metrics scrape" >&2
      exit 1
    }
  done
  # A healthy idle server must report state 0 (healthy) before the drain.
  awk '$1 == "autodetect_serve_health_state" && $2 + 0 == 0 { found = 1 } END { exit !found }' <<<"$SCRAPE" || {
    echo "/metrics reported a non-healthy state before the drain" >&2
    exit 1
  }
  # Drain smoke: SIGTERM lands while a 16-column batch is in flight; every
  # admitted column must still report, new connections must be refused, and
  # the server must exit 0 inside --drain-timeout-ms.
  "$BUILD_DIR/tools/serve_smoke" --port "$PORT" --mode drain \
    --pid "$SERVE_PID" --wait-ms 10000
  wait "$SERVE_PID" || {
    echo "server exited non-zero after the SIGTERM drain" >&2
    exit 1
  }
  SERVE_PID=""
  echo "serve smoke green: ADWIRE1 + HTTP /detect + slow-loris defense + /metrics + SIGTERM drain with zero dropped columns"
  exit 0
fi

if [[ "$SHARDS" == "on" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target autodetect_cli bench_train_shards
  SHARD_DIR="$(mktemp -d)"
  trap 'rm -rf "$SHARD_DIR"' EXIT
  CLI="$BUILD_DIR/tools/autodetect_cli"
  # One-shot reference: the exact model the sharded path must reproduce.
  "$CLI" train --columns 600 --budget-mb 16 --out "$SHARD_DIR/oneshot.model"
  # Map phase: four independent partition shards of the same corpus.
  for i in 0 1 2 3; do
    "$CLI" train-shard --columns 600 --shard "$i" --num-shards 4 \
      --out "$SHARD_DIR/part$i.ads"
  done
  # Reduce phase, deliberately out of order: merge order must not matter.
  "$CLI" merge-stats --out "$SHARD_DIR/merged.ads" \
    "$SHARD_DIR/part2.ads" "$SHARD_DIR/part0.ads" \
    "$SHARD_DIR/part3.ads" "$SHARD_DIR/part1.ads"
  "$CLI" train --from-stats "$SHARD_DIR/merged.ads" --budget-mb 16 \
    --out "$SHARD_DIR/sharded.model"
  # The determinism contract, at the artifact level: not equivalent — identical.
  cmp "$SHARD_DIR/oneshot.model" "$SHARD_DIR/sharded.model" || {
    echo "sharded training produced a different model than the one-shot pass" >&2
    exit 1
  }
  # Self-gating incremental-retraining benchmark: >=3x refresh speedup on a
  # 10%-grown corpus with a byte-identical model.
  "$BUILD_DIR/bench/bench_train_shards" "$BUILD_DIR/BENCH_train_shards.json"
  echo "shards gate green: scrambled 4-way merge byte-identical to one-shot;" \
       "report: $BUILD_DIR/BENCH_train_shards.json"
  exit 0
fi

if [[ -n "$SANITIZE" ]]; then
  BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-$SANITIZE}"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
    -DAUTODETECT_SANITIZE="$SANITIZE" \
    -DAUTODETECT_BUILD_BENCHMARKS=OFF \
    -DAUTODETECT_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target serve_test io_test model_v2_test resilience_test fuzz_test net_test
  "$BUILD_DIR/tests/serve_test"
  "$BUILD_DIR/tests/io_test"
  "$BUILD_DIR/tests/model_v2_test"
  "$BUILD_DIR/tests/resilience_test"
  # fuzz_test drives the SSSE3/AVX2 tokenizer kernels on every tier the host
  # CPU supports (and the interned detect path), so the sanitizer also
  # sweeps the SIMD tail/boundary loads and the interner's probe chains.
  "$BUILD_DIR/tests/fuzz_test"
  # The decode fuzzers (structure-aware frame mutation, hostile HTTP/JSON)
  # run under the sanitizer too; the live-server fixture is skipped — its
  # model-training setup dominates runtime without adding decode coverage.
  "$BUILD_DIR/tests/net_test" --gtest_filter='-NetFixture.*'
  echo "serve_test + io_test + model_v2_test + resilience_test + fuzz_test + net_test(decode) green under -fsanitize=$SANITIZE"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Failpoints must be compiled OUT of the default build: AD_FAILPOINT(name)
# expands to a literal `false`, so no site name may survive as a string in
# the shipped binary (grep -a scans the raw binary).
for site in serve.worker.slow serve.worker.wedge net.accept.fail \
            net.read.oom registry.reload.flap; do
  if grep -aq "$site" "$BUILD_DIR/tools/autodetect_cli"; then
    echo "failpoint site string '$site' leaked into the default build" >&2
    exit 1
  fi
done

# Golden reports must be byte-identical regardless of the on-disk model
# format the pipeline round-trips through (ctest already ran the v2 default).
AD_MODEL_FORMAT=v1 "$BUILD_DIR/tests/golden_test"
AD_MODEL_FORMAT=v2 "$BUILD_DIR/tests/golden_test"

# Kernel throughput report: per-ISA-tier tokenize bytes/s and kernel keys/s
# vs the per-language loop. Self-gating — exits non-zero if any SIMD tier
# diverges from the scalar reference, the kernel falls under 2x the
# per-language baseline's keys/s, or the SIMD tier falls under 2x scalar
# bytes/s on run-dominated cells.
"$BUILD_DIR/bench/bench_generalize_kernel" "$BUILD_DIR/BENCH_generalize.json"

# Serving throughput report: sequential Detector vs DetectionEngine at
# 1/2/4/8 workers, cached and uncached (columns/s + cache hit rate).
"$BUILD_DIR/bench/bench_detect_engine" \
  --benchmark_min_time=0.1 \
  --benchmark_out="$BUILD_DIR/BENCH_detect.json" \
  --benchmark_out_format=json

# Model artifact report: ADMODEL1 vs ADMODEL2 cold-load medians plus the
# report-equivalence invariants; exits non-zero if v2 is not >=5x faster or
# any v1/v2/hot-reload report differs.
"$BUILD_DIR/bench/bench_model_load" "$BUILD_DIR/BENCH_model_load.json"

echo "tier-1 green; benchmark reports: $BUILD_DIR/BENCH_generalize.json $BUILD_DIR/BENCH_detect.json $BUILD_DIR/BENCH_model_load.json"
