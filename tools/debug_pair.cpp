/// \file debug_pair.cpp
/// Developer tool: trains (or loads a cached) model, then prints the
/// per-language NPMI breakdown for interesting value pairs. Not installed;
/// used to diagnose corpus-realism issues during development.

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "stats/npmi.h"
#include "text/pattern.h"

using namespace autodetect;

static void Explain(const Model& model, const std::string& u, const std::string& v) {
  std::printf("\n--- \"%s\" vs \"%s\"\n", u.c_str(), v.c_str());
  for (const auto& l : model.languages) {
    NpmiScorer scorer(&l.stats, model.smoothing_factor);
    uint64_t ku = GeneralizeToKey(u, l.language());
    uint64_t kv = GeneralizeToKey(v, l.language());
    double s = scorer.Score(ku, kv);
    std::printf(
        "  L%-3d %-26s  pu=%-22s pv=%-22s c(u)=%-6llu c(v)=%-6llu c(uv)=%-6llu "
        "npmi=%+.3f theta=%+.3f %s conf=%.3f\n",
        l.lang_id, l.language().Name().c_str(),
        GeneralizeToString(u, l.language()).c_str(),
        GeneralizeToString(v, l.language()).c_str(),
        static_cast<unsigned long long>(l.stats.Count(ku)),
        static_cast<unsigned long long>(l.stats.Count(kv)),
        static_cast<unsigned long long>(l.stats.CoCount(ku, kv)),
        s, l.threshold, s <= l.threshold ? "FIRE" : "    ",
        l.curve.PrecisionAt(s));
  }
}

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kInfo);
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;
  const std::string cache = "/tmp/ad_debug_model_" + std::to_string(n) + ".bin";

  Model model;
  auto loaded = Model::Load(cache);
  if (loaded.ok()) {
    model = std::move(*loaded);
    std::printf("loaded cached model %s\n", cache.c_str());
  } else {
    GeneratorOptions gen;
    gen.profile = CorpusProfile::Web();
    gen.num_columns = n;
    gen.inject_errors = false;
    gen.seed = 20180610;
    GeneratedColumnSource source(gen);
    TrainOptions train;
    train.memory_budget_bytes = 64ull << 20;
    train.corpus_name = "WEB-synthetic";
    auto r = TrainModel(&source, train);
    AD_CHECK_OK(r.status());
    model = std::move(*r);
    AD_CHECK_OK(model.Save(cache));
  }
  std::printf("%s", model.Summary().c_str());

  Explain(model, "99", "1.99");
  Explain(model, "100", "1,000,000");
  Explain(model, "2011-01-01", "2011/01/06");
  Explain(model, "1962", "1865.");
  Explain(model, "999", "1,000");
  Explain(model, "July-01", "2014-01");
  Explain(model, "Seattle", "N/A");
  Explain(model, "Wei", "Anderson, Robert");
  Explain(model, "Wei", "Robert Anderson");
  Explain(model, "Wei", "Priya");
  return 0;
}
