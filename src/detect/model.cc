#include "detect/model.h"

#include <fstream>

#include "common/string_util.h"

namespace autodetect {

namespace {
constexpr char kMagic[] = "ADMODEL1";
}

size_t Model::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& l : languages) bytes += l.stats.MemoryBytes();
  return bytes;
}

std::string Model::Summary() const {
  std::string out = StrFormat(
      "Auto-Detect model: %zu languages, %s, P>=%.2f, trained on %llu columns (%s)\n",
      languages.size(), HumanBytes(MemoryBytes()).c_str(), precision_target,
      static_cast<unsigned long long>(trained_columns), corpus_name.c_str());
  for (const auto& l : languages) {
    out += StrFormat("  [%3d] %-28s theta=%+.3f coverage=%llu size=%s%s\n", l.lang_id,
                     l.language().Name().c_str(), l.threshold,
                     static_cast<unsigned long long>(l.train_coverage),
                     HumanBytes(l.stats.MemoryBytes()).c_str(),
                     l.stats.uses_sketch() ? " (sketched)" : "");
  }
  return out;
}

void Model::Serialize(BinaryWriter* writer) const {
  writer->WriteString(kMagic);
  writer->WriteDouble(smoothing_factor);
  writer->WriteDouble(precision_target);
  writer->WriteString(corpus_name);
  writer->WriteU64(trained_columns);
  writer->WriteU64(languages.size());
  for (const auto& l : languages) {
    writer->WriteU32(static_cast<uint32_t>(l.lang_id));
    writer->WriteDouble(l.threshold);
    writer->WriteU64(l.train_coverage);
    l.curve.Serialize(writer);
    l.stats.Serialize(writer);
  }
}

Result<Model> Model::Deserialize(BinaryReader* reader) {
  AD_ASSIGN_OR_RETURN(std::string magic, reader->ReadString(16));
  if (magic != kMagic) return Status::Corruption("not an Auto-Detect model file");
  Model model;
  AD_ASSIGN_OR_RETURN(model.smoothing_factor, reader->ReadDouble());
  AD_ASSIGN_OR_RETURN(model.precision_target, reader->ReadDouble());
  AD_ASSIGN_OR_RETURN(model.corpus_name, reader->ReadString());
  AD_ASSIGN_OR_RETURN(model.trained_columns, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 10000) return Status::Corruption("implausible language count");
  for (uint64_t i = 0; i < n; ++i) {
    ModelLanguage l;
    AD_ASSIGN_OR_RETURN(uint32_t id, reader->ReadU32());
    if (id >= static_cast<uint32_t>(LanguageSpace::kNumLanguages)) {
      return Status::Corruption("language id out of range");
    }
    l.lang_id = static_cast<int>(id);
    AD_ASSIGN_OR_RETURN(l.threshold, reader->ReadDouble());
    AD_ASSIGN_OR_RETURN(l.train_coverage, reader->ReadU64());
    AD_ASSIGN_OR_RETURN(l.curve, PrecisionCurve::Deserialize(reader));
    AD_ASSIGN_OR_RETURN(l.stats, LanguageStats::Deserialize(reader));
    model.languages.push_back(std::move(l));
  }
  return model;
}

Status Model::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter writer(&out);
  Serialize(&writer);
  return writer.status().WithContext("writing " + path);
}

Result<Model> Model::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader reader(&in);
  return Deserialize(&reader);
}

}  // namespace autodetect
