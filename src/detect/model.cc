#include "detect/model.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/xxhash64.h"

namespace autodetect {

namespace {

constexpr char kMagic[] = "ADMODEL1";
constexpr char kMagicV2[] = "ADMODEL2";

/// ADMODEL2 fixed header: magic[8], u32 version, u32 native endian marker,
/// u64 alignment, u64 file_size, then (offset, length, xxhash64) for the
/// META and DATA sections. Header version 3 appends one more
/// (offset, length, xxhash64) triple for the SKCH section holding
/// page-aligned count-min sketch blobs; sketch-free models keep writing
/// version 2 so their bytes never change. Header is padded with zeros to
/// `alignment`.
constexpr uint32_t kV2Version = 2;
constexpr uint32_t kV3Version = 3;
constexpr uint64_t kV2Alignment = 4096;
constexpr size_t kV2HeaderBytes = 8 + 4 + 4 + 8 + 8 + 6 * 8;
constexpr size_t kV3HeaderBytes = kV2HeaderBytes + 3 * 8;

uint64_t RoundUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

/// Per-language blob locations inside the DATA (and, for sketched
/// languages in a version-3 file, SKCH) sections.
struct LangLocation {
  uint64_t curve_off = 0;
  uint64_t curve_len = 0;
  uint64_t stats_off = 0;
  uint64_t stats_len = 0;
  uint64_t skch_off = 0;  ///< v3 only; 0/0 = exact language
  uint64_t skch_len = 0;
};

}  // namespace

size_t Model::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& l : languages) bytes += l.stats.MemoryBytes();
  return bytes;
}

ModelSketchInfo Model::SketchInfo() const {
  ModelSketchInfo info;
  for (const auto& l : languages) {
    if (!l.stats.uses_sketch()) continue;
    ++info.languages;
    info.bytes += l.stats.CoMemoryBytes();
    info.width = std::max(info.width, l.stats.SketchWidth());
    info.depth = std::max(info.depth, l.stats.SketchDepth());
  }
  return info;
}

std::string Model::Summary() const {
  std::string out = StrFormat(
      "Auto-Detect model: %zu languages, %s, P>=%.2f, trained on %llu columns (%s)\n",
      languages.size(), HumanBytes(MemoryBytes()).c_str(), precision_target,
      static_cast<unsigned long long>(trained_columns), corpus_name.c_str());
  for (const auto& l : languages) {
    out += StrFormat("  [%3d] %-28s theta=%+.3f coverage=%llu size=%s%s\n", l.lang_id,
                     l.language().Name().c_str(), l.threshold,
                     static_cast<unsigned long long>(l.train_coverage),
                     HumanBytes(l.stats.MemoryBytes()).c_str(),
                     l.stats.uses_sketch() ? " (sketched)" : "");
  }
  return out;
}

void Model::Serialize(BinaryWriter* writer) const {
  writer->WriteString(kMagic);
  writer->WriteDouble(smoothing_factor);
  writer->WriteDouble(precision_target);
  writer->WriteString(corpus_name);
  writer->WriteU64(trained_columns);
  writer->WriteU64(languages.size());
  for (const auto& l : languages) {
    writer->WriteU32(static_cast<uint32_t>(l.lang_id));
    writer->WriteDouble(l.threshold);
    writer->WriteU64(l.train_coverage);
    l.curve.Serialize(writer);
    l.stats.Serialize(writer);
  }
}

Result<Model> Model::Deserialize(BinaryReader* reader) {
  AD_ASSIGN_OR_RETURN(std::string magic, reader->ReadString(16));
  if (magic != kMagic) return Status::Corruption("not an Auto-Detect model file");
  Model model;
  AD_ASSIGN_OR_RETURN(model.smoothing_factor, reader->ReadDouble());
  AD_ASSIGN_OR_RETURN(model.precision_target, reader->ReadDouble());
  AD_ASSIGN_OR_RETURN(model.corpus_name, reader->ReadString());
  AD_ASSIGN_OR_RETURN(model.trained_columns, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 10000) return Status::Corruption("implausible language count");
  for (uint64_t i = 0; i < n; ++i) {
    ModelLanguage l;
    AD_ASSIGN_OR_RETURN(uint32_t id, reader->ReadU32());
    if (id >= static_cast<uint32_t>(LanguageSpace::kNumLanguages)) {
      return Status::Corruption("language id out of range");
    }
    l.lang_id = static_cast<int>(id);
    AD_ASSIGN_OR_RETURN(l.threshold, reader->ReadDouble());
    AD_ASSIGN_OR_RETURN(l.train_coverage, reader->ReadU64());
    AD_ASSIGN_OR_RETURN(l.curve, PrecisionCurve::Deserialize(reader));
    AD_ASSIGN_OR_RETURN(l.stats, LanguageStats::Deserialize(reader));
    model.languages.push_back(std::move(l));
  }
  return model;
}

Status Model::Save(const std::string& path, ModelFormat format) const {
  if (format == ModelFormat::kV2) return SaveV2(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter writer(&out);
  Serialize(&writer);
  return writer.status().WithContext("writing " + path);
}

Status Model::SaveV2(const std::string& path) const {
  // Sketched co-occurrence tables move out of DATA into the page-aligned
  // SKCH section (header version 3). A model with only exact languages
  // writes version 2, byte-identical to pre-sketch builds.
  bool any_sketch = false;
  for (const auto& l : languages) any_sketch |= l.stats.uses_sketch();

  // DATA: per-language frozen blobs, concatenated. Every blob is a multiple
  // of 8 bytes and DATA itself lands page-aligned, so each blob starts
  // 8-aligned — the invariant FrozenView::FromBytes enforces at load.
  // SKCH: per-sketched-language CountMinSketch frozen blobs, each a whole
  // multiple of CountMinSketch::kPlaneAlign, so every counter plane stays
  // cache-line-aligned once the section itself is page-aligned.
  std::string data;
  std::string skch;
  std::vector<LangLocation> locations;
  locations.reserve(languages.size());
  for (const auto& l : languages) {
    LangLocation loc;
    loc.curve_off = data.size();
    l.curve.AppendFrozen(&data);
    loc.curve_len = data.size() - loc.curve_off;
    loc.stats_off = data.size();
    l.stats.AppendFrozen(&data, /*external_sketch=*/l.stats.uses_sketch());
    loc.stats_len = data.size() - loc.stats_off;
    if (l.stats.uses_sketch()) {
      loc.skch_off = skch.size();
      l.stats.AppendSketchFrozen(&skch);
      loc.skch_len = skch.size() - loc.skch_off;
    }
    locations.push_back(loc);
  }

  // META: everything except the bulk tables, via the portable serde path.
  std::ostringstream meta_stream;
  BinaryWriter meta(&meta_stream);
  meta.WriteDouble(smoothing_factor);
  meta.WriteDouble(precision_target);
  meta.WriteString(corpus_name);
  meta.WriteU64(trained_columns);
  meta.WriteU64(languages.size());
  for (size_t i = 0; i < languages.size(); ++i) {
    const auto& l = languages[i];
    const auto& loc = locations[i];
    meta.WriteU32(static_cast<uint32_t>(l.lang_id));
    meta.WriteDouble(l.threshold);
    meta.WriteU64(l.train_coverage);
    meta.WriteU64(loc.curve_off);
    meta.WriteU64(loc.curve_len);
    meta.WriteU64(loc.stats_off);
    meta.WriteU64(loc.stats_len);
    if (any_sketch) {
      meta.WriteU64(loc.skch_off);
      meta.WriteU64(loc.skch_len);
    }
  }
  const std::string meta_bytes = std::move(meta_stream).str();

  const uint64_t meta_off = kV2Alignment;
  const uint64_t data_off = RoundUp(meta_off + meta_bytes.size(), kV2Alignment);
  const uint64_t skch_off =
      any_sketch ? RoundUp(data_off + data.size(), kV2Alignment) : 0;
  const uint64_t file_size =
      any_sketch ? skch_off + skch.size() : data_off + data.size();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.WriteRaw(kMagicV2, 8);
  w.WriteU32(any_sketch ? kV3Version : kV2Version);
  // Native endianness marker: frozen sections hold host-endian words, so a
  // reader on the other byte order must reject the file instead of probing
  // garbage. Written raw (not via the LE serde path) on purpose.
  const uint32_t endian_marker = 1;
  w.WriteRaw(&endian_marker, 4);
  w.WriteU64(kV2Alignment);
  w.WriteU64(file_size);
  w.WriteU64(meta_off);
  w.WriteU64(meta_bytes.size());
  w.WriteU64(XxHash64(meta_bytes.data(), meta_bytes.size()));
  w.WriteU64(data_off);
  w.WriteU64(data.size());
  w.WriteU64(XxHash64(data.data(), data.size()));
  if (any_sketch) {
    w.WriteU64(skch_off);
    w.WriteU64(skch.size());
    w.WriteU64(XxHash64(skch.data(), skch.size()));
  }
  w.AlignTo(kV2Alignment);
  w.WriteRaw(meta_bytes.data(), meta_bytes.size());
  w.AlignTo(kV2Alignment);
  w.WriteRaw(data.data(), data.size());
  if (any_sketch) {
    w.AlignTo(kV2Alignment);
    w.WriteRaw(skch.data(), skch.size());
  }
  return w.status().WithContext("writing " + path);
}

Result<Model> Model::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[8] = {0};
  in.read(magic, 8);
  if (in.gcount() == 8 && std::memcmp(magic, kMagicV2, 8) == 0) {
    in.close();
    return LoadV2(path);
  }
  in.clear();
  in.seekg(0);
  BinaryReader reader(&in);
  auto model = Deserialize(&reader);
  if (!model.ok()) return model.status().WithContext("loading " + path);
  return model;
}

Result<Model> Model::LoadV2(const std::string& path) {
  AD_ASSIGN_OR_RETURN(MmapFile mapped, MmapFile::Open(path));
  auto backing = std::make_shared<MmapFile>(std::move(mapped));
  const uint8_t* base = backing->data();
  const size_t actual_size = backing->size();
  if (actual_size < kV2HeaderBytes) {
    return Status::IOError(StrFormat(
        "truncated model header in %s: needed %zu bytes, got %zu", path.c_str(),
        kV2HeaderBytes, actual_size));
  }
  if (std::memcmp(base, kMagicV2, 8) != 0) {
    return Status::Corruption("not an ADMODEL2 file: " + path);
  }
  uint32_t endian_marker;
  std::memcpy(&endian_marker, base + 12, 4);
  if (endian_marker != 1) {
    return Status::Corruption(
        "model file byte order does not match this host: " + path);
  }
  uint32_t version;
  std::memcpy(&version, base + 8, 4);
  if (version != kV2Version && version != kV3Version) {
    return Status::Corruption(StrFormat(
        "ADMODEL2 version mismatch in %s (header): expected %u or %u, found %u",
        path.c_str(), kV2Version, kV3Version, version));
  }
  const bool has_skch = version == kV3Version;
  const size_t header_bytes = has_skch ? kV3HeaderBytes : kV2HeaderBytes;
  if (actual_size < header_bytes) {
    return Status::IOError(StrFormat(
        "truncated model header in %s: needed %zu bytes, got %zu", path.c_str(),
        header_bytes, actual_size));
  }
  BinaryReader header(base + 8, header_bytes - 8);
  AD_RETURN_NOT_OK(header.ReadU32().status());  // version, checked above
  AD_RETURN_NOT_OK(header.ReadU32().status());  // endian marker, checked above
  AD_ASSIGN_OR_RETURN(uint64_t alignment, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t file_size, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_off, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_len, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_checksum, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_off, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_len, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_checksum, header.ReadU64());
  uint64_t skch_off = 0, skch_len = 0, skch_checksum = 0;
  if (has_skch) {
    AD_ASSIGN_OR_RETURN(skch_off, header.ReadU64());
    AD_ASSIGN_OR_RETURN(skch_len, header.ReadU64());
    AD_ASSIGN_OR_RETURN(skch_checksum, header.ReadU64());
  }

  if (alignment < 8 || alignment > (1ULL << 24) ||
      (alignment & (alignment - 1)) != 0) {
    return Status::Corruption("implausible section alignment in " + path);
  }
  if (actual_size < file_size) {
    // The one failure a half-copied file produces: the header promises more
    // bytes than arrived. Distinct from Corruption so operators know to
    // re-copy rather than re-train.
    return Status::IOError(StrFormat(
        "truncated model file %s: header declares %llu bytes, file has %zu",
        path.c_str(), static_cast<unsigned long long>(file_size), actual_size));
  }
  if (actual_size > file_size) {
    return Status::Corruption("model file has trailing bytes: " + path);
  }
  auto section_ok = [&](uint64_t off, uint64_t len) {
    return off >= header_bytes && off % 8 == 0 && off <= file_size &&
           len <= file_size - off;
  };
  if (!section_ok(meta_off, meta_len) || !section_ok(data_off, data_len)) {
    return Status::Corruption("section bounds out of range in " + path);
  }
  if (has_skch && !section_ok(skch_off, skch_len)) {
    return Status::Corruption("SKCH section bounds out of range in " + path);
  }

  // Integrity: one sequential pass over both sections. Fail closed — a bad
  // checksum never yields a model.
  backing->Advise(MmapFile::Advice::kSequential);
  // Chaos: pretend the artifact's bytes do not match its recorded digest —
  // the cheap way to prove loads fail closed on silent corruption.
  if (AD_FAILPOINT("model.load.corrupt")) {
    return Status::Corruption(
        "META section checksum mismatch in " + path +
        " (failpoint model.load.corrupt)");
  }
  if (XxHash64(base + meta_off, meta_len) != meta_checksum) {
    return Status::Corruption("META section checksum mismatch in " + path);
  }
  if (XxHash64(base + data_off, data_len) != data_checksum) {
    return Status::Corruption("DATA section checksum mismatch in " + path);
  }
  if (has_skch && XxHash64(base + skch_off, skch_len) != skch_checksum) {
    return Status::Corruption("SKCH section checksum mismatch in " + path);
  }
  // Detection probes the tables randomly; stop the kernel from read-ahead
  // faulting pages the knapsack said we cannot afford.
  backing->Advise(MmapFile::Advice::kRandom, data_off, data_len);
  if (has_skch) backing->Advise(MmapFile::Advice::kRandom, skch_off, skch_len);

  Model model;
  model.format_ = ModelFormat::kV2;
  model.backing_ = backing;
  const uint8_t* data = base + data_off;
  BinaryReader meta(base + meta_off, meta_len);
  AD_ASSIGN_OR_RETURN(model.smoothing_factor, meta.ReadDouble());
  AD_ASSIGN_OR_RETURN(model.precision_target, meta.ReadDouble());
  AD_ASSIGN_OR_RETURN(model.corpus_name, meta.ReadString());
  AD_ASSIGN_OR_RETURN(model.trained_columns, meta.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n, meta.ReadU64());
  if (n > 10000) return meta.Corrupt("implausible language count");
  for (uint64_t i = 0; i < n; ++i) {
    ModelLanguage l;
    AD_ASSIGN_OR_RETURN(uint32_t id, meta.ReadU32());
    if (id >= static_cast<uint32_t>(LanguageSpace::kNumLanguages)) {
      return meta.Corrupt("language id out of range");
    }
    l.lang_id = static_cast<int>(id);
    AD_ASSIGN_OR_RETURN(l.threshold, meta.ReadDouble());
    AD_ASSIGN_OR_RETURN(l.train_coverage, meta.ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t curve_off, meta.ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t curve_len, meta.ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t stats_off, meta.ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t stats_len, meta.ReadU64());
    uint64_t lang_skch_off = 0, lang_skch_len = 0;
    if (has_skch) {
      AD_ASSIGN_OR_RETURN(lang_skch_off, meta.ReadU64());
      AD_ASSIGN_OR_RETURN(lang_skch_len, meta.ReadU64());
    }
    auto blob_ok = [&](uint64_t off, uint64_t len) {
      return off % 8 == 0 && off <= data_len && len <= data_len - off;
    };
    if (!blob_ok(curve_off, curve_len) || !blob_ok(stats_off, stats_len)) {
      return meta.Corrupt("language blob bounds out of range");
    }
    if (lang_skch_off % 8 != 0 || lang_skch_off > skch_len ||
        lang_skch_len > skch_len - lang_skch_off) {
      return meta.Corrupt("language sketch blob bounds out of range");
    }
    AD_ASSIGN_OR_RETURN(l.curve,
                        PrecisionCurve::FromFrozen(data + curve_off, curve_len));
    AD_ASSIGN_OR_RETURN(l.stats,
                        LanguageStats::FromFrozen(data + stats_off, stats_len));
    // A stats blob declaring an external sketch and a META row carrying one
    // must agree — a mismatch either way is structural corruption, never a
    // language silently served without its co-occurrence table.
    if (l.stats.sketch_external() != (lang_skch_len > 0)) {
      return meta.Corrupt("language sketch flag / SKCH reference mismatch");
    }
    if (l.stats.sketch_external()) {
      AD_ASSIGN_OR_RETURN(CountMinSketch::FrozenView view,
                          CountMinSketch::FrozenView::FromBytes(
                              base + skch_off + lang_skch_off, lang_skch_len));
      if (view.bytes() != lang_skch_len) {
        return meta.Corrupt("language sketch blob has trailing bytes");
      }
      l.stats.AttachSketch(std::move(view));
    }
    model.languages.push_back(std::move(l));
  }
  return model;
}

}  // namespace autodetect
