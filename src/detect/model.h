#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/mmap_file.h"
#include "stats/language_stats.h"
#include "text/language.h"
#include "train/calibration.h"

/// \file model.h
/// The trained Auto-Detect artifact: the selected generalization languages
/// L' with their statistics, calibrated thresholds θ_k and empirical
/// precision curves P_k(·). A model is self-contained — save it once after
/// offline training, load it client-side for detection (the paper's
/// client-only deployment with a memory budget).
///
/// Two on-disk formats coexist:
///  * ADMODEL1 — the original streamed blob. Loading rebuilds every hash
///    table (O(model size) allocation + hashing per process start).
///  * ADMODEL2 — zero-copy artifact: a page-aligned header + META + DATA
///    layout where the hot tables (pattern counts, co-occurrence maps,
///    precision curves) are stored in their in-memory representation and
///    the loaded Model points straight at the memory-mapped bytes. Load
///    cost is one checksum pass; table pages fault in lazily as detection
///    probes them, and concurrent processes share one page-cache copy.
/// `Save` writes either format; `Load` dispatches on the leading magic, so
/// existing ADMODEL1 files keep working.
///
/// ADMODEL2 header version 3 adds an optional SKCH section after DATA:
/// per-language count-min sketches of the co-occurrence tables (paper
/// Sec. 3.4), stored as page-aligned CountMinSketch frozen blobs and
/// XXH64-checksummed exactly like META and DATA. A model whose languages
/// are all exact still writes version 2 — byte-identical to before — so
/// sketching is opt-in per artifact, and exact and sketched languages
/// coexist inside one version-3 file (each language's stats blob declares
/// which representation it carries; the loader sniffs the flag and attaches
/// the mapped sketch view). Loads fail closed on any SKCH checksum,
/// bounds, alignment or flag/section mismatch.

namespace autodetect {

/// One selected language and everything needed to score with it.
struct ModelLanguage {
  int lang_id = -1;
  double threshold = -2.0;  ///< θ_k
  /// Training negatives covered at θ_k — used to order languages (the
  /// highest-coverage language is the "BestOne" of the ablation).
  uint64_t train_coverage = 0;
  PrecisionCurve curve;
  LanguageStats stats;

  const GeneralizationLanguage& language() const {
    return LanguageSpace::All()[static_cast<size_t>(lang_id)];
  }
};

/// On-disk model format selector.
enum class ModelFormat {
  kV1 = 1,  ///< ADMODEL1 streamed blob (legacy; still written for compat)
  kV2 = 2,  ///< ADMODEL2 zero-copy mapped artifact (default)
};

/// Aggregate sketch footprint of a model (for metrics and CLI `info`).
struct ModelSketchInfo {
  size_t bytes = 0;      ///< live sketch counter bytes across languages
  size_t languages = 0;  ///< languages served from a sketch
  size_t width = 0;      ///< widest sketch (counters per row)
  size_t depth = 0;      ///< deepest sketch (rows)
};

class Model {
 public:
  /// Selected languages, ordered by descending training coverage.
  std::vector<ModelLanguage> languages;
  double smoothing_factor = 0.1;
  double precision_target = 0.95;
  std::string corpus_name;
  uint64_t trained_columns = 0;

  /// Estimated resident size — the quantity bounded by the training budget.
  size_t MemoryBytes() const;

  /// Sketch footprint: zeros when every language carries exact tables.
  ModelSketchInfo SketchInfo() const;

  /// One-line-per-language human description.
  std::string Summary() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Model> Deserialize(BinaryReader* reader);

  /// \brief Writes the model to `path`. kV2 is the default: the zero-copy
  /// artifact a client maps at load time. kV1 keeps producing files older
  /// binaries can read.
  Status Save(const std::string& path, ModelFormat format = ModelFormat::kV2) const;

  /// \brief Loads a model file of either format, dispatching on the leading
  /// magic. ADMODEL2 fails closed: any checksum, bounds, or alignment
  /// violation is an error (IOError for truncation, Corruption otherwise) —
  /// never a partially-loaded model.
  static Result<Model> Load(const std::string& path);

  /// Format this model was loaded from (kV1 for freshly trained models —
  /// the in-memory representation matches the v1 owning layout).
  ModelFormat format() const { return format_; }
  /// True when the model's tables view a live file mapping.
  bool mapped() const { return backing_ != nullptr && backing_->mapped(); }
  /// Size of the backing model file (0 for trained/v1-loaded models).
  size_t FileBytes() const { return backing_ == nullptr ? 0 : backing_->size(); }

 private:
  static Result<Model> LoadV2(const std::string& path);
  Status SaveV2(const std::string& path) const;

  ModelFormat format_ = ModelFormat::kV1;
  /// Keeps the mapped ADMODEL2 file alive for the lifetime of the frozen
  /// views inside `languages`. Shared so Model copies stay cheap and safe.
  std::shared_ptr<MmapFile> backing_;
};

}  // namespace autodetect
