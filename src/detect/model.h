#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "stats/language_stats.h"
#include "text/language.h"
#include "train/calibration.h"

/// \file model.h
/// The trained Auto-Detect artifact: the selected generalization languages
/// L' with their statistics, calibrated thresholds θ_k and empirical
/// precision curves P_k(·). A model is self-contained — save it once after
/// offline training, load it client-side for detection (the paper's
/// client-only deployment with a memory budget).

namespace autodetect {

/// One selected language and everything needed to score with it.
struct ModelLanguage {
  int lang_id = -1;
  double threshold = -2.0;  ///< θ_k
  /// Training negatives covered at θ_k — used to order languages (the
  /// highest-coverage language is the "BestOne" of the ablation).
  uint64_t train_coverage = 0;
  PrecisionCurve curve;
  LanguageStats stats;

  const GeneralizationLanguage& language() const {
    return LanguageSpace::All()[static_cast<size_t>(lang_id)];
  }
};

class Model {
 public:
  /// Selected languages, ordered by descending training coverage.
  std::vector<ModelLanguage> languages;
  double smoothing_factor = 0.1;
  double precision_target = 0.95;
  std::string corpus_name;
  uint64_t trained_columns = 0;

  /// Estimated resident size — the quantity bounded by the training budget.
  size_t MemoryBytes() const;

  /// One-line-per-language human description.
  std::string Summary() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Model> Deserialize(BinaryReader* reader);

  Status Save(const std::string& path) const;
  static Result<Model> Load(const std::string& path);
};

}  // namespace autodetect
