#include "detect/api.h"

#include <utility>

#include "obs/metrics.h"

namespace autodetect {

// DetectRequest's special members live here, under suppression, so that
// copying/destroying a request (which touches the deprecated `tag` alias)
// never warns — only direct member access does.
AD_SUPPRESS_DEPRECATED_BEGIN
DetectRequest::DetectRequest() = default;
DetectRequest::DetectRequest(std::string name_in,
                             std::vector<std::string> values_in,
                             RequestContext context_in)
    : name(std::move(name_in)),
      values(std::move(values_in)),
      context(std::move(context_in)) {}
DetectRequest::DetectRequest(const DetectRequest&) = default;
DetectRequest::DetectRequest(DetectRequest&&) noexcept = default;
DetectRequest& DetectRequest::operator=(const DetectRequest&) = default;
DetectRequest& DetectRequest::operator=(DetectRequest&&) noexcept = default;
DetectRequest::~DetectRequest() = default;
AD_SUPPRESS_DEPRECATED_END

namespace {

/// The vector adapter's sink: one pre-sized slot per request. Index
/// uniqueness makes the disjoint writes race-free; the executor's completion
/// barrier publishes them to the caller.
class VectorSink : public ReportSink {
 public:
  explicit VectorSink(std::vector<DetectReport>* out) : out_(out) {}
  void OnReport(size_t index, DetectReport&& report) override {
    (*out_)[index] = std::move(report);
  }

 private:
  std::vector<DetectReport>* out_;
};

}  // namespace

std::vector<DetectReport> DetectionExecutor::Detect(
    const std::vector<DetectRequest>& batch) {
  std::vector<DetectReport> reports(batch.size());
  VectorSink sink(&reports);
  Detect(batch, sink);
  return reports;
}

DetectReport DetectionExecutor::DetectOne(const DetectRequest& request) {
  std::vector<DetectRequest> batch;
  batch.push_back(request);
  std::vector<DetectReport> reports = Detect(batch);
  if (reports.empty()) {
    // A conforming executor always delivers one report per request; if one
    // does not, fail visibly — echo the request identity and mark the column
    // shed instead of fabricating a default kOk report. Like every other
    // kShed source, the fabricated report charges exactly one
    // serve.admission.* counter (no executor was involved, so nothing else
    // will count it).
    MetricsRegistry::Default()
        ->GetCounter("serve.admission.fallback_shed_total")
        ->Add(1);
    DetectReport report;
    report.name = request.name;
    report.tag = request.EffectiveTag();
    report.status = ColumnStatus::kShed;
    return report;
  }
  return std::move(reports.front());
}

}  // namespace autodetect
