#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "detect/api.h"
#include "detect/model.h"
#include "detect/model_provider.h"
#include "obs/metrics.h"
#include "stats/value_interner.h"
#include "text/run_tokenizer.h"

/// \file detector.h
/// The online half of Auto-Detect: score value pairs and scan columns for
/// incompatible cells using a trained Model. The default aggregation is the
/// paper's max-confidence union over selected languages (Sec. 3.2 /
/// Appendix B); the alternatives of the Fig. 8(b) ablation are selectable.
///
/// Request/report types live in detect/api.h (the unified detection API);
/// this header provides the scoring core (Detector) and the sequential
/// executor of that API (SequentialExecutor).

namespace autodetect {

/// How per-language NPMI scores s_k(u,v) are fused into one prediction.
enum class Aggregation : uint8_t {
  /// Paper's method: flag iff ∃k with s_k <= θ_k; confidence is
  /// max_k P_k(s_k) (Eq. 11).
  kMaxConfidence = 0,
  kAvgNpmi,              ///< average s_k, thresholded at mean θ
  kMinNpmi,              ///< min s_k, thresholded at mean θ
  kMajorityVote,         ///< count of languages voting incompatible
  kWeightedMajorityVote, ///< votes weighted by margin |s_k − θ_k|
  kBestSingle,           ///< only the single highest-coverage language
};

std::string_view AggregationName(Aggregation a);

struct DetectorOptions {
  Aggregation aggregation = Aggregation::kMaxConfidence;
  /// Distinct values examined per column (mirrors the stats-build cap).
  size_t max_distinct_values = 48;
  /// Pair findings with confidence below this are not reported.
  double min_confidence = 0.0;
  /// Cap on reported pair findings per column.
  size_t max_pair_findings = 16;
  /// Per-column score budget in microseconds; 0 = unlimited. When a scan
  /// exceeds the budget mid-column, remaining pairs are scored under the
  /// degraded single-language fallback (the crude G of paper Sec. 3.1 when
  /// the model carries it, else the highest-coverage language) and the
  /// report is flagged ColumnStatus::kDegraded — bounded latency instead of
  /// a silently slow column.
  uint64_t column_budget_us = 0;
  /// Reduce each column to (distinct value, multiplicity, first row) via the
  /// FlatMap64-backed ValueInterner before keying/scoring, instead of the
  /// allocation-heavy DistinctValuesForStats + first-row map. Reports are
  /// byte-identical either way (fuzz-verified); off is an escape hatch for
  /// A/B runs and bisection (`scan --no-dedup`).
  bool dedup = true;
  /// Score languages whose co-occurrence table is a count-min sketch using
  /// the sketch's estimates (the ADMODEL2 SKCH serving path, paper
  /// Sec. 3.4). When off, sketched languages are excluded from scoring and
  /// aggregation entirely — an escape hatch (`scan --no-sketch`) that
  /// serves only the exact languages of a mixed model. Exact-only models
  /// are unaffected either way.
  bool sketch_estimates = true;
  /// Metrics destination; null means the process default registry. Metric
  /// handles are resolved once at Detector construction.
  MetricsRegistry* metrics = nullptr;
};

/// Verdict on a single value pair.
struct PairVerdict {
  bool incompatible = false;
  /// Estimated precision of the "incompatible" call, in [0, 1]; comparable
  /// across columns, used for global ranking (paper Sec. 4.2).
  double confidence = 0.0;
  /// The most damning NPMI among languages.
  double min_npmi = 1.0;
  /// lang_id of the language with the most confident incompatibility call;
  /// -1 when no language fired.
  int best_language = -1;
};

/// Reusable buffers for column scans. The scan of one column needs a flat
/// d × |languages| key matrix, per-value cache signatures and the
/// tokenizer's run scratch; with a caller-provided ColumnScratch none of
/// them is reallocated per column (or per value), which is what the serving
/// engine's per-worker buffers rely on.
struct ColumnScratch {
  std::vector<uint64_t> keys;        ///< row-major, one row per distinct value
  std::vector<uint64_t> signatures;  ///< per-value pair-cache signatures
  std::vector<ClassRun> runs;        ///< tokenizer run scratch
  ValueInterner interner;            ///< per-column distinct-value index
  std::vector<uint32_t> sampled;     ///< interner entry indices actually scored
};

/// Memoization hook for pair verdicts, keyed by the order-independent hash
/// of the two values' per-language key rows. Detector never caches on its
/// own; a caller that scans many columns against one model (serve/) plugs an
/// implementation in. Implementations shared across threads must be
/// thread-safe (see serve/pair_cache.h).
class PairVerdictCache {
 public:
  virtual ~PairVerdictCache() = default;
  /// Returns true and fills `*out` on a hit.
  virtual bool Lookup(uint64_t pair_key, PairVerdict* out) = 0;
  virtual void Insert(uint64_t pair_key, const PairVerdict& verdict) = 0;
};

/// Per-language detail of one pair judgment — the full evidence trail
/// behind a PairVerdict, for UIs and debugging ("why was this flagged?").
struct LanguageExplanation {
  int lang_id = -1;
  std::string language_name;
  std::string pattern_u;  ///< canonical rendering of u's pattern
  std::string pattern_v;
  uint64_t count_u = 0;       ///< c(L(u)) in the training corpus
  uint64_t count_v = 0;
  uint64_t co_count = 0;      ///< c(L(u), L(v))
  double npmi = 0.0;          ///< s_k(u, v)
  double threshold = 0.0;     ///< θ_k
  bool fired = false;         ///< s_k <= θ_k
  double confidence = 0.0;    ///< P_k(s_k)
};

struct PairExplanation {
  PairVerdict verdict;
  std::vector<LanguageExplanation> languages;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

class Detector {
 public:
  /// \param model must outlive the detector.
  explicit Detector(const Model* model);
  Detector(const Model* model, DetectorOptions options);

  /// \brief Scores one value pair under the configured aggregation.
  PairVerdict ScorePair(std::string_view v1, std::string_view v2) const;

  /// \brief ScorePair plus the per-language evidence behind the verdict.
  PairExplanation ExplainPair(std::string_view v1, std::string_view v2) const;

  /// \brief Executes one detection request (the unified API entry point).
  /// `scratch` may be null (an internal temporary is used); `cache` (may be
  /// null) memoizes verdicts across columns. Thread-safe when each thread
  /// uses its own scratch and the cache implementation is thread-safe.
  /// Records per-column metrics (plus per-tag metrics for a non-empty
  /// effective tag and per-tenant metrics for a non-empty context.tenant)
  /// into the registry given at construction. Cancellation precedence: an
  /// active request token wins; else context.deadline_ms (mapped onto a
  /// CancelSource here); else `fallback_cancel` (how the engine threads a
  /// batch-wide default deadline through without copying requests; the
  /// default is the inert token).
  DetectReport Detect(const DetectRequest& request, ColumnScratch* scratch = nullptr,
                      PairVerdictCache* cache = nullptr,
                      const CancelToken& fallback_cancel = {}) const;

  const Model& model() const { return *model_; }
  const DetectorOptions& options() const { return options_; }

  /// \brief Order-independent cache key of two per-language key rows, as
  /// used with PairVerdictCache (exposed for cache tests).
  static uint64_t PairCacheKey(const uint64_t* k1, const uint64_t* k2, size_t n);

 private:
  /// Hot counters/histograms, resolved once at construction (registration
  /// takes a lock; recording is relaxed-atomic only).
  struct Metrics {
    Counter* columns = nullptr;
    Counter* pairs_scored = nullptr;      ///< pairs that ran NPMI scoring
    Counter* pairs_cache_hits = nullptr;  ///< pairs served by the verdict cache
    Counter* rare_fallbacks = nullptr;    ///< pair-language scores punted on rarity
    Counter* columns_degraded = nullptr;  ///< budget-exceeded fallback scans
    Counter* columns_cancelled = nullptr; ///< deadline/cancel partial scans
    Histogram* column_latency_us = nullptr;
    Histogram* key_stage_us = nullptr;    ///< tokenize + per-language keying
    Histogram* score_stage_us = nullptr;  ///< stats lookup + NPMI + cache probes
    Counter* dedup_values_skipped = nullptr;  ///< duplicate rows folded away
    Counter* dedup_pairs_skipped = nullptr;   ///< pairs a non-deduped scorer would score
    Histogram* dedup_distinct_ratio = nullptr;  ///< distinct/total per column, percent
  };
  struct TagMetrics {
    Counter* columns = nullptr;
    Histogram* column_latency_us = nullptr;
  };

  /// Per-language keys of one value (allocating convenience for the
  /// two-value entry points).
  std::vector<uint64_t> KeysOf(std::string_view value) const;
  /// Allocation-free key derivation into `out[0 .. |languages|)`, using
  /// `runs` as tokenizer scratch.
  void KeysInto(std::string_view value, std::vector<ClassRun>* runs,
                uint64_t* out) const;
  /// \param rare_fallbacks when non-null, incremented by the number of
  /// languages whose score was punted for lack of pattern support.
  PairVerdict ScoreKeys(const uint64_t* k1, const uint64_t* k2,
                        uint64_t* rare_fallbacks = nullptr) const;
  /// Single-language degraded verdict over the fallback language (the
  /// kBestSingle shape pinned to degrade_lang_).
  PairVerdict ScoreKeysDegraded(const uint64_t* k1, const uint64_t* k2) const;
  /// The scan core behind Detect. Polls `cancel` between pair-scoring rows
  /// and switches to the degraded fallback once column_budget_us is spent;
  /// `*status` reports how the scan ended.
  ColumnReport Scan(const std::vector<std::string>& values, ColumnScratch* scratch,
                    PairVerdictCache* cache, const CancelToken& cancel,
                    ColumnStatus* status) const;
  /// Lazily-registered metric handles under `prefix` ("detect.tag.<tag>." or
  /// "detect.tenant.<tenant>." — labels are open-ended).
  const TagMetrics& MetricsForPrefix(const std::string& prefix) const;

  const Model* model_;
  DetectorOptions options_;
  /// Language index used by the degraded fallback: the crude G when the
  /// model selected it, else index 0 (highest training coverage).
  size_t degrade_lang_ = 0;
  /// Non-empty iff sketch_estimates is off and the model mixes in sketched
  /// languages: 1 marks languages excluded from scoring.
  std::vector<uint8_t> skip_lang_;
  /// First scorable language (kBestSingle / fallback target); 0 unless
  /// sketched languages are being skipped.
  size_t best_single_lang_ = 0;
  /// Shared-tokenization kernel over the model's selected languages: every
  /// scored value is scanned once, not once per language.
  MultiGeneralizer multi_keys_;
  MetricsRegistry* registry_;
  Metrics metrics_;
  /// Lazily resolved per-tag/per-tenant metric handles, keyed by full
  /// metric-name prefix (labels are open-ended).
  mutable std::mutex tag_mu_;
  mutable std::unordered_map<std::string, TagMetrics> tag_metrics_;
};

/// The sequential executor of the unified API: one column at a time on the
/// calling thread, reusing a single scratch across requests, with an
/// optional caller-owned verdict cache. NOT thread-safe (the scratch is
/// shared across calls) — that is the point: zero synchronization for
/// embedded single-threaded callers. For concurrency use DetectionEngine.
///
/// Model acquisition is either fixed (a caller-owned Detector pinned to one
/// model) or provider-backed: given a ModelProvider, the executor pins the
/// current snapshot per call and rebuilds its detector when the provider
/// swaps models, so a hot reload takes effect on the next Detect/DetectOne
/// without any caller involvement.
class SequentialExecutor : public DetectionExecutor {
 public:
  /// \param detector not owned; must outlive the executor.
  /// \param cache optional, not owned; may be null.
  explicit SequentialExecutor(const Detector* detector,
                              PairVerdictCache* cache = nullptr)
      : detector_(detector), cache_(cache) {}

  /// \param provider not owned; must outlive the executor and have a loaded
  /// model by the first Detect call.
  explicit SequentialExecutor(ModelProvider* provider,
                              DetectorOptions options = {},
                              PairVerdictCache* cache = nullptr)
      : provider_(provider), options_(options), cache_(cache) {}

  using DetectionExecutor::Detect;
  void Detect(const std::vector<DetectRequest>& batch, ReportSink& sink) override;
  DetectReport DetectOne(const DetectRequest& request) override;

 private:
  /// The detector to use for this call; refreshes the pinned snapshot in
  /// provider mode when the provider's generation moved.
  const Detector* CurrentDetector();

  const Detector* detector_ = nullptr;
  ModelProvider* provider_ = nullptr;
  DetectorOptions options_;
  PairVerdictCache* cache_;
  /// Provider mode only: the pinned snapshot and its detector. The model
  /// shared_ptr keeps the snapshot (and any mapped file behind it) alive
  /// while this executor still points at it.
  std::shared_ptr<const Model> snapshot_model_;
  std::optional<Detector> snapshot_detector_;
  uint64_t snapshot_generation_ = 0;
  ColumnScratch scratch_;
};

}  // namespace autodetect
