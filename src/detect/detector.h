#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "detect/model.h"
#include "text/run_tokenizer.h"

/// \file detector.h
/// The online half of Auto-Detect: score value pairs and scan columns for
/// incompatible cells using a trained Model. The default aggregation is the
/// paper's max-confidence union over selected languages (Sec. 3.2 /
/// Appendix B); the alternatives of the Fig. 8(b) ablation are selectable.

namespace autodetect {

/// How per-language NPMI scores s_k(u,v) are fused into one prediction.
enum class Aggregation : uint8_t {
  /// Paper's method: flag iff ∃k with s_k <= θ_k; confidence is
  /// max_k P_k(s_k) (Eq. 11).
  kMaxConfidence = 0,
  kAvgNpmi,              ///< average s_k, thresholded at mean θ
  kMinNpmi,              ///< min s_k, thresholded at mean θ
  kMajorityVote,         ///< count of languages voting incompatible
  kWeightedMajorityVote, ///< votes weighted by margin |s_k − θ_k|
  kBestSingle,           ///< only the single highest-coverage language
};

std::string_view AggregationName(Aggregation a);

struct DetectorOptions {
  Aggregation aggregation = Aggregation::kMaxConfidence;
  /// Distinct values examined per column (mirrors the stats-build cap).
  size_t max_distinct_values = 48;
  /// Pair findings with confidence below this are not reported.
  double min_confidence = 0.0;
  /// Cap on reported pair findings per column.
  size_t max_pair_findings = 16;
};

/// Verdict on a single value pair.
struct PairVerdict {
  bool incompatible = false;
  /// Estimated precision of the "incompatible" call, in [0, 1]; comparable
  /// across columns, used for global ranking (paper Sec. 4.2).
  double confidence = 0.0;
  /// The most damning NPMI among languages.
  double min_npmi = 1.0;
  /// lang_id of the language with the most confident incompatibility call;
  /// -1 when no language fired.
  int best_language = -1;
};

/// A cell-level finding within one column.
struct CellFinding {
  uint32_t row = 0;            ///< first row holding the value
  std::string value;
  double confidence = 0.0;     ///< max confidence over its flagged pairs
  uint32_t incompatible_with = 0;  ///< distinct partners it clashes with
};

/// A pair-level finding (the unit the paper's Table 4 reports).
struct PairFinding {
  std::string u;
  std::string v;
  double confidence = 0.0;
};

struct ColumnReport {
  std::vector<CellFinding> cells;  ///< sorted by confidence descending
  std::vector<PairFinding> pairs;  ///< sorted by confidence descending
  /// Distinct values actually examined.
  size_t distinct_values = 0;

  bool HasFindings() const { return !cells.empty(); }
  /// Convenience: the top cell finding, if any.
  std::optional<CellFinding> Top() const {
    if (cells.empty()) return std::nullopt;
    return cells.front();
  }
};

/// Reusable buffers for AnalyzeColumn. The scan of one column needs a flat
/// d × |languages| key matrix, per-value cache signatures and the
/// tokenizer's run scratch; with a caller-provided ColumnScratch none of
/// them is reallocated per column (or per value), which is what the serving
/// engine's per-worker buffers rely on.
struct ColumnScratch {
  std::vector<uint64_t> keys;        ///< row-major, one row per distinct value
  std::vector<uint64_t> signatures;  ///< per-value pair-cache signatures
  std::vector<ClassRun> runs;        ///< tokenizer run scratch
};

/// Memoization hook for pair verdicts, keyed by the order-independent hash
/// of the two values' per-language key rows. Detector never caches on its
/// own; a caller that scans many columns against one model (serve/) plugs an
/// implementation in. Implementations shared across threads must be
/// thread-safe (see serve/pair_cache.h).
class PairVerdictCache {
 public:
  virtual ~PairVerdictCache() = default;
  /// Returns true and fills `*out` on a hit.
  virtual bool Lookup(uint64_t pair_key, PairVerdict* out) = 0;
  virtual void Insert(uint64_t pair_key, const PairVerdict& verdict) = 0;
};

/// Per-language detail of one pair judgment — the full evidence trail
/// behind a PairVerdict, for UIs and debugging ("why was this flagged?").
struct LanguageExplanation {
  int lang_id = -1;
  std::string language_name;
  std::string pattern_u;  ///< canonical rendering of u's pattern
  std::string pattern_v;
  uint64_t count_u = 0;       ///< c(L(u)) in the training corpus
  uint64_t count_v = 0;
  uint64_t co_count = 0;      ///< c(L(u), L(v))
  double npmi = 0.0;          ///< s_k(u, v)
  double threshold = 0.0;     ///< θ_k
  bool fired = false;         ///< s_k <= θ_k
  double confidence = 0.0;    ///< P_k(s_k)
};

struct PairExplanation {
  PairVerdict verdict;
  std::vector<LanguageExplanation> languages;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

class Detector {
 public:
  /// \param model must outlive the detector.
  explicit Detector(const Model* model);
  Detector(const Model* model, DetectorOptions options);

  /// \brief Scores one value pair under the configured aggregation.
  PairVerdict ScorePair(std::string_view v1, std::string_view v2) const;

  /// \brief ScorePair plus the per-language evidence behind the verdict.
  PairExplanation ExplainPair(std::string_view v1, std::string_view v2) const;

  /// \brief Scans a column and reports incompatible cells/pairs.
  ColumnReport AnalyzeColumn(const std::vector<std::string>& values) const;

  /// \brief AnalyzeColumn with caller-owned buffers and an optional pair
  /// cache. Output is bit-identical to the scratch-free overload; `scratch`
  /// is grown as needed and reused across calls, and `cache` (may be null)
  /// memoizes verdicts across columns — repeated value pairs skip NPMI
  /// lookup entirely.
  ColumnReport AnalyzeColumn(const std::vector<std::string>& values,
                             ColumnScratch* scratch,
                             PairVerdictCache* cache = nullptr) const;

  const Model& model() const { return *model_; }
  const DetectorOptions& options() const { return options_; }

  /// \brief Order-independent cache key of two per-language key rows, as
  /// used with PairVerdictCache (exposed for cache tests).
  static uint64_t PairCacheKey(const uint64_t* k1, const uint64_t* k2, size_t n);

 private:
  /// Per-language keys of one value (allocating convenience for the
  /// two-value entry points).
  std::vector<uint64_t> KeysOf(std::string_view value) const;
  /// Allocation-free key derivation into `out[0 .. |languages|)`, using
  /// `runs` as tokenizer scratch.
  void KeysInto(std::string_view value, std::vector<ClassRun>* runs,
                uint64_t* out) const;
  PairVerdict ScoreKeys(const uint64_t* k1, const uint64_t* k2) const;

  const Model* model_;
  DetectorOptions options_;
  /// Shared-tokenization kernel over the model's selected languages: every
  /// scored value is scanned once, not once per language.
  MultiGeneralizer multi_keys_;
};

}  // namespace autodetect
