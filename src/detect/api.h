#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"

/// \file api.h
/// The unified detection API: every way of asking Auto-Detect to scan a
/// column — the sequential Detector, the batching DetectionEngine, the CLI,
/// the eval harness and the benches — speaks DetectRequest/DetectReport.
/// The sequential and parallel paths are two executors of the same request
/// type (SequentialExecutor in detector.h, DetectionEngine in serve/), and
/// both are required to produce bit-identical ColumnReports for the same
/// values and model.
///
/// Requests carry an optional metrics `tag`; executors route per-tag
/// counters/latency histograms through the metrics registry (obs/metrics.h)
/// so multi-tenant callers can attribute cost and findings per workload.
///
/// The pre-redesign entry points — Detector::AnalyzeColumn and
/// DetectionEngine::DetectBatch — have been removed; this is the only
/// detection surface.

namespace autodetect {

/// One column to scan.
struct DetectRequest {
  /// Echoed back on the report; does not influence detection.
  std::string name;
  std::vector<std::string> values;
  /// Optional metrics label (e.g. tenant, dataset, eval domain): executors
  /// maintain `detect.tag.<tag>.*` counters/histograms for non-empty tags.
  /// Default-initialized so pre-redesign `{name, values}` aggregate call
  /// sites compile warning-free.
  std::string tag = {};
  /// Optional cancellation/deadline scope. The default token is inert (no
  /// clock reads, no cancellation); an active token makes executors poll it
  /// at safe points and return a partial report with the matching
  /// ColumnStatus when it fires. Typically one CancelSource per batch with
  /// its token copied into every column request (the engine's
  /// default_deadline_ms does exactly that).
  CancelToken cancel = {};
};

/// How one column's scan ended — the per-column resilience verdict. Ordered
/// as a degradation ladder: everything above kOk means the report may be
/// missing findings and says why. Execution metadata (like latency_us), NOT
/// part of the determinism contract: with no deadline, no cancellation and
/// no admission pressure, every report is kOk.
enum class ColumnStatus : uint8_t {
  kOk = 0,
  /// Scored under the degraded single-language fallback (the crude G of
  /// paper Sec. 3.1) after the per-column score budget ran out; findings are
  /// present but came from a weaker ensemble past the switch point.
  kDegraded,
  /// The request's deadline fired mid-scan; the report holds the findings
  /// accumulated up to that point (possibly none).
  kDeadlineExceeded,
  /// The request's token was cancelled explicitly; partial like deadline.
  kCancelled,
  /// Admission control refused or evicted the column; it was never scanned
  /// and the report is empty.
  kShed,
};

std::string_view ColumnStatusName(ColumnStatus status);

/// A cell-level finding within one column.
struct CellFinding {
  uint32_t row = 0;            ///< first row holding the value
  std::string value;
  double confidence = 0.0;     ///< max confidence over its flagged pairs
  uint32_t incompatible_with = 0;  ///< distinct partners it clashes with
};

/// A pair-level finding (the unit the paper's Table 4 reports).
struct PairFinding {
  std::string u;
  std::string v;
  double confidence = 0.0;
};

/// The detection result for one column. Deterministic for a given model and
/// values — identical across executors, worker counts and cache states.
struct ColumnReport {
  std::vector<CellFinding> cells;  ///< sorted by confidence descending
  std::vector<PairFinding> pairs;  ///< sorted by confidence descending
  /// Distinct values actually examined.
  size_t distinct_values = 0;

  bool HasFindings() const { return !cells.empty(); }
  /// Convenience: the top cell finding, if any.
  std::optional<CellFinding> Top() const {
    if (cells.empty()) return std::nullopt;
    return cells.front();
  }
};

/// One request's result: the deterministic ColumnReport plus per-request
/// execution metadata (which may vary run to run and is excluded from the
/// determinism contract).
struct DetectReport {
  std::string name;  ///< echoed from the request
  std::string tag;   ///< echoed from the request
  ColumnReport column;
  /// Wall-clock scan latency of this column, microseconds. Report payload,
  /// not gated instrumentation: populated even under AUTODETECT_NO_METRICS.
  uint64_t latency_us = 0;
  /// How the scan ended (see ColumnStatus). kOk whenever no deadline,
  /// cancellation or admission pressure applied — the resilience guarantee
  /// is that statuses are always accurate, never silently kOk on a partial
  /// report.
  ColumnStatus status = ColumnStatus::kOk;
};

/// Anything that can execute detection requests. Implementations:
///  * SequentialExecutor (detector.h) — one column at a time on the calling
///    thread, reusing one scratch; not thread-safe.
///  * DetectionEngine (serve/detection_engine.h) — batches fanned out over a
///    worker pool with a shared verdict cache; thread-safe.
class DetectionExecutor {
 public:
  virtual ~DetectionExecutor() = default;

  /// \brief Executes every request and returns one report per request, in
  /// request order.
  virtual std::vector<DetectReport> Detect(const std::vector<DetectRequest>& batch) = 0;

  /// \brief Single-request convenience.
  virtual DetectReport DetectOne(const DetectRequest& request) {
    std::vector<DetectRequest> batch;
    batch.push_back(request);
    std::vector<DetectReport> reports = Detect(batch);
    return reports.empty() ? DetectReport{} : std::move(reports.front());
  }
};

}  // namespace autodetect
