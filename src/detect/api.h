#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"

/// \file api.h
/// The unified detection API: every way of asking Auto-Detect to scan a
/// column — the sequential Detector, the batching DetectionEngine, the CLI,
/// the network server (net/server.h), the eval harness and the benches —
/// speaks DetectRequest/DetectReport. The sequential and parallel paths are
/// two executors of the same request type (SequentialExecutor in detector.h,
/// DetectionEngine in serve/), and both are required to produce bit-identical
/// ColumnReports for the same values and model.
///
/// The executor contract is streaming-first: `Detect(batch, ReportSink&)`
/// delivers each column's report as its scan completes (the network server
/// frames these straight onto the wire), and the vector-returning `Detect`
/// is a thin adapter that collects the stream into request order. Requests
/// carry a structured RequestContext {tenant, tag, deadline_ms}; executors
/// route per-tag and per-tenant counters/latency histograms through the
/// metrics registry (obs/metrics.h) so multi-tenant callers can attribute
/// cost and findings per workload.
///
/// The pre-redesign entry points — Detector::AnalyzeColumn and
/// DetectionEngine::DetectBatch — have been removed; this is the only
/// detection surface.

namespace autodetect {

// Deprecation-suppression brackets for the one-release compatibility aliases
// below: internal code that must read a deprecated field (to honor it) wraps
// the access so the warning only fires on external callers.
#define AD_SUPPRESS_DEPRECATED_BEGIN \
  _Pragma("GCC diagnostic push")     \
      _Pragma("GCC diagnostic ignored \"-Wdeprecated-declarations\"")
#define AD_SUPPRESS_DEPRECATED_END _Pragma("GCC diagnostic pop")

/// Who is asking and under what budget. Replaces the free-form metrics `tag`
/// string of earlier releases with a structured triple:
///  * `tenant` — the isolation unit. The serving layers key per-tenant
///    admission control and `detect.tenant.<tenant>.*` metrics on it.
///  * `tag` — free-form workload label within a tenant (dataset, eval
///    domain, file); executors maintain `detect.tag.<tag>.*` metrics for
///    non-empty tags.
///  * `deadline_ms` — per-request deadline, mapped by executors onto the
///    CancelSource machinery (common/cancel.h) when the request carries no
///    explicit token of its own. 0 = none.
struct RequestContext {
  std::string tenant;
  std::string tag;
  uint64_t deadline_ms = 0;

  RequestContext() = default;
  RequestContext(std::string tenant_in, std::string tag_in,
                 uint64_t deadline_ms_in = 0)
      : tenant(std::move(tenant_in)),
        tag(std::move(tag_in)),
        deadline_ms(deadline_ms_in) {}

  /// Legacy positional-tag compatibility: `DetectRequest{name, values, "t"}`
  /// call sites from the free-form-tag era keep compiling (the string lands
  /// in `tag`), but with a deprecation warning for one release.
  [[deprecated(
      "the free-form DetectRequest tag is now RequestContext{tenant, tag, "
      "deadline_ms}; construct the context explicitly")]]  //
  RequestContext(const char* legacy_tag) : tag(legacy_tag) {}
  [[deprecated(
      "the free-form DetectRequest tag is now RequestContext{tenant, tag, "
      "deadline_ms}; construct the context explicitly")]]  //
  RequestContext(std::string legacy_tag) : tag(std::move(legacy_tag)) {}
};

/// One column to scan.
struct DetectRequest {
  // Special members are user-declared (defined in api.cc under deprecation
  // suppression) so that synthesizing them never warns about the deprecated
  // `tag` member at innocent call sites; only direct `tag` access warns.
  DetectRequest();
  DetectRequest(std::string name_in, std::vector<std::string> values_in,
                RequestContext context_in = {});
  DetectRequest(const DetectRequest&);
  DetectRequest(DetectRequest&&) noexcept;
  DetectRequest& operator=(const DetectRequest&);
  DetectRequest& operator=(DetectRequest&&) noexcept;
  ~DetectRequest();

  /// Echoed back on the report; does not influence detection.
  std::string name;
  std::vector<std::string> values;
  /// Caller identity and budgets; see RequestContext.
  RequestContext context = {};
  /// Deprecated alias for context.tag, honored when context.tag is empty —
  /// kept for one release so `request.tag = "x"` call sites keep compiling
  /// (with a warning). Use context.tag.
  [[deprecated("use context.tag")]] std::string tag = {};
  /// Optional cancellation/deadline scope. The default token is inert (no
  /// clock reads, no cancellation); an active token makes executors poll it
  /// at safe points and return a partial report with the matching
  /// ColumnStatus when it fires. Precedence: an active request token wins
  /// over context.deadline_ms, which wins over any executor-level default
  /// (the engine's default_deadline_ms).
  CancelToken cancel = {};

  /// The tag executors act on: context.tag, falling back to the deprecated
  /// alias so legacy callers keep their per-tag metrics for one release.
  const std::string& EffectiveTag() const {
    AD_SUPPRESS_DEPRECATED_BEGIN
    return context.tag.empty() ? tag : context.tag;
    AD_SUPPRESS_DEPRECATED_END
  }
};

/// How one column's scan ended — the per-column resilience verdict. Ordered
/// as a degradation ladder: everything above kOk means the report may be
/// missing findings and says why. Execution metadata (like latency_us), NOT
/// part of the determinism contract: with no deadline, no cancellation and
/// no admission pressure, every report is kOk.
enum class ColumnStatus : uint8_t {
  kOk = 0,
  /// Scored under the degraded single-language fallback (the crude G of
  /// paper Sec. 3.1) after the per-column score budget ran out; findings are
  /// present but came from a weaker ensemble past the switch point.
  kDegraded,
  /// The request's deadline fired mid-scan; the report holds the findings
  /// accumulated up to that point (possibly none).
  kDeadlineExceeded,
  /// The request's token was cancelled explicitly; partial like deadline.
  kCancelled,
  /// Admission control refused or evicted the column; it was never scanned
  /// and the report is empty.
  kShed,
};

std::string_view ColumnStatusName(ColumnStatus status);

/// A cell-level finding within one column.
struct CellFinding {
  uint32_t row = 0;            ///< first row holding the value
  std::string value;
  double confidence = 0.0;     ///< max confidence over its flagged pairs
  uint32_t incompatible_with = 0;  ///< distinct partners it clashes with
};

/// A pair-level finding (the unit the paper's Table 4 reports).
struct PairFinding {
  std::string u;
  std::string v;
  double confidence = 0.0;
};

/// The detection result for one column. Deterministic for a given model and
/// values — identical across executors, worker counts and cache states.
struct ColumnReport {
  std::vector<CellFinding> cells;  ///< sorted by confidence descending
  std::vector<PairFinding> pairs;  ///< sorted by confidence descending
  /// Distinct values actually examined.
  size_t distinct_values = 0;

  bool HasFindings() const { return !cells.empty(); }
  /// Convenience: the top cell finding, if any.
  std::optional<CellFinding> Top() const {
    if (cells.empty()) return std::nullopt;
    return cells.front();
  }
};

/// One request's result: the deterministic ColumnReport plus per-request
/// execution metadata (which may vary run to run and is excluded from the
/// determinism contract).
struct DetectReport {
  std::string name;  ///< echoed from the request
  std::string tag;   ///< echoed from the request (its effective tag)
  ColumnReport column;
  /// Wall-clock scan latency of this column, microseconds. Report payload,
  /// not gated instrumentation: populated even under AUTODETECT_NO_METRICS.
  uint64_t latency_us = 0;
  /// How the scan ended (see ColumnStatus). kOk whenever no deadline,
  /// cancellation or admission pressure applied — the resilience guarantee
  /// is that statuses are always accurate, never silently kOk on a partial
  /// report.
  ColumnStatus status = ColumnStatus::kOk;
};

/// Where a streaming Detect delivers reports. OnReport is invoked exactly
/// once per request, as that column's scan completes — possibly out of
/// request order, and (for concurrent executors like DetectionEngine) from
/// multiple worker threads concurrently, so implementations must be
/// thread-safe unless they only ever run under SequentialExecutor. `index`
/// is the request's position in the batch; no two calls share an index, so
/// writing disjoint slots of a pre-sized vector needs no lock (the
/// executor's completion barrier publishes the writes).
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void OnReport(size_t index, DetectReport&& report) = 0;
};

/// Anything that can execute detection requests. Implementations:
///  * SequentialExecutor (detector.h) — one column at a time on the calling
///    thread, reusing one scratch; not thread-safe.
///  * DetectionEngine (serve/detection_engine.h) — batches fanned out over a
///    worker pool with a shared verdict cache; thread-safe.
///
/// The streaming overload is THE entry point: implementations define it, and
/// the vector/single conveniences below are adapters over it. Derived
/// classes should `using DetectionExecutor::Detect;` so both overloads stay
/// visible on the concrete type.
class DetectionExecutor {
 public:
  virtual ~DetectionExecutor() = default;

  /// \brief Executes every request, delivering each report to `sink` as its
  /// column completes (not at batch end). Returns once every request has
  /// been delivered; sink calls never outlive this call.
  virtual void Detect(const std::vector<DetectRequest>& batch,
                      ReportSink& sink) = 0;

  /// \brief Batch convenience: collects the stream into one report per
  /// request, in request order.
  std::vector<DetectReport> Detect(const std::vector<DetectRequest>& batch);

  /// \brief Single-request convenience. Always echoes the request's name and
  /// effective tag; if an executor fails to deliver a report (a broken
  /// custom implementation), the result is an empty kShed report rather
  /// than a silently-default one.
  virtual DetectReport DetectOne(const DetectRequest& request);
};

}  // namespace autodetect
