#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/column_source.h"
#include "detect/model.h"
#include "stats/stats_builder.h"
#include "train/calibration.h"
#include "train/distant_supervision.h"
#include "train/selection.h"

/// \file trainer.h
/// Offline training orchestration: corpus statistics → distant supervision
/// → per-language calibration → budgeted language selection → Model.
///
/// The intermediate `TrainingPipeline` is exposed so ablation benches can
/// re-run only the cheap final stage under different memory budgets or
/// sketch ratios (paper Figs. 7 and 8a) without re-scanning the corpus.

namespace autodetect {

struct TrainOptions {
  /// Precision requirement P of Definition 5.
  double precision_target = 0.95;
  /// Memory budget M for the selected languages' statistics.
  size_t memory_budget_bytes = 200ull << 20;
  /// Jelinek-Mercer smoothing factor f (Eq. 10).
  double smoothing_factor = 0.1;
  /// Co-occurrence compression: 1.0 keeps exact dictionaries; r < 1
  /// replaces each selected language's dictionary with a count-min sketch
  /// of r times the size (Sec. 3.4).
  double sketch_ratio = 1.0;
  /// Absolute variant of the same knob: cap each selected language's
  /// co-occurrence sketch at this many counter bytes (power-of-two width,
  /// see CountMinSketch::FromMemoryBudget). 0 = off. Takes precedence over
  /// sketch_ratio; languages whose exact dictionary is already smaller than
  /// the planned sketch stay exact, so exact and sketched languages coexist
  /// in one model. This is the `train --sketch-budget-mb` knob.
  size_t sketch_budget_bytes = 0;
  /// Human-readable provenance stored in the model.
  std::string corpus_name = "corpus";

  StatsBuilderOptions stats;
  DistantSupervisionOptions supervision;
  CalibrationOptions calibration;  ///< precision_target/smoothing overridden
  size_t num_threads = 0;
};

/// \brief Everything computed before budget-dependent selection.
class TrainingPipeline {
 public:
  /// \brief Runs stats building, supervision and calibration. `source` is
  /// streamed twice (stats, then supervision) via Reset().
  static Result<TrainingPipeline> Run(ColumnSource* source, TrainOptions options);

  /// \brief Selects languages under `memory_budget_bytes`/`sketch_ratio`/
  /// `sketch_budget_bytes` (overriding the option defaults) and assembles a
  /// Model. The knapsack prices sketched candidates at the exact bytes the
  /// compressor will allocate (see CountMinSketch::PlannedBytes).
  Result<Model> BuildModel(size_t memory_budget_bytes, double sketch_ratio,
                           size_t sketch_budget_bytes) const;
  Result<Model> BuildModel(size_t memory_budget_bytes, double sketch_ratio) const;
  Result<Model> BuildModel() const;

  /// \brief Re-runs only the calibration stage with a different smoothing
  /// factor, in place (stats and training set are reused, not copied — the
  /// full 144-language statistics store is too large to duplicate). Used by
  /// the smoothing ablation (paper Fig. 17a): calibration thresholds depend
  /// on f, so a fair sweep recalibrates rather than just re-scoring.
  void RecalibrateInPlace(double smoothing_factor);

  /// \brief Checkpoints the pipeline (statistics for every candidate
  /// language, training set, calibrations) so later processes can re-select
  /// under different budgets/sketch ratios without re-scanning the corpus.
  /// Only budget-independent state is stored; options revert to defaults
  /// except the calibration-relevant ones.
  Status Save(const std::string& path) const;
  static Result<TrainingPipeline> Load(const std::string& path);

  const TrainOptions& options() const { return options_; }
  const CorpusStats& stats() const { return stats_; }
  const TrainingSet& training_set() const { return training_set_; }
  const std::vector<int>& lang_ids() const { return lang_ids_; }
  const std::vector<CalibrationResult>& calibrations() const { return calibrations_; }
  uint64_t corpus_columns() const { return corpus_columns_; }

 private:
  TrainOptions options_;
  CorpusStats stats_;
  TrainingSet training_set_;
  std::vector<int> lang_ids_;  ///< calibrated candidates, aligned with below
  std::vector<CalibrationResult> calibrations_;
  uint64_t corpus_columns_ = 0;
};

/// \brief One-call convenience: pipeline + model assembly with the options'
/// budget and sketch ratio.
Result<Model> TrainModel(ColumnSource* source, const TrainOptions& options);

}  // namespace autodetect
