#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/column_source.h"
#include "detect/model.h"
#include "stats/stats_builder.h"
#include "train/calibration.h"
#include "train/distant_supervision.h"
#include "train/selection.h"
#include "train/shard.h"

/// \file trainer.h
/// Offline training as a staged session. Statistics building is the only
/// stage that must see every corpus column with every candidate language,
/// so it is split out as a map/reduce surface over ADSHARD1 artifacts
/// (train/shard.h); supervision + calibration and budget-dependent
/// selection are separate stages that can re-run against adopted
/// statistics. The stages:
///
///   map      TrainSession::BuildShard(partition)      one worker per slice
///   reduce   MergeShards / MergeShardFiles            any order, same bits
///   adopt    session.UseStats(shard)                  or BuildStats(source)
///            session.AddShards(new_shards)            delta refresh
///   finalize session.Supervise(source)                supervision+calibration
///            session.Finalize(budget, sketch...)      selection -> Model
///
/// `TrainModel` remains as the thin one-shot adapter over the same stages.
/// Determinism contract: a model finalized from N merged shards is
/// byte-identical to the one-shot model, for any shard order — statistics
/// are canonicalized (FlatMap64::Canonicalize) at every adoption point, and
/// every later stage is a pure function of those statistics and the column
/// stream. The session also checkpoints (Save/Load) so re-selection under
/// new budgets or sketch ratios never re-scans the corpus — ablation
/// benches re-run only the cheap final stage (paper Figs. 7 and 8a).

namespace autodetect {

struct TrainOptions {
  /// Precision requirement P of Definition 5.
  double precision_target = 0.95;
  /// Memory budget M for the selected languages' statistics.
  size_t memory_budget_bytes = 200ull << 20;
  /// Jelinek-Mercer smoothing factor f (Eq. 10).
  double smoothing_factor = 0.1;
  /// Co-occurrence compression: 1.0 keeps exact dictionaries; r < 1
  /// replaces each selected language's dictionary with a count-min sketch
  /// of r times the size (Sec. 3.4).
  double sketch_ratio = 1.0;
  /// Absolute variant of the same knob: cap each selected language's
  /// co-occurrence sketch at this many counter bytes (power-of-two width,
  /// see CountMinSketch::FromMemoryBudget). 0 = off. Takes precedence over
  /// sketch_ratio; languages whose exact dictionary is already smaller than
  /// the planned sketch stay exact, so exact and sketched languages coexist
  /// in one model. This is the `train --sketch-budget-mb` knob.
  size_t sketch_budget_bytes = 0;
  /// Human-readable provenance stored in the model.
  std::string corpus_name = "corpus";

  StatsBuilderOptions stats;
  DistantSupervisionOptions supervision;
  CalibrationOptions calibration;  ///< precision_target/smoothing overridden
  size_t num_threads = 0;
};

/// \brief A staged training run. Construct with options, feed it statistics
/// (built in-process or adopted from shards), run supervision, finalize
/// into as many models as needed.
class TrainSession {
 public:
  TrainSession() = default;
  explicit TrainSession(TrainOptions options);

  /// \brief The map stage: streams `partition` once and returns a
  /// canonicalized statistics shard for it. Stateless — workers call this
  /// independently and persist the result via WriteShard. `provenance`
  /// records which column slice of which corpus this is; MergeShards
  /// enforces compatibility from it.
  static Result<StatsShard> BuildShard(ColumnSource* partition,
                                       const TrainOptions& options,
                                       ShardProvenance provenance);

  /// \brief One-shot statistics: streams `source` (after Reset) through
  /// BuildCorpusStats and adopts the canonicalized result. Equivalent to
  /// BuildShard over the whole corpus + UseStats.
  Status BuildStats(ColumnSource* source);

  /// \brief Adopts previously built statistics (typically the output of
  /// MergeShards / MergeShardFiles). Rejects a shard whose options digest
  /// does not match this session's statistics options — counts built under
  /// different options are incomparable. Invalidates any prior supervision.
  Status UseStats(StatsShard shard);

  /// \brief The delta path: folds new shards into the adopted statistics
  /// (same merge contract as MergeShards — the combined ranges must tile
  /// one contiguous range). Supervision must be re-run afterwards; the
  /// statistics pass over the OLD columns is what this saves.
  Status AddShards(std::vector<StatsShard> shards);

  /// \brief Distant supervision + per-language calibration against the
  /// adopted statistics. `source` must stream the FULL corpus the
  /// statistics cover (it is Reset first). Calibration pre-keys the
  /// training set once under every candidate (PreKeyedTrainingSet) and
  /// calibrates candidates in parallel.
  Status Supervise(ColumnSource* source);

  /// \brief Selects languages under `memory_budget_bytes`/`sketch_ratio`/
  /// `sketch_budget_bytes` (overriding the option defaults) and assembles a
  /// Model. The knapsack prices sketched candidates at the exact bytes the
  /// compressor will allocate (see CountMinSketch::PlannedBytes).
  Result<Model> Finalize(size_t memory_budget_bytes, double sketch_ratio,
                         size_t sketch_budget_bytes) const;
  Result<Model> Finalize(size_t memory_budget_bytes, double sketch_ratio) const;
  Result<Model> Finalize() const;

  /// \brief Re-runs only the calibration stage with a different smoothing
  /// factor, in place (stats and training set are reused, not copied — the
  /// full 144-language statistics store is too large to duplicate). Used by
  /// the smoothing ablation (paper Fig. 17a): calibration thresholds depend
  /// on f, so a fair sweep recalibrates rather than just re-scoring.
  void RecalibrateInPlace(double smoothing_factor);

  /// \brief Checkpoints the session (statistics for every candidate
  /// language, training set, calibrations) so later processes can re-select
  /// under different budgets/sketch ratios without re-scanning the corpus.
  /// Only budget-independent state is stored; options revert to defaults
  /// except the calibration-relevant ones.
  Status Save(const std::string& path) const;
  static Result<TrainSession> Load(const std::string& path);

  bool has_stats() const { return has_stats_; }
  bool supervised() const { return supervised_; }

  const TrainOptions& options() const { return options_; }
  const CorpusStats& stats() const { return stats_; }
  const ShardProvenance& provenance() const { return provenance_; }
  const TrainingSet& training_set() const { return training_set_; }
  const std::vector<int>& lang_ids() const { return lang_ids_; }
  const std::vector<CalibrationResult>& calibrations() const { return calibrations_; }
  uint64_t corpus_columns() const { return corpus_columns_; }

 private:
  /// Post-adoption bookkeeping shared by BuildStats/UseStats/AddShards.
  Status AdoptStats();

  TrainOptions options_;
  CorpusStats stats_;
  ShardProvenance provenance_;
  TrainingSet training_set_;
  std::vector<int> lang_ids_;  ///< calibrated candidates, aligned with below
  std::vector<CalibrationResult> calibrations_;
  uint64_t corpus_columns_ = 0;
  bool has_stats_ = false;
  bool supervised_ = false;
};

/// \brief One-call convenience over the staged session: BuildStats +
/// Supervise + Finalize with the options' budget and sketch ratio.
Result<Model> TrainModel(ColumnSource* source, const TrainOptions& options);

}  // namespace autodetect
