#include "detect/detector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "stats/npmi.h"
#include "stats/stats_builder.h"
#include "text/pattern.h"

namespace autodetect {

std::string_view ColumnStatusName(ColumnStatus status) {
  switch (status) {
    case ColumnStatus::kOk:
      return "ok";
    case ColumnStatus::kDegraded:
      return "degraded";
    case ColumnStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ColumnStatus::kCancelled:
      return "cancelled";
    case ColumnStatus::kShed:
      return "shed";
  }
  return "?";
}

std::string_view AggregationName(Aggregation a) {
  switch (a) {
    case Aggregation::kMaxConfidence:
      return "Auto-Detect";
    case Aggregation::kAvgNpmi:
      return "AvgNPMI";
    case Aggregation::kMinNpmi:
      return "MinNPMI";
    case Aggregation::kMajorityVote:
      return "MV";
    case Aggregation::kWeightedMajorityVote:
      return "WMV";
    case Aggregation::kBestSingle:
      return "BestOne";
  }
  return "?";
}

std::string PairExplanation::ToString() const {
  std::string out = StrFormat("verdict: %s (confidence %.3f, min NPMI %+.3f)\n",
                              verdict.incompatible ? "INCOMPATIBLE" : "compatible",
                              verdict.confidence, verdict.min_npmi);
  for (const auto& e : languages) {
    out += StrFormat(
        "  %-26s %-22s | %-22s c=%llu/%llu co=%llu npmi %+5.2f theta %+5.2f%s\n",
        e.language_name.c_str(), e.pattern_u.c_str(), e.pattern_v.c_str(),
        static_cast<unsigned long long>(e.count_u),
        static_cast<unsigned long long>(e.count_v),
        static_cast<unsigned long long>(e.co_count), e.npmi, e.threshold,
        e.fired ? "  <-- fires" : "");
  }
  return out;
}

namespace {

MultiGeneralizer KernelForModel(const Model* model) {
  AD_CHECK(model != nullptr);
  AD_CHECK(!model->languages.empty()) << "model has no languages";
  std::vector<int> ids;
  ids.reserve(model->languages.size());
  for (const auto& l : model->languages) ids.push_back(l.lang_id);
  return MultiGeneralizer::ForIds(ids);
}

}  // namespace

Detector::Detector(const Model* model) : Detector(model, DetectorOptions()) {}

Detector::Detector(const Model* model, DetectorOptions options)
    : model_(model),
      options_(options),
      multi_keys_(KernelForModel(model)),
      registry_(OrDefaultRegistry(options.metrics)) {
  metrics_.columns = registry_->GetCounter("detect.columns_total");
  metrics_.pairs_scored = registry_->GetCounter("detect.pairs_scored_total");
  metrics_.pairs_cache_hits = registry_->GetCounter("detect.pairs_cache_hits_total");
  metrics_.rare_fallbacks = registry_->GetCounter("detect.rare_fallbacks_total");
  metrics_.columns_degraded = registry_->GetCounter("detect.columns_degraded_total");
  metrics_.columns_cancelled = registry_->GetCounter("detect.columns_cancelled_total");
  metrics_.column_latency_us = registry_->GetHistogram("detect.column_latency_us");
  metrics_.key_stage_us = registry_->GetHistogram("detect.stage.key_us");
  metrics_.score_stage_us = registry_->GetHistogram("detect.stage.score_us");
  metrics_.dedup_values_skipped =
      registry_->GetCounter("detect.dedup.values_skipped_total");
  metrics_.dedup_pairs_skipped =
      registry_->GetCounter("detect.dedup.pairs_skipped_total");
  metrics_.dedup_distinct_ratio =
      registry_->GetHistogram("detect.dedup.distinct_ratio_pct");
  // Which tokenizer tier this process dispatched (SimdTier numeric value) —
  // lets production dumps confirm the SIMD path is actually live.
  registry_->GetGauge("text.simd.isa")
      ->Set(static_cast<double>(static_cast<uint8_t>(ActiveSimdTier())));
  // Degraded fallback language: prefer the crude single-language G (paper
  // Sec. 3.1) when the model selected it, else the highest-coverage
  // language (index 0 — the languages are coverage-ordered).
  const int crude_id = LanguageSpace::IdOf(LanguageSpace::CrudeG());
  for (size_t i = 0; i < model_->languages.size(); ++i) {
    if (model_->languages[i].lang_id == crude_id) {
      degrade_lang_ = i;
      break;
    }
  }
  // Sketch escape hatch: with sketch_estimates off, sketched languages are
  // excluded from scoring, aggregation and the degraded fallback. The skip
  // vector stays empty on the default path (and for exact-only models), so
  // the hot loop pays nothing.
  if (!options_.sketch_estimates) {
    bool any_skipped = false;
    skip_lang_.assign(model_->languages.size(), 0);
    for (size_t i = 0; i < model_->languages.size(); ++i) {
      if (model_->languages[i].stats.uses_sketch()) {
        skip_lang_[i] = 1;
        any_skipped = true;
      }
    }
    if (!any_skipped) {
      skip_lang_.clear();
    } else {
      for (size_t i = 0; i < skip_lang_.size(); ++i) {
        if (!skip_lang_[i]) {
          best_single_lang_ = i;
          break;
        }
      }
      if (skip_lang_[degrade_lang_]) degrade_lang_ = best_single_lang_;
    }
  }
}

const Detector::TagMetrics& Detector::MetricsForPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(tag_mu_);
  auto it = tag_metrics_.find(prefix);
  if (it == tag_metrics_.end()) {
    TagMetrics m;
    m.columns = registry_->GetCounter(prefix + "columns_total");
    m.column_latency_us = registry_->GetHistogram(prefix + "column_latency_us");
    it = tag_metrics_.emplace(prefix, m).first;
  }
  return it->second;
}

std::vector<uint64_t> Detector::KeysOf(std::string_view value) const {
  std::vector<uint64_t> keys(model_->languages.size());
  std::vector<ClassRun> runs;
  KeysInto(value, &runs, keys.data());
  return keys;
}

void Detector::KeysInto(std::string_view value, std::vector<ClassRun>* runs,
                        uint64_t* out) const {
  uint8_t mask = TokenizeRuns(value, multi_keys_.options(), runs);
  multi_keys_.KeysFor(RunSpan(*runs), mask, out);
}

namespace {

/// FNV over the little-endian bytes of one per-language key row.
uint64_t RowSignature(const uint64_t* keys, size_t n) {
  Fnv1aHasher hasher;
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = keys[i];
    for (int b = 0; b < 64; b += 8) hasher.Byte(static_cast<unsigned char>(k >> b));
  }
  return hasher.h;
}

}  // namespace

uint64_t Detector::PairCacheKey(const uint64_t* k1, const uint64_t* k2, size_t n) {
  return CombineUnordered(RowSignature(k1, n), RowSignature(k2, n));
}

PairVerdict Detector::ScoreKeys(const uint64_t* k1, const uint64_t* k2,
                                uint64_t* rare_fallbacks) const {
  const auto& langs = model_->languages;
  const size_t n = langs.size();
  PairVerdict verdict;

  // Per-language scores.
  double sum_s = 0, min_s = 1.0;
  size_t votes = 0;
  double mass_in = 0, mass_out = 0;
  double sum_theta = 0;
  double best_conf = 0;
  int best_lang = -1;
  bool any_fired = false;

  const bool skipping = !skip_lang_.empty();
  size_t scored = 0;
  for (size_t i = 0; i < n; ++i) {
    if (skipping && skip_lang_[i]) continue;  // sketch escape hatch
    const ModelLanguage& l = langs[i];
    NpmiScorer scorer(&l.stats, model_->smoothing_factor);
    NpmiScorer::ScoreDetail detail;
    double s = scorer.Score(k1[i], k2[i], &detail);
    if (detail.rare_fallback && rare_fallbacks != nullptr) ++*rare_fallbacks;
    ++scored;
    sum_s += s;
    min_s = std::min(min_s, s);
    sum_theta += l.threshold;
    bool fired = s <= l.threshold;
    if (fired) {
      ++votes;
      mass_in += l.threshold - s;
      any_fired = true;
    } else {
      mass_out += s - l.threshold;
    }
    double conf = l.curve.PrecisionAt(s);
    if (fired && (best_lang == -1 || conf > best_conf)) {
      best_conf = conf;
      best_lang = l.lang_id;
    }
    if (options_.aggregation == Aggregation::kBestSingle) break;  // only first
  }
  if (scored == 0) return verdict;  // every language skipped: neutral verdict

  verdict.min_npmi = min_s;
  verdict.best_language = best_lang;

  const double avg_theta = sum_theta / static_cast<double>(scored);
  auto npmi_to_conf = [](double s) { return (1.0 - s) / 2.0; };

  switch (options_.aggregation) {
    case Aggregation::kMaxConfidence: {
      verdict.incompatible = any_fired;
      // Eq. 11: Q = max_k P_k(s_k) — but only languages that actually fired
      // carry evidence of incompatibility.
      verdict.confidence = any_fired ? best_conf : 0.0;
      break;
    }
    case Aggregation::kAvgNpmi: {
      double avg = sum_s / static_cast<double>(scored);
      verdict.incompatible = avg <= avg_theta;
      verdict.confidence = npmi_to_conf(avg);
      break;
    }
    case Aggregation::kMinNpmi: {
      verdict.incompatible = min_s <= avg_theta;
      verdict.confidence = npmi_to_conf(min_s);
      break;
    }
    case Aggregation::kMajorityVote: {
      verdict.incompatible = 2 * votes > scored;
      verdict.confidence = static_cast<double>(votes) / static_cast<double>(scored);
      break;
    }
    case Aggregation::kWeightedMajorityVote: {
      verdict.incompatible = mass_in > mass_out;
      verdict.confidence = mass_in / (mass_in + mass_out + 1e-9);
      break;
    }
    case Aggregation::kBestSingle: {
      const ModelLanguage& l = langs[best_single_lang_];
      NpmiScorer scorer(&l.stats, model_->smoothing_factor);
      double s = scorer.Score(k1[best_single_lang_], k2[best_single_lang_]);
      verdict.incompatible = s <= l.threshold;
      verdict.confidence = verdict.incompatible ? l.curve.PrecisionAt(s) : 0.0;
      verdict.best_language = verdict.incompatible ? l.lang_id : -1;
      verdict.min_npmi = s;
      break;
    }
  }
  return verdict;
}

PairVerdict Detector::ScoreKeysDegraded(const uint64_t* k1, const uint64_t* k2) const {
  if (!skip_lang_.empty() && skip_lang_[degrade_lang_]) {
    return PairVerdict{};  // every language sketched and estimates are off
  }
  const ModelLanguage& l = model_->languages[degrade_lang_];
  NpmiScorer scorer(&l.stats, model_->smoothing_factor);
  double s = scorer.Score(k1[degrade_lang_], k2[degrade_lang_]);
  PairVerdict verdict;
  verdict.incompatible = s <= l.threshold;
  verdict.confidence = verdict.incompatible ? l.curve.PrecisionAt(s) : 0.0;
  verdict.best_language = verdict.incompatible ? l.lang_id : -1;
  verdict.min_npmi = s;
  return verdict;
}

PairVerdict Detector::ScorePair(std::string_view v1, std::string_view v2) const {
  return ScoreKeys(KeysOf(v1).data(), KeysOf(v2).data(), nullptr);
}

PairExplanation Detector::ExplainPair(std::string_view v1, std::string_view v2) const {
  PairExplanation out;
  std::vector<uint64_t> k1 = KeysOf(v1), k2 = KeysOf(v2);
  out.verdict = ScoreKeys(k1.data(), k2.data());
  out.languages.reserve(model_->languages.size());
  for (size_t i = 0; i < model_->languages.size(); ++i) {
    const ModelLanguage& l = model_->languages[i];
    NpmiScorer scorer(&l.stats, model_->smoothing_factor);
    LanguageExplanation e;
    e.lang_id = l.lang_id;
    e.language_name = l.language().Name();
    e.pattern_u = GeneralizeToString(v1, l.language());
    e.pattern_v = GeneralizeToString(v2, l.language());
    e.count_u = l.stats.Count(k1[i]);
    e.count_v = l.stats.Count(k2[i]);
    e.co_count = l.stats.CoCount(k1[i], k2[i]);
    e.npmi = scorer.Score(k1[i], k2[i]);
    e.threshold = l.threshold;
    e.fired = e.npmi <= l.threshold;
    e.confidence = l.curve.PrecisionAt(e.npmi);
    out.languages.push_back(std::move(e));
  }
  return out;
}

DetectReport Detector::Detect(const DetectRequest& request, ColumnScratch* scratch,
                              PairVerdictCache* cache,
                              const CancelToken& fallback_cancel) const {
  DetectReport report;
  report.name = request.name;
  report.tag = request.EffectiveTag();
  // Cancellation precedence: a request-level token always wins; then the
  // request's own deadline budget (context.deadline_ms, mapped here onto the
  // CancelSource machinery — the token keeps the deadline state alive); last
  // the executor fallback (the engine's batch default deadline, inert unless
  // default_deadline_ms is set).
  CancelToken cancel;
  if (request.cancel.active()) {
    cancel = request.cancel;
  } else if (request.context.deadline_ms > 0) {
    cancel = CancelSource::WithDeadline(
                 std::chrono::milliseconds(request.context.deadline_ms))
                 .token();
  } else {
    cancel = fallback_cancel;
  }
  // latency_us is report payload (not gated instrumentation): one clock read
  // pair per column, always on.
  const auto start = std::chrono::steady_clock::now();
  ColumnStatus status = ColumnStatus::kOk;
  if (scratch != nullptr) {
    report.column = Scan(request.values, scratch, cache, cancel, &status);
  } else {
    ColumnScratch local;
    report.column = Scan(request.values, &local, cache, cancel, &status);
  }
  report.status = status;
  if (status == ColumnStatus::kDegraded) {
    metrics_.columns_degraded->Add(1);
  } else if (status == ColumnStatus::kDeadlineExceeded ||
             status == ColumnStatus::kCancelled) {
    metrics_.columns_cancelled->Add(1);
  }
  report.latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (!report.tag.empty()) {
    const TagMetrics& tag = MetricsForPrefix("detect.tag." + report.tag + ".");
    tag.columns->Add(1);
    tag.column_latency_us->Record(report.latency_us);
  }
  if (!request.context.tenant.empty()) {
    const TagMetrics& tenant =
        MetricsForPrefix("detect.tenant." + request.context.tenant + ".");
    tenant.columns->Add(1);
    tenant.column_latency_us->Record(report.latency_us);
  }
  return report;
}

namespace {

/// The status a tripped token maps to.
ColumnStatus CancelStatus(const CancelToken& cancel) {
  return cancel.ExpiredDeadline() ? ColumnStatus::kDeadlineExceeded
                                  : ColumnStatus::kCancelled;
}

}  // namespace

ColumnReport Detector::Scan(const std::vector<std::string>& values,
                            ColumnScratch* scratch, PairVerdictCache* cache,
                            const CancelToken& cancel, ColumnStatus* status) const {
  metrics_.columns->Add(1);
  StageTimer column_timer(metrics_.column_latency_us);
  *status = ColumnStatus::kOk;

  ColumnReport report;
  // A token that tripped before any work: return an empty partial report
  // without paying the distinct-value pass.
  if (cancel.active() && cancel.Cancelled()) {
    *status = CancelStatus(cancel);
    return report;
  }
  // Budget clock: one read at scan start, one per pair-scoring row, and only
  // when a budget was configured — the default path reads no clock here.
  const bool budgeted = options_.column_budget_us > 0;
  const auto scan_start =
      budgeted ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point();

  // Reduce the column to the distinct values to score, each with its
  // first-occurrence row. The interned path indexes the column once through
  // the FlatMap64 (no string copies, no per-row node allocations); the
  // legacy path reproduces the pre-interner pipeline for A/B runs. Both
  // yield the same value sequence and rows, so reports are byte-identical.
  std::vector<std::string> legacy_distinct;
  std::vector<std::string_view> distinct;
  std::vector<uint32_t> first_rows;
  if (options_.dedup) {
    scratch->interner.Intern(values);
    scratch->interner.SampleIndices(options_.max_distinct_values, &scratch->sampled);
    distinct.reserve(scratch->sampled.size());
    first_rows.reserve(scratch->sampled.size());
    for (uint32_t idx : scratch->sampled) {
      const ValueInterner::Entry& e = scratch->interner.entry(idx);
      distinct.push_back(e.value);
      first_rows.push_back(e.first_row);
    }
    const uint64_t nv = scratch->interner.num_values();
    const uint64_t nd = scratch->interner.num_distinct();
    const uint64_t ds = distinct.size();
    metrics_.dedup_values_skipped->Add(nv - nd);
    // Pairs a non-deduping scorer would have visited minus pairs this scan
    // actually considers.
    metrics_.dedup_pairs_skipped->Add(nv * (nv - 1) / 2 - ds * (ds - 1) / 2);
    metrics_.dedup_distinct_ratio->Record(
        nv == 0 ? 100.0 : 100.0 * static_cast<double>(nd) / static_cast<double>(nv));
  } else {
    legacy_distinct = DistinctValuesForStats(values, options_.max_distinct_values);
    std::unordered_map<std::string_view, uint32_t> first_row;
    for (size_t r = 0; r < values.size(); ++r) {
      first_row.emplace(values[r], static_cast<uint32_t>(r));
    }
    distinct.reserve(legacy_distinct.size());
    first_rows.reserve(legacy_distinct.size());
    for (const std::string& v : legacy_distinct) {
      distinct.push_back(v);
      first_rows.push_back(first_row[v]);
    }
  }
  report.distinct_values = distinct.size();
  const size_t d = distinct.size();
  if (d < 2) return report;

  // Pre-generalize all distinct values under every model language into the
  // scratch's flat key matrix (row i = value i's per-language keys).
  const size_t n = model_->languages.size();
  {
    StageTimer key_timer(metrics_.key_stage_us);
    scratch->keys.resize(d * n);
    uint64_t* keys = scratch->keys.data();
    for (size_t i = 0; i < d; ++i) {
      KeysInto(distinct[i], &scratch->runs, keys + i * n);
    }

    // With a cache, each value gets a signature over its key row; a pair is
    // looked up by the order-independent combination of the two signatures.
    if (cache != nullptr) {
      scratch->signatures.resize(d);
      for (size_t i = 0; i < d; ++i) {
        scratch->signatures[i] = RowSignature(keys + i * n, n);
      }
    }
  }
  uint64_t* keys = scratch->keys.data();

  struct CellAgg {
    uint32_t degree = 0;
    double best_conf = 0;
  };
  std::vector<CellAgg> agg(d);

  // Per-column aggregates, flushed into the registry in one Add each — the
  // pair loop is the hot path and must not touch shared cache lines per
  // pair.
  uint64_t pairs_scored = 0, cache_hits = 0, rare_fallbacks = 0;
  bool degraded = false, tripped = false;
  {
    StageTimer score_timer(metrics_.score_stage_us);
    for (size_t i = 0; i < d; ++i) {
      // Safe point, once per row (≤ max_distinct_values polls per column):
      // a tripped token keeps the findings accumulated so far; a spent
      // budget downgrades the remaining rows to the single-language
      // fallback instead of aborting them.
      if (cancel.active() && cancel.Cancelled()) {
        tripped = true;
        break;
      }
      if (budgeted && !degraded &&
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - scan_start)
                  .count() >= static_cast<int64_t>(options_.column_budget_us)) {
        degraded = true;
      }
      for (size_t j = i + 1; j < d; ++j) {
        PairVerdict v;
        if (degraded) {
          // Degraded verdicts come from a weaker ensemble: bypass the cache
          // entirely so they can never be served to a full-fidelity scan.
          ++pairs_scored;
          v = ScoreKeysDegraded(keys + i * n, keys + j * n);
        } else if (cache != nullptr) {
          uint64_t pair_key =
              CombineUnordered(scratch->signatures[i], scratch->signatures[j]);
          if (cache->Lookup(pair_key, &v)) {
            ++cache_hits;
          } else {
            ++pairs_scored;
            v = ScoreKeys(keys + i * n, keys + j * n, &rare_fallbacks);
            cache->Insert(pair_key, v);
          }
        } else {
          ++pairs_scored;
          v = ScoreKeys(keys + i * n, keys + j * n, &rare_fallbacks);
        }
        if (!v.incompatible || v.confidence < options_.min_confidence) continue;
        report.pairs.push_back(PairFinding{std::string(distinct[i]),
                                           std::string(distinct[j]), v.confidence});
        ++agg[i].degree;
        ++agg[j].degree;
        agg[i].best_conf = std::max(agg[i].best_conf, v.confidence);
        agg[j].best_conf = std::max(agg[j].best_conf, v.confidence);
      }
    }
  }
  if (tripped) {
    *status = CancelStatus(cancel);
  } else if (degraded) {
    *status = ColumnStatus::kDegraded;
  }
  metrics_.pairs_scored->Add(pairs_scored);
  metrics_.pairs_cache_hits->Add(cache_hits);
  metrics_.rare_fallbacks->Add(rare_fallbacks);

  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const PairFinding& a, const PairFinding& b) {
              return a.confidence > b.confidence;
            });
  if (report.pairs.size() > options_.max_pair_findings) {
    report.pairs.resize(options_.max_pair_findings);
  }

  // Cell attribution: a cell is the likely error when it clashes with at
  // least half of the other distinct values. With exactly two distinct
  // values there is no majority — fall back to global pattern frequency
  // (the rarer pattern corpus-wide is the suspect).
  auto corpus_frequency = [&](size_t idx) {
    uint64_t total = 0;
    for (size_t li = 0; li < n; ++li) {
      total += model_->languages[li].stats.Count(keys[idx * n + li]);
    }
    return total;
  };

  for (size_t i = 0; i < d; ++i) {
    if (agg[i].degree == 0) continue;
    bool is_suspect;
    if (d == 2) {
      size_t other = 1 - i;
      uint64_t mine = corpus_frequency(i);
      uint64_t theirs = corpus_frequency(other);
      is_suspect = mine < theirs || (mine == theirs && i == 1);
    } else {
      is_suspect = 2 * agg[i].degree >= (d - 1);
    }
    if (!is_suspect) continue;
    CellFinding f;
    f.row = first_rows[i];
    f.value = std::string(distinct[i]);
    f.confidence = agg[i].best_conf;
    f.incompatible_with = agg[i].degree;
    report.cells.push_back(std::move(f));
  }
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellFinding& a, const CellFinding& b) {
              if (a.confidence != b.confidence) return a.confidence > b.confidence;
              return a.incompatible_with > b.incompatible_with;
            });
  return report;
}

const Detector* SequentialExecutor::CurrentDetector() {
  if (provider_ == nullptr) return detector_;
  const uint64_t generation = provider_->Generation();
  if (!snapshot_detector_.has_value() || generation != snapshot_generation_) {
    snapshot_model_ = provider_->Snapshot();
    AD_CHECK(snapshot_model_ != nullptr);  // provider must be loaded first
    snapshot_detector_.emplace(snapshot_model_.get(), options_);
    snapshot_generation_ = generation;
  }
  return &*snapshot_detector_;
}

void SequentialExecutor::Detect(const std::vector<DetectRequest>& batch,
                                ReportSink& sink) {
  // One snapshot per batch: a provider swap mid-batch must not split the
  // batch across models. Reports stream to the sink in request order (the
  // sequential executor's delivery order is its scan order).
  const Detector* detector = CurrentDetector();
  for (size_t i = 0; i < batch.size(); ++i) {
    sink.OnReport(i, detector->Detect(batch[i], &scratch_, cache_));
  }
}

DetectReport SequentialExecutor::DetectOne(const DetectRequest& request) {
  return CurrentDetector()->Detect(request, &scratch_, cache_);
}

}  // namespace autodetect
