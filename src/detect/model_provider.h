#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "detect/model.h"

/// \file model_provider.h
/// Where executors get their Model. Before this interface, every executor
/// took a raw `const Model*` and a retrained model meant tearing the engine
/// down; now executors ask a ModelProvider for the current snapshot, so the
/// embedding case (one fixed model) and the serving case (hot-reloadable
/// registry, serve/model_registry.h) share one acquisition path.
///
/// Snapshot semantics are RCU-style: a snapshot handed out stays valid and
/// immutable for as long as the caller holds the shared_ptr, even if the
/// provider swaps in a newer model concurrently. In-flight work therefore
/// finishes on the model it started with; only new work observes a swap.

namespace autodetect {

class ModelProvider {
 public:
  virtual ~ModelProvider() = default;

  /// \brief The current model. May be null before a registry's first
  /// successful load; never null for FixedModel. The returned snapshot is
  /// immutable and outlives any subsequent swap.
  virtual std::shared_ptr<const Model> Snapshot() const = 0;

  /// \brief Monotonic counter bumped on every successful swap. Executors
  /// poll this as a cheap "did the model change" probe (one relaxed load)
  /// instead of refcount traffic on the snapshot itself.
  virtual uint64_t Generation() const = 0;
};

/// The fixed-snapshot provider: always serves the same model. This is the
/// embedding case — model trained or loaded in-process, swap never happens.
class FixedModel : public ModelProvider {
 public:
  explicit FixedModel(std::shared_ptr<const Model> model)
      : model_(std::move(model)) {}

  /// Non-owning convenience for stack- or caller-owned models; `model` must
  /// outlive every snapshot user.
  explicit FixedModel(const Model* model)
      : model_(std::shared_ptr<const Model>(model, [](const Model*) {})) {}

  std::shared_ptr<const Model> Snapshot() const override { return model_; }
  uint64_t Generation() const override { return 1; }

 private:
  std::shared_ptr<const Model> model_;
};

}  // namespace autodetect
