#include "detect/trainer.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace autodetect {

namespace {

/// Depth LanguageStats::CompressToSketch{,Budget} builds sketches with.
constexpr size_t kSketchDepth = 4;

/// Counter bytes the co-occurrence store will actually occupy under the
/// sketch knobs: the exact dictionary when compression is off, otherwise
/// the power-of-two-width sketch CountMinSketch::FromMemoryBudget will
/// allocate — unless that sketch would not shrink the table, in which case
/// the language stays exact (sketching a tiny dictionary only loses
/// accuracy). A sketch must beat the exact dictionary on BOTH resident
/// counters and frozen-blob bytes (header + plane padding included) or the
/// language stays exact. An absolute per-language byte budget takes
/// precedence over the relative ratio.
size_t PlannedCoBytes(size_t co_bytes, double ratio, size_t sketch_budget_bytes) {
  size_t target;
  if (sketch_budget_bytes > 0) {
    target = sketch_budget_bytes;
  } else if (ratio < 1.0) {
    target = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(co_bytes) * ratio));
  } else {
    return co_bytes;
  }
  size_t width = CountMinSketch::WidthForBudget(target, kSketchDepth);
  size_t planned = width * kSketchDepth * sizeof(uint32_t);
  if (planned >= co_bytes ||
      CountMinSketch::FrozenBytes(width, kSketchDepth) >= co_bytes) {
    return co_bytes;
  }
  return planned;
}

/// True when the knobs call for compressing this language (the planned
/// sketch is strictly smaller than the exact dictionary).
bool ShouldSketch(const LanguageStats& stats, double ratio,
                  size_t sketch_budget_bytes) {
  size_t co_bytes = stats.CoMemoryBytes();
  return PlannedCoBytes(co_bytes, ratio, sketch_budget_bytes) < co_bytes;
}

}  // namespace

Result<TrainingPipeline> TrainingPipeline::Run(ColumnSource* source,
                                               TrainOptions options) {
  options.calibration.precision_target = options.precision_target;
  options.calibration.smoothing_factor = options.smoothing_factor;
  // options.supervision.smoothing_factor is intentionally NOT tied to the
  // detection smoothing factor — distant supervision prunes with unsmoothed
  // crude-G NPMI (see DistantSupervisionOptions::smoothing_factor).

  TrainingPipeline pipeline;
  MetricsRegistry* registry = OrDefaultRegistry(options.stats.metrics);

  // Stage 1: statistics for all candidate languages.
  {
    TraceSpan span(registry, "train.stage.stats_build_us");
    source->Reset();
    pipeline.stats_ = BuildCorpusStats(source, options.stats);
  }

  std::vector<int> candidate_ids = pipeline.stats_.LanguageIds();
  AD_CHECK(!candidate_ids.empty());
  pipeline.corpus_columns_ =
      pipeline.stats_.ForLanguage(candidate_ids[0]).num_columns();
  if (pipeline.corpus_columns_ == 0) {
    return Status::Invalid("training corpus is empty");
  }

  // Stage 2: distant supervision, using crude-G statistics. If crude G was
  // not among the candidates, build it on a dedicated pass.
  int crude_id = LanguageSpace::IdOf(LanguageSpace::CrudeG());
  CorpusStats crude_holder;
  const LanguageStats* crude_stats = nullptr;
  {
    TraceSpan span(registry, "train.stage.supervision_us");
    if (pipeline.stats_.Has(crude_id)) {
      crude_stats = &pipeline.stats_.ForLanguage(crude_id);
    } else {
      StatsBuilderOptions crude_opts = options.stats;
      crude_opts.language_ids = {crude_id};
      source->Reset();
      crude_holder = BuildCorpusStats(source, crude_opts);
      crude_stats = &crude_holder.ForLanguage(crude_id);
    }
    source->Reset();
    AD_ASSIGN_OR_RETURN(
        pipeline.training_set_,
        GenerateTrainingSet(source, *crude_stats, options.supervision));
  }

  // Stage 3: calibrate every candidate (parallel). The training set is
  // pre-keyed once under every candidate language via the shared-
  // tokenization kernel; per-language workers then score from keys alone
  // instead of re-generalizing every pair 144 times.
  pipeline.lang_ids_ = candidate_ids;
  pipeline.calibrations_.resize(candidate_ids.size());
  {
    TraceSpan span(registry, "train.stage.calibration_us");
    PreKeyedTrainingSet prekeyed(pipeline.training_set_, candidate_ids,
                                 options.stats.generalize_options);
    ThreadPool::ParallelFor(candidate_ids.size(), options.num_threads, [&](size_t i) {
      pipeline.calibrations_[i] =
          CalibrateLanguage(i, pipeline.stats_.ForLanguage(candidate_ids[i]),
                            prekeyed, options.calibration);
    });
  }

  pipeline.options_ = std::move(options);
  return pipeline;
}

Result<Model> TrainingPipeline::BuildModel(size_t memory_budget_bytes,
                                           double sketch_ratio) const {
  return BuildModel(memory_budget_bytes, sketch_ratio, /*sketch_budget_bytes=*/0);
}

Result<Model> TrainingPipeline::BuildModel(size_t memory_budget_bytes,
                                           double sketch_ratio,
                                           size_t sketch_budget_bytes) const {
  if (sketch_ratio <= 0.0 || sketch_ratio > 1.0) {
    return Status::Invalid("sketch_ratio must be in (0, 1]");
  }

  // Assemble selection candidates from usable calibrations. Candidates are
  // priced at their EXACT resident bytes even when sketch knobs are on:
  // sketching is an artifact-compression step applied to the chosen
  // ensemble, not a discount that lets the knapsack trade estimator
  // accuracy for extra languages. Pricing at sketched bytes would make the
  // selected language set a function of the compression knob, so an exact
  // model and its sketched sibling would no longer be comparable (and the
  // extra languages' sketch blobs routinely cost more than the compression
  // saves). Fixed ensemble, shrinking bytes — the shape of the paper's
  // Fig. 8(a) experiment.
  std::vector<LanguageCandidate> candidates;
  std::vector<size_t> candidate_to_pipeline;
  for (size_t i = 0; i < lang_ids_.size(); ++i) {
    const CalibrationResult& cal = calibrations_[i];
    if (!cal.has_threshold || cal.covered_count == 0) continue;
    LanguageCandidate c;
    c.lang_id = lang_ids_[i];
    c.size_bytes = stats_.ForLanguage(lang_ids_[i]).MemoryBytes();
    c.covered = cal.covered_negatives;
    candidates.push_back(std::move(c));
    candidate_to_pipeline.push_back(i);
  }
  if (candidates.empty()) {
    return Status::Invalid(
        "no language meets the precision target on the training set");
  }

  SelectionResult selection = SelectLanguagesGreedy(candidates, memory_budget_bytes);
  if (selection.selected.empty()) {
    return Status::CapacityExceeded(
        "memory budget too small for any calibrated language");
  }

  Model model;
  model.smoothing_factor = options_.smoothing_factor;
  model.precision_target = options_.precision_target;
  model.corpus_name = options_.corpus_name;
  model.trained_columns = corpus_columns_;

  for (size_t pick : selection.selected) {
    size_t pi = candidate_to_pipeline[pick];
    const CalibrationResult& cal = calibrations_[pi];
    ModelLanguage ml;
    ml.lang_id = lang_ids_[pi];
    ml.threshold = cal.threshold;
    ml.train_coverage = cal.covered_count;
    ml.curve = cal.curve;
    ml.stats = stats_.ForLanguage(ml.lang_id);  // copy, then maybe compress
    if (ShouldSketch(ml.stats, sketch_ratio, sketch_budget_bytes)) {
      const uint64_t seed = 0xadde7ec7 + static_cast<uint64_t>(ml.lang_id);
      if (sketch_budget_bytes > 0) {
        AD_RETURN_NOT_OK(ml.stats.CompressToSketchBudget(sketch_budget_bytes, seed));
      } else {
        AD_RETURN_NOT_OK(ml.stats.CompressToSketch(sketch_ratio, seed));
      }
    }
    model.languages.push_back(std::move(ml));
  }

  // Highest training coverage first: languages[0] is the BestOne baseline.
  std::sort(model.languages.begin(), model.languages.end(),
            [](const ModelLanguage& a, const ModelLanguage& b) {
              return a.train_coverage > b.train_coverage;
            });

  AD_LOG(Info) << "built model:\n" << model.Summary();
  return model;
}

Result<Model> TrainingPipeline::BuildModel() const {
  return BuildModel(options_.memory_budget_bytes, options_.sketch_ratio,
                    options_.sketch_budget_bytes);
}

void TrainingPipeline::RecalibrateInPlace(double smoothing_factor) {
  options_.smoothing_factor = smoothing_factor;
  options_.calibration.smoothing_factor = smoothing_factor;
  PreKeyedTrainingSet prekeyed(training_set_, lang_ids_,
                               options_.stats.generalize_options);
  ThreadPool::ParallelFor(lang_ids_.size(), options_.num_threads, [&](size_t i) {
    calibrations_[i] = CalibrateLanguage(i, stats_.ForLanguage(lang_ids_[i]),
                                         prekeyed, options_.calibration);
  });
}

namespace {
constexpr char kPipelineMagic[] = "ADPIPE1";

void SerializeBitset(const DynamicBitset& b, BinaryWriter* w) {
  w->WriteU64(b.size());
  w->WriteU64(b.words().size());
  for (uint64_t word : b.words()) w->WriteU64(word);
}

Result<DynamicBitset> DeserializeBitset(BinaryReader* r) {
  AD_ASSIGN_OR_RETURN(uint64_t bits, r->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t num_words, r->ReadU64());
  if (num_words != (bits + 63) / 64 || bits > (1ull << 34)) {
    return Status::Corruption("bitset shape mismatch");
  }
  std::vector<uint64_t> words(static_cast<size_t>(num_words));
  for (auto& word : words) {
    AD_ASSIGN_OR_RETURN(word, r->ReadU64());
  }
  return DynamicBitset::FromWords(static_cast<size_t>(bits), std::move(words));
}
}  // namespace

Status TrainingPipeline::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.WriteString(kPipelineMagic);
  w.WriteDouble(options_.precision_target);
  w.WriteDouble(options_.smoothing_factor);
  w.WriteDouble(options_.calibration.max_threshold);
  w.WriteString(options_.corpus_name);
  w.WriteU64(corpus_columns_);
  stats_.Serialize(&w);
  w.WriteU64(training_set_.positives.size());
  for (const auto& p : training_set_.positives) {
    w.WriteString(p.u);
    w.WriteString(p.v);
  }
  w.WriteU64(training_set_.negatives.size());
  for (const auto& p : training_set_.negatives) {
    w.WriteString(p.u);
    w.WriteString(p.v);
  }
  w.WriteU64(lang_ids_.size());
  for (size_t i = 0; i < lang_ids_.size(); ++i) {
    w.WriteU32(static_cast<uint32_t>(lang_ids_[i]));
    const CalibrationResult& cal = calibrations_[i];
    w.WriteU8(cal.has_threshold ? 1 : 0);
    w.WriteDouble(cal.threshold);
    w.WriteDouble(cal.precision_at_threshold);
    w.WriteU64(cal.covered_count);
    SerializeBitset(cal.covered_negatives, &w);
    cal.curve.Serialize(&w);
  }
  return w.status().WithContext("writing " + path);
}

Result<TrainingPipeline> TrainingPipeline::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader r(&in);
  AD_ASSIGN_OR_RETURN(std::string magic, r.ReadString(16));
  if (magic != kPipelineMagic) {
    return Status::Corruption("not an Auto-Detect pipeline checkpoint");
  }
  TrainingPipeline p;
  AD_ASSIGN_OR_RETURN(p.options_.precision_target, r.ReadDouble());
  AD_ASSIGN_OR_RETURN(p.options_.smoothing_factor, r.ReadDouble());
  AD_ASSIGN_OR_RETURN(p.options_.calibration.max_threshold, r.ReadDouble());
  p.options_.calibration.precision_target = p.options_.precision_target;
  p.options_.calibration.smoothing_factor = p.options_.smoothing_factor;
  AD_ASSIGN_OR_RETURN(p.options_.corpus_name, r.ReadString());
  AD_ASSIGN_OR_RETURN(p.corpus_columns_, r.ReadU64());
  AD_ASSIGN_OR_RETURN(p.stats_, CorpusStats::Deserialize(&r));
  AD_ASSIGN_OR_RETURN(uint64_t n_pos, r.ReadU64());
  if (n_pos > (1ull << 30)) return Status::Corruption("implausible positive count");
  p.training_set_.positives.reserve(static_cast<size_t>(n_pos));
  for (uint64_t i = 0; i < n_pos; ++i) {
    LabeledPair pair;
    pair.compatible = true;
    AD_ASSIGN_OR_RETURN(pair.u, r.ReadString());
    AD_ASSIGN_OR_RETURN(pair.v, r.ReadString());
    p.training_set_.positives.push_back(std::move(pair));
  }
  AD_ASSIGN_OR_RETURN(uint64_t n_neg, r.ReadU64());
  if (n_neg > (1ull << 30)) return Status::Corruption("implausible negative count");
  p.training_set_.negatives.reserve(static_cast<size_t>(n_neg));
  for (uint64_t i = 0; i < n_neg; ++i) {
    LabeledPair pair;
    pair.compatible = false;
    AD_ASSIGN_OR_RETURN(pair.u, r.ReadString());
    AD_ASSIGN_OR_RETURN(pair.v, r.ReadString());
    p.training_set_.negatives.push_back(std::move(pair));
  }
  AD_ASSIGN_OR_RETURN(uint64_t n_langs, r.ReadU64());
  if (n_langs > static_cast<uint64_t>(LanguageSpace::kNumLanguages)) {
    return Status::Corruption("implausible language count");
  }
  for (uint64_t i = 0; i < n_langs; ++i) {
    AD_ASSIGN_OR_RETURN(uint32_t id, r.ReadU32());
    if (id >= static_cast<uint32_t>(LanguageSpace::kNumLanguages)) {
      return Status::Corruption("language id out of range");
    }
    p.lang_ids_.push_back(static_cast<int>(id));
    CalibrationResult cal;
    AD_ASSIGN_OR_RETURN(uint8_t has, r.ReadU8());
    cal.has_threshold = has != 0;
    AD_ASSIGN_OR_RETURN(cal.threshold, r.ReadDouble());
    AD_ASSIGN_OR_RETURN(cal.precision_at_threshold, r.ReadDouble());
    AD_ASSIGN_OR_RETURN(cal.covered_count, r.ReadU64());
    AD_ASSIGN_OR_RETURN(cal.covered_negatives, DeserializeBitset(&r));
    AD_ASSIGN_OR_RETURN(cal.curve, PrecisionCurve::Deserialize(&r));
    p.calibrations_.push_back(std::move(cal));
  }
  return p;
}

Result<Model> TrainModel(ColumnSource* source, const TrainOptions& options) {
  AD_ASSIGN_OR_RETURN(TrainingPipeline pipeline,
                      TrainingPipeline::Run(source, options));
  return pipeline.BuildModel();
}

}  // namespace autodetect
