#include "detect/trainer.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace autodetect {

namespace {

/// Depth LanguageStats::CompressToSketch{,Budget} builds sketches with.
constexpr size_t kSketchDepth = 4;

/// Counter bytes the co-occurrence store will actually occupy under the
/// sketch knobs: the exact dictionary when compression is off, otherwise
/// the power-of-two-width sketch CountMinSketch::FromMemoryBudget will
/// allocate — unless that sketch would not shrink the table, in which case
/// the language stays exact (sketching a tiny dictionary only loses
/// accuracy). A sketch must beat the exact dictionary on BOTH resident
/// counters and frozen-blob bytes (header + plane padding included) or the
/// language stays exact. An absolute per-language byte budget takes
/// precedence over the relative ratio.
size_t PlannedCoBytes(size_t co_bytes, double ratio, size_t sketch_budget_bytes) {
  size_t target;
  if (sketch_budget_bytes > 0) {
    target = sketch_budget_bytes;
  } else if (ratio < 1.0) {
    target = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(co_bytes) * ratio));
  } else {
    return co_bytes;
  }
  size_t width = CountMinSketch::WidthForBudget(target, kSketchDepth);
  size_t planned = width * kSketchDepth * sizeof(uint32_t);
  if (planned >= co_bytes ||
      CountMinSketch::FrozenBytes(width, kSketchDepth) >= co_bytes) {
    return co_bytes;
  }
  return planned;
}

/// True when the knobs call for compressing this language (the planned
/// sketch is strictly smaller than the exact dictionary).
bool ShouldSketch(const LanguageStats& stats, double ratio,
                  size_t sketch_budget_bytes) {
  size_t co_bytes = stats.CoMemoryBytes();
  return PlannedCoBytes(co_bytes, ratio, sketch_budget_bytes) < co_bytes;
}

}  // namespace

TrainSession::TrainSession(TrainOptions options) : options_(std::move(options)) {
  options_.calibration.precision_target = options_.precision_target;
  options_.calibration.smoothing_factor = options_.smoothing_factor;
  // options_.supervision.smoothing_factor is intentionally NOT tied to the
  // detection smoothing factor — distant supervision prunes with unsmoothed
  // crude-G NPMI (see DistantSupervisionOptions::smoothing_factor).
}

Result<StatsShard> TrainSession::BuildShard(ColumnSource* partition,
                                            const TrainOptions& options,
                                            ShardProvenance provenance) {
  MetricsRegistry* registry = OrDefaultRegistry(options.stats.metrics);
  StatsShard shard;
  {
    TraceSpan span(registry, "train.stage.stats_build_us");
    partition->Reset();
    shard.stats = BuildCorpusStats(partition, options.stats);
  }
  shard.stats.Canonicalize();
  shard.options_digest = StatsOptionsDigest(options.stats);
  shard.provenance = std::move(provenance);

  const std::vector<int> ids = shard.stats.LanguageIds();
  AD_CHECK(!ids.empty());
  const uint64_t ingested = shard.stats.ForLanguage(ids[0]).num_columns();
  if (ingested == 0) return Status::Invalid("shard partition is empty");
  if (shard.provenance.column_end == shard.provenance.column_begin) {
    shard.provenance.column_end = shard.provenance.column_begin + ingested;
  }
  if (shard.provenance.num_columns() != ingested) {
    return Status::Invalid(StrFormat(
        "shard provenance declares %llu columns but the partition yielded %llu",
        static_cast<unsigned long long>(shard.provenance.num_columns()),
        static_cast<unsigned long long>(ingested)));
  }
  if (shard.provenance.total_columns < shard.provenance.column_end) {
    shard.provenance.total_columns = shard.provenance.column_end;
  }
  return shard;
}

Status TrainSession::AdoptStats() {
  std::vector<int> candidate_ids = stats_.LanguageIds();
  AD_CHECK(!candidate_ids.empty());
  corpus_columns_ = stats_.ForLanguage(candidate_ids[0]).num_columns();
  if (corpus_columns_ == 0) {
    return Status::Invalid("training corpus is empty");
  }
  has_stats_ = true;
  // Any prior supervision calibrated against the old counts.
  supervised_ = false;
  training_set_ = TrainingSet{};
  lang_ids_.clear();
  calibrations_.clear();
  return Status::OK();
}

Status TrainSession::BuildStats(ColumnSource* source) {
  MetricsRegistry* registry = OrDefaultRegistry(options_.stats.metrics);
  {
    TraceSpan span(registry, "train.stage.stats_build_us");
    source->Reset();
    stats_ = BuildCorpusStats(source, options_.stats);
  }
  stats_.Canonicalize();
  AD_RETURN_NOT_OK(AdoptStats());
  provenance_ = ShardProvenance{};
  provenance_.corpus_name = options_.corpus_name;
  provenance_.total_columns = corpus_columns_;
  provenance_.column_end = corpus_columns_;
  return Status::OK();
}

Status TrainSession::UseStats(StatsShard shard) {
  const uint64_t expected = StatsOptionsDigest(options_.stats);
  if (shard.options_digest != 0 && shard.options_digest != expected) {
    return Status::Invalid(StrFormat(
        "statistics were built under different options than this session's "
        "(digest %016llx, session %016llx)",
        static_cast<unsigned long long>(shard.options_digest),
        static_cast<unsigned long long>(expected)));
  }
  stats_ = std::move(shard.stats);
  // Adopted statistics may come straight from an artifact round-trip;
  // canonical layout is the session invariant every later stage relies on.
  stats_.Canonicalize();
  provenance_ = std::move(shard.provenance);
  return AdoptStats();
}

Status TrainSession::AddShards(std::vector<StatsShard> shards) {
  if (!has_stats_) {
    return Status::Invalid("AddShards needs adopted statistics (UseStats/BuildStats)");
  }
  StatsShard current;
  current.provenance = std::move(provenance_);
  current.options_digest = StatsOptionsDigest(options_.stats);
  current.stats = std::move(stats_);
  shards.push_back(std::move(current));
  AD_ASSIGN_OR_RETURN(StatsShard merged, MergeShards(std::move(shards)));
  stats_ = std::move(merged.stats);
  provenance_ = std::move(merged.provenance);
  return AdoptStats();
}

Status TrainSession::Supervise(ColumnSource* source) {
  if (!has_stats_) {
    return Status::Invalid("Supervise needs adopted statistics (UseStats/BuildStats)");
  }
  // First point-query stage: statistics adopted from artifacts (UseStats /
  // AddShards) arrive hash-deferred; supervision and calibration probe them.
  stats_.EnsureHashed();
  MetricsRegistry* registry = OrDefaultRegistry(options_.stats.metrics);

  // Distant supervision uses crude-G statistics. If crude G was not among
  // the candidates, build it on a dedicated pass.
  int crude_id = LanguageSpace::IdOf(LanguageSpace::CrudeG());
  CorpusStats crude_holder;
  const LanguageStats* crude_stats = nullptr;
  {
    TraceSpan span(registry, "train.stage.supervision_us");
    if (stats_.Has(crude_id)) {
      crude_stats = &stats_.ForLanguage(crude_id);
    } else {
      StatsBuilderOptions crude_opts = options_.stats;
      crude_opts.language_ids = {crude_id};
      source->Reset();
      crude_holder = BuildCorpusStats(source, crude_opts);
      crude_stats = &crude_holder.ForLanguage(crude_id);
    }
    source->Reset();
    AD_ASSIGN_OR_RETURN(
        training_set_,
        GenerateTrainingSet(source, *crude_stats, options_.supervision));
  }

  // Calibrate every candidate (parallel). The training set is pre-keyed
  // once under every candidate language via the shared-tokenization kernel;
  // per-language workers then score from keys alone instead of
  // re-generalizing every pair 144 times.
  lang_ids_ = stats_.LanguageIds();
  calibrations_.assign(lang_ids_.size(), CalibrationResult{});
  {
    TraceSpan span(registry, "train.stage.calibration_us");
    PreKeyedTrainingSet prekeyed(training_set_, lang_ids_,
                                 options_.stats.generalize_options);
    ThreadPool::ParallelFor(lang_ids_.size(), options_.num_threads, [&](size_t i) {
      calibrations_[i] = CalibrateLanguage(i, stats_.ForLanguage(lang_ids_[i]),
                                           prekeyed, options_.calibration);
    });
  }
  supervised_ = true;
  return Status::OK();
}

Result<Model> TrainSession::Finalize(size_t memory_budget_bytes,
                                     double sketch_ratio) const {
  return Finalize(memory_budget_bytes, sketch_ratio, /*sketch_budget_bytes=*/0);
}

Result<Model> TrainSession::Finalize(size_t memory_budget_bytes,
                                     double sketch_ratio,
                                     size_t sketch_budget_bytes) const {
  if (!supervised_) {
    return Status::Invalid("Finalize needs supervision (run Supervise first)");
  }
  if (sketch_ratio <= 0.0 || sketch_ratio > 1.0) {
    return Status::Invalid("sketch_ratio must be in (0, 1]");
  }

  // Assemble selection candidates from usable calibrations. Candidates are
  // priced at their EXACT resident bytes even when sketch knobs are on:
  // sketching is an artifact-compression step applied to the chosen
  // ensemble, not a discount that lets the knapsack trade estimator
  // accuracy for extra languages. Pricing at sketched bytes would make the
  // selected language set a function of the compression knob, so an exact
  // model and its sketched sibling would no longer be comparable (and the
  // extra languages' sketch blobs routinely cost more than the compression
  // saves). Fixed ensemble, shrinking bytes — the shape of the paper's
  // Fig. 8(a) experiment.
  std::vector<LanguageCandidate> candidates;
  std::vector<size_t> candidate_to_session;
  for (size_t i = 0; i < lang_ids_.size(); ++i) {
    const CalibrationResult& cal = calibrations_[i];
    if (!cal.has_threshold || cal.covered_count == 0) continue;
    LanguageCandidate c;
    c.lang_id = lang_ids_[i];
    c.size_bytes = stats_.ForLanguage(lang_ids_[i]).MemoryBytes();
    c.covered = cal.covered_negatives;
    candidates.push_back(std::move(c));
    candidate_to_session.push_back(i);
  }
  if (candidates.empty()) {
    return Status::Invalid(
        "no language meets the precision target on the training set");
  }

  SelectionResult selection = SelectLanguagesGreedy(candidates, memory_budget_bytes);
  if (selection.selected.empty()) {
    return Status::CapacityExceeded(
        "memory budget too small for any calibrated language");
  }

  Model model;
  model.smoothing_factor = options_.smoothing_factor;
  model.precision_target = options_.precision_target;
  model.corpus_name = options_.corpus_name;
  model.trained_columns = corpus_columns_;

  for (size_t pick : selection.selected) {
    size_t pi = candidate_to_session[pick];
    const CalibrationResult& cal = calibrations_[pi];
    ModelLanguage ml;
    ml.lang_id = lang_ids_[pi];
    ml.threshold = cal.threshold;
    ml.train_coverage = cal.covered_count;
    ml.curve = cal.curve;
    ml.stats = stats_.ForLanguage(ml.lang_id);  // copy, then maybe compress
    if (ShouldSketch(ml.stats, sketch_ratio, sketch_budget_bytes)) {
      const uint64_t seed = 0xadde7ec7 + static_cast<uint64_t>(ml.lang_id);
      if (sketch_budget_bytes > 0) {
        AD_RETURN_NOT_OK(ml.stats.CompressToSketchBudget(sketch_budget_bytes, seed));
      } else {
        AD_RETURN_NOT_OK(ml.stats.CompressToSketch(sketch_ratio, seed));
      }
    }
    model.languages.push_back(std::move(ml));
  }

  // Highest training coverage first: languages[0] is the BestOne baseline.
  std::sort(model.languages.begin(), model.languages.end(),
            [](const ModelLanguage& a, const ModelLanguage& b) {
              return a.train_coverage > b.train_coverage;
            });

  AD_LOG(Info) << "built model:\n" << model.Summary();
  return model;
}

Result<Model> TrainSession::Finalize() const {
  return Finalize(options_.memory_budget_bytes, options_.sketch_ratio,
                  options_.sketch_budget_bytes);
}

void TrainSession::RecalibrateInPlace(double smoothing_factor) {
  options_.smoothing_factor = smoothing_factor;
  options_.calibration.smoothing_factor = smoothing_factor;
  PreKeyedTrainingSet prekeyed(training_set_, lang_ids_,
                               options_.stats.generalize_options);
  ThreadPool::ParallelFor(lang_ids_.size(), options_.num_threads, [&](size_t i) {
    calibrations_[i] = CalibrateLanguage(i, stats_.ForLanguage(lang_ids_[i]),
                                         prekeyed, options_.calibration);
  });
}

namespace {
/// Version 2 appends the shard provenance; version 1 checkpoints predate
/// sharded training and are rejected with an expected-vs-found error
/// rather than half-read.
constexpr char kSessionMagic[] = "ADPIPE2";
constexpr char kSessionMagicV1[] = "ADPIPE1";

void SerializeBitset(const DynamicBitset& b, BinaryWriter* w) {
  w->WriteU64(b.size());
  w->WriteU64(b.words().size());
  for (uint64_t word : b.words()) w->WriteU64(word);
}

Result<DynamicBitset> DeserializeBitset(BinaryReader* r) {
  AD_ASSIGN_OR_RETURN(uint64_t bits, r->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t num_words, r->ReadU64());
  if (num_words != (bits + 63) / 64 || bits > (1ull << 34)) {
    return Status::Corruption("bitset shape mismatch");
  }
  std::vector<uint64_t> words(static_cast<size_t>(num_words));
  for (auto& word : words) {
    AD_ASSIGN_OR_RETURN(word, r->ReadU64());
  }
  return DynamicBitset::FromWords(static_cast<size_t>(bits), std::move(words));
}
}  // namespace

Status TrainSession::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.WriteString(kSessionMagic);
  w.WriteDouble(options_.precision_target);
  w.WriteDouble(options_.smoothing_factor);
  w.WriteDouble(options_.calibration.max_threshold);
  w.WriteString(options_.corpus_name);
  w.WriteU64(corpus_columns_);
  w.WriteString(provenance_.corpus_name);
  w.WriteString(provenance_.profile);
  w.WriteU64(provenance_.seed);
  w.WriteU64(provenance_.total_columns);
  w.WriteU64(provenance_.column_begin);
  w.WriteU64(provenance_.column_end);
  stats_.Serialize(&w);
  w.WriteU64(training_set_.positives.size());
  for (const auto& p : training_set_.positives) {
    w.WriteString(p.u);
    w.WriteString(p.v);
  }
  w.WriteU64(training_set_.negatives.size());
  for (const auto& p : training_set_.negatives) {
    w.WriteString(p.u);
    w.WriteString(p.v);
  }
  w.WriteU64(lang_ids_.size());
  for (size_t i = 0; i < lang_ids_.size(); ++i) {
    w.WriteU32(static_cast<uint32_t>(lang_ids_[i]));
    const CalibrationResult& cal = calibrations_[i];
    w.WriteU8(cal.has_threshold ? 1 : 0);
    w.WriteDouble(cal.threshold);
    w.WriteDouble(cal.precision_at_threshold);
    w.WriteU64(cal.covered_count);
    SerializeBitset(cal.covered_negatives, &w);
    cal.curve.Serialize(&w);
  }
  return w.status().WithContext("writing " + path);
}

Result<TrainSession> TrainSession::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader r(&in);
  AD_ASSIGN_OR_RETURN(std::string magic, r.ReadString(16));
  if (magic == kSessionMagicV1) {
    return Status::Corruption(StrFormat(
        "%s: header section: unsupported checkpoint version: expected %s, "
        "found %s (retrain to regenerate)",
        path.c_str(), kSessionMagic, kSessionMagicV1));
  }
  if (magic != kSessionMagic) {
    return Status::Corruption("not an Auto-Detect training checkpoint: " + path);
  }
  TrainSession s;
  AD_ASSIGN_OR_RETURN(s.options_.precision_target, r.ReadDouble());
  AD_ASSIGN_OR_RETURN(s.options_.smoothing_factor, r.ReadDouble());
  AD_ASSIGN_OR_RETURN(s.options_.calibration.max_threshold, r.ReadDouble());
  s.options_.calibration.precision_target = s.options_.precision_target;
  s.options_.calibration.smoothing_factor = s.options_.smoothing_factor;
  AD_ASSIGN_OR_RETURN(s.options_.corpus_name, r.ReadString());
  AD_ASSIGN_OR_RETURN(s.corpus_columns_, r.ReadU64());
  AD_ASSIGN_OR_RETURN(s.provenance_.corpus_name, r.ReadString());
  AD_ASSIGN_OR_RETURN(s.provenance_.profile, r.ReadString());
  AD_ASSIGN_OR_RETURN(s.provenance_.seed, r.ReadU64());
  AD_ASSIGN_OR_RETURN(s.provenance_.total_columns, r.ReadU64());
  AD_ASSIGN_OR_RETURN(s.provenance_.column_begin, r.ReadU64());
  AD_ASSIGN_OR_RETURN(s.provenance_.column_end, r.ReadU64());
  AD_ASSIGN_OR_RETURN(s.stats_, CorpusStats::Deserialize(&r));
  // A loaded checkpoint may already be supervised, making Finalize (const)
  // legal immediately — materialize the hash-deferred dictionaries now.
  s.stats_.EnsureHashed();
  s.stats_.Canonicalize();
  AD_ASSIGN_OR_RETURN(uint64_t n_pos, r.ReadU64());
  if (n_pos > (1ull << 30)) return Status::Corruption("implausible positive count");
  s.training_set_.positives.reserve(static_cast<size_t>(n_pos));
  for (uint64_t i = 0; i < n_pos; ++i) {
    LabeledPair pair;
    pair.compatible = true;
    AD_ASSIGN_OR_RETURN(pair.u, r.ReadString());
    AD_ASSIGN_OR_RETURN(pair.v, r.ReadString());
    s.training_set_.positives.push_back(std::move(pair));
  }
  AD_ASSIGN_OR_RETURN(uint64_t n_neg, r.ReadU64());
  if (n_neg > (1ull << 30)) return Status::Corruption("implausible negative count");
  s.training_set_.negatives.reserve(static_cast<size_t>(n_neg));
  for (uint64_t i = 0; i < n_neg; ++i) {
    LabeledPair pair;
    pair.compatible = false;
    AD_ASSIGN_OR_RETURN(pair.u, r.ReadString());
    AD_ASSIGN_OR_RETURN(pair.v, r.ReadString());
    s.training_set_.negatives.push_back(std::move(pair));
  }
  AD_ASSIGN_OR_RETURN(uint64_t n_langs, r.ReadU64());
  if (n_langs > static_cast<uint64_t>(LanguageSpace::kNumLanguages)) {
    return Status::Corruption("implausible language count");
  }
  for (uint64_t i = 0; i < n_langs; ++i) {
    AD_ASSIGN_OR_RETURN(uint32_t id, r.ReadU32());
    if (id >= static_cast<uint32_t>(LanguageSpace::kNumLanguages)) {
      return Status::Corruption("language id out of range");
    }
    s.lang_ids_.push_back(static_cast<int>(id));
    CalibrationResult cal;
    AD_ASSIGN_OR_RETURN(uint8_t has, r.ReadU8());
    cal.has_threshold = has != 0;
    AD_ASSIGN_OR_RETURN(cal.threshold, r.ReadDouble());
    AD_ASSIGN_OR_RETURN(cal.precision_at_threshold, r.ReadDouble());
    AD_ASSIGN_OR_RETURN(cal.covered_count, r.ReadU64());
    AD_ASSIGN_OR_RETURN(cal.covered_negatives, DeserializeBitset(&r));
    AD_ASSIGN_OR_RETURN(cal.curve, PrecisionCurve::Deserialize(&r));
    s.calibrations_.push_back(std::move(cal));
  }
  s.has_stats_ = true;
  s.supervised_ = true;
  return s;
}

Result<Model> TrainModel(ColumnSource* source, const TrainOptions& options) {
  TrainSession session(options);
  AD_RETURN_NOT_OK(session.BuildStats(source));
  AD_RETURN_NOT_OK(session.Supervise(source));
  return session.Finalize();
}

}  // namespace autodetect
