#include "train/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/logging.h"
#include "stats/npmi.h"
#include "text/pattern.h"
#include "text/run_tokenizer.h"

namespace autodetect {

double PrecisionCurve::PrecisionAt(double score) const {
  const Point* begin = data();
  const Point* end = begin + size();
  if (begin == end) return 0.0;
  if (score <= begin->score) return begin->precision;
  // Largest point with point.score <= score.
  const Point* it = std::upper_bound(
      begin, end, score, [](double s, const Point& p) { return s < p.score; });
  return std::prev(it)->precision;
}

void PrecisionCurve::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(size());
  const Point* p = data();
  for (size_t i = 0; i < size(); ++i) {
    writer->WriteDouble(p[i].score);
    writer->WriteDouble(p[i].precision);
  }
}

void PrecisionCurve::AppendFrozen(std::string* out) const {
  uint64_t n = size();
  out->append(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) out->append(reinterpret_cast<const char*>(data()), n * sizeof(Point));
}

Result<PrecisionCurve> PrecisionCurve::FromFrozen(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (reinterpret_cast<uintptr_t>(p) % 8 != 0) {
    return Status::Corruption("frozen curve blob is not 8-byte aligned");
  }
  if (len < 8) {
    return Status::IOError("truncated frozen curve: count needs 8 bytes, got " +
                           std::to_string(len));
  }
  uint64_t n;
  std::memcpy(&n, p, 8);
  if (n > (1ULL << 24)) return Status::Corruption("implausible curve size");
  if (len - 8 != n * sizeof(Point)) {
    return Status::Corruption("frozen curve length mismatch: count " +
                              std::to_string(n) + " vs " +
                              std::to_string(len - 8) + " payload bytes");
  }
  PrecisionCurve curve;
  curve.view_size_ = static_cast<size_t>(n);
  curve.view_data_ = n == 0 ? nullptr : reinterpret_cast<const Point*>(p + 8);
  return curve;
}

Result<PrecisionCurve> PrecisionCurve::Deserialize(BinaryReader* reader) {
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > (1ULL << 24)) return Status::Corruption("implausible curve size");
  std::vector<PrecisionCurve::Point> points;
  points.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    PrecisionCurve::Point p;
    AD_ASSIGN_OR_RETURN(p.score, reader->ReadDouble());
    AD_ASSIGN_OR_RETURN(p.precision, reader->ReadDouble());
    points.push_back(p);
  }
  return PrecisionCurve(std::move(points));
}

std::vector<double> ScoreTrainingSet(const GeneralizationLanguage& lang,
                                     const LanguageStats& stats,
                                     const TrainingSet& train,
                                     double smoothing_factor) {
  NpmiScorer scorer(&stats, smoothing_factor);
  std::vector<double> scores;
  scores.reserve(train.size());
  auto score_pair = [&](const LabeledPair& p) {
    return scorer.Score(GeneralizeToKey(p.u, lang), GeneralizeToKey(p.v, lang));
  };
  for (const auto& p : train.positives) scores.push_back(score_pair(p));
  for (const auto& p : train.negatives) scores.push_back(score_pair(p));
  return scores;
}

PreKeyedTrainingSet::PreKeyedTrainingSet(const TrainingSet& train,
                                         const std::vector<int>& lang_ids,
                                         const GeneralizeOptions& options)
    : lang_ids_(lang_ids) {
  // Intern distinct values: training pairs reuse values heavily (splice
  // negatives pair one donor against many hosts), so keying per distinct
  // value rather than per pair side is itself a large saving.
  std::unordered_map<std::string_view, uint32_t> index;
  std::vector<std::string_view> distinct;
  auto intern = [&](const std::string& v) {
    auto [it, inserted] =
        index.emplace(v, static_cast<uint32_t>(distinct.size()));
    if (inserted) distinct.push_back(v);
    return it->second;
  };
  positives_.reserve(train.positives.size());
  for (const auto& p : train.positives) {
    positives_.emplace_back(intern(p.u), intern(p.v));
  }
  negatives_.reserve(train.negatives.size());
  for (const auto& p : train.negatives) {
    negatives_.emplace_back(intern(p.u), intern(p.v));
  }

  MultiGeneralizer multi = MultiGeneralizer::ForIds(lang_ids_, options);
  keys_.resize(distinct.size() * lang_ids_.size());
  std::vector<ClassRun> runs;
  for (size_t v = 0; v < distinct.size(); ++v) {
    uint8_t mask = TokenizeRuns(distinct[v], options, &runs);
    multi.KeysFor(RunSpan(runs), mask, keys_.data() + v * lang_ids_.size());
  }
}

std::vector<double> PreKeyedTrainingSet::Score(size_t lang_pos,
                                               const LanguageStats& stats,
                                               double smoothing_factor) const {
  AD_CHECK(lang_pos < lang_ids_.size());
  NpmiScorer scorer(&stats, smoothing_factor);
  std::vector<double> scores;
  scores.reserve(size());
  for (const auto& [u, v] : positives_) {
    scores.push_back(scorer.Score(Key(u, lang_pos), Key(v, lang_pos)));
  }
  for (const auto& [u, v] : negatives_) {
    scores.push_back(scorer.Score(Key(u, lang_pos), Key(v, lang_pos)));
  }
  return scores;
}

namespace {

/// The Eq. 8 threshold walk over pre-computed scores (ordered positives
/// then negatives) — shared by the string-based and pre-keyed entry points.
CalibrationResult CalibrateFromScores(const std::vector<double>& scores,
                                      size_t num_positives, size_t num_negatives,
                                      const CalibrationOptions& options) {
  CalibrationResult result;
  result.covered_negatives = DynamicBitset(num_negatives);
  if (scores.empty()) return result;

  struct Scored {
    double score;
    bool is_negative;
    uint32_t neg_index;  // valid when is_negative
  };
  std::vector<Scored> items;
  items.reserve(scores.size());
  for (size_t i = 0; i < num_positives; ++i) {
    items.push_back(Scored{scores[i], false, 0});
  }
  for (size_t i = 0; i < num_negatives; ++i) {
    items.push_back(Scored{scores[num_positives + i], true,
                           static_cast<uint32_t>(i)});
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Scored& a, const Scored& b) { return a.score < b.score; });

  // Walk prefixes grouped by tied scores. A prefix is "valid" when every
  // group boundary so far had precision >= P; θ_k is the last valid
  // boundary's score (Eq. 8).
  size_t negatives_so_far = 0;
  size_t total_so_far = 0;
  size_t valid_prefix_end = 0;  // item count of the best valid prefix
  double valid_threshold = -2.0;
  double valid_precision = 0.0;
  bool still_valid = true;

  std::vector<PrecisionCurve::Point> curve_points;

  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].score == items[i].score) ++j;
    for (size_t k = i; k < j; ++k) negatives_so_far += items[k].is_negative ? 1 : 0;
    total_so_far = j;
    double precision =
        static_cast<double>(negatives_so_far) / static_cast<double>(total_so_far);
    // The stored curve uses a Laplace-smoothed estimate: it never saturates
    // at exactly 1.0, so deeper (better-supported) prefixes rank above
    // shallow ones and detection-time confidences stay discriminative.
    double smoothed = (static_cast<double>(negatives_so_far) + 0.5) /
                      (static_cast<double>(total_so_far) + 1.0);
    curve_points.push_back(PrecisionCurve::Point{items[i].score, smoothed});
    if (still_valid && items[i].score > options.max_threshold) {
      still_valid = false;  // θ_k may not exceed the semantic cap
    }
    if (still_valid) {
      if (precision >= options.precision_target) {
        valid_prefix_end = j;
        valid_threshold = items[i].score;
        valid_precision = precision;
      } else {
        still_valid = false;  // Eq. 8: all θ' <= θ_k must satisfy P
      }
    }
    i = j;
  }

  if (valid_prefix_end > 0) {
    result.has_threshold = true;
    result.threshold = valid_threshold;
    result.precision_at_threshold = valid_precision;
    for (size_t k = 0; k < valid_prefix_end; ++k) {
      if (items[k].is_negative) {
        result.covered_negatives.Set(items[k].neg_index);
        ++result.covered_count;
      }
    }
  }

  // Downsample the curve for storage, always keeping first and last points.
  if (curve_points.size() > options.max_curve_points) {
    std::vector<PrecisionCurve::Point> sampled;
    sampled.reserve(options.max_curve_points);
    double stride = static_cast<double>(curve_points.size() - 1) /
                    static_cast<double>(options.max_curve_points - 1);
    for (size_t k = 0; k < options.max_curve_points; ++k) {
      sampled.push_back(curve_points[static_cast<size_t>(std::round(k * stride))]);
    }
    curve_points = std::move(sampled);
  }
  result.curve = PrecisionCurve(std::move(curve_points));
  return result;
}

}  // namespace

CalibrationResult CalibrateLanguage(const GeneralizationLanguage& lang,
                                    const LanguageStats& stats,
                                    const TrainingSet& train,
                                    const CalibrationOptions& options) {
  std::vector<double> scores =
      ScoreTrainingSet(lang, stats, train, options.smoothing_factor);
  return CalibrateFromScores(scores, train.positives.size(),
                             train.negatives.size(), options);
}

CalibrationResult CalibrateLanguage(size_t lang_pos, const LanguageStats& stats,
                                    const PreKeyedTrainingSet& train,
                                    const CalibrationOptions& options) {
  std::vector<double> scores =
      train.Score(lang_pos, stats, options.smoothing_factor);
  return CalibrateFromScores(scores, train.num_positives(),
                             train.num_negatives(), options);
}

}  // namespace autodetect
