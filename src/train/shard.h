#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "stats/stats_builder.h"

/// \file shard.h
/// Statistics shards: first-class, checksummed training artifacts. Auto-
/// Detect's corpus statistics are pure additive counts (paper Sec. 2.1 —
/// pattern marginals c(p) and co-occurrence counts c(p1,p2) feeding NPMI),
/// so a corpus can be partitioned across map-style workers, each building a
/// `CorpusStats` over its own column range, and a reducer can merge the
/// partial counts exactly. The ADSHARD1 file holds one such partition:
///
///   magic "ADSHARD1" | u32 version | u32 endian marker | u64 alignment |
///   u64 file_size | (offset, length, xxhash64) for META and DATA |
///   zero pad to `alignment` | META | pad | DATA
///
/// the same page-aligned, XXH64-per-section skeleton as ADMODEL2. META is
/// the provenance + options digest (portable serde); DATA is the
/// CorpusStats serialization. Loads fail closed: truncation is IOError,
/// everything else (bad magic, wrong version, checksum mismatch) is
/// Corruption, always naming the file and section.
///
/// Determinism contract: `MergeShards` produces bit-identical statistics
/// for ANY order of the same input shards, and those statistics are
/// bit-identical to a one-shot `BuildCorpusStats` pass over the whole
/// corpus. Both legs lean on canonical dictionary layout
/// (FlatMap64::Canonicalize): merging is content-additive, and
/// canonicalization erases the accumulation history from the bytes.

namespace autodetect {

/// \brief Identity of the corpus slice a shard was built over. For the
/// synthetic substrate (profile + seed) this is enough to reconstruct the
/// column stream for supervision; external corpora leave `profile` empty
/// and supply their own source at finalize time.
struct ShardProvenance {
  std::string corpus_name;
  /// Synthetic corpus profile name (WEB, WIKI, ...); "" = external corpus.
  std::string profile;
  uint64_t seed = 0;
  /// Columns in the full corpus this shard partitions.
  uint64_t total_columns = 0;
  /// This shard's half-open column range [column_begin, column_end).
  uint64_t column_begin = 0;
  uint64_t column_end = 0;

  uint64_t num_columns() const { return column_end - column_begin; }
};

/// \brief One partition's statistics plus everything needed to check that
/// two shards are mergeable: the corpus identity and a digest of the
/// statistics-builder options they were built under.
struct StatsShard {
  ShardProvenance provenance;
  /// StatsOptionsDigest of the builder options; shards built under
  /// different options must never merge (their counts are incomparable).
  uint64_t options_digest = 0;
  CorpusStats stats;
};

/// \brief Order-independent digest of the options that shape statistics
/// content: the resolved candidate-language set, the per-column distinct
/// caps and the generalization options. Threading/batching knobs are
/// excluded — they do not change the counts.
uint64_t StatsOptionsDigest(const StatsBuilderOptions& options);

/// \brief Writes `shard` as an ADSHARD1 file (see file comment for layout).
Status WriteShard(const std::string& path, const StatsShard& shard);

/// \brief Reads and validates an ADSHARD1 file. Fail-closed: checksums are
/// verified before any byte is interpreted, and every error names `path`
/// and the offending section. The returned statistics are canonicalized.
Result<StatsShard> ReadShard(const std::string& path);

/// \brief The deterministic reducer: merges shards of one corpus into a
/// single shard covering their combined range. Requirements, all checked:
/// at least one shard, equal options digests, equal corpus identity
/// (corpus_name/profile/seed), equal language sets, and column ranges that
/// are pairwise disjoint and gap-free (they must tile one contiguous
/// range). `total_columns` may differ — a grown corpus's new shards carry
/// the new total; the merge keeps the maximum. The output is canonicalized,
/// so ANY input order yields bit-identical statistics.
Result<StatsShard> MergeShards(std::vector<StatsShard> shards);

/// \brief Convenience: ReadShard each path, then MergeShards.
Result<StatsShard> MergeShardFiles(const std::vector<std::string>& paths);

}  // namespace autodetect
