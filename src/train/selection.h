#pragma once

#include <cstddef>
#include <vector>

#include "common/bitset.h"

/// \file selection.h
/// Language-subset selection under a memory budget (paper Definition 5,
/// ST aggregation). The problem is budgeted maximum coverage — NP-hard
/// (paper Theorem 2) — solved by the greedy of Algorithm 1, which carries a
/// 1/2·(1−1/e) approximation guarantee (Lemma 3): pick by marginal coverage
/// per byte, then compare against the best affordable singleton and return
/// the better of the two. An exhaustive solver is provided for small
/// instances (tests verify the greedy against it).

namespace autodetect {

/// \brief One calibrated candidate: its memory cost and which training
/// negatives it covers at its threshold θ_k.
struct LanguageCandidate {
  int lang_id = -1;
  size_t size_bytes = 0;
  DynamicBitset covered;  ///< over T− indices (H_k^-)
};

struct SelectionResult {
  /// Indices into the candidates vector, in pick order.
  std::vector<size_t> selected;
  size_t total_bytes = 0;
  size_t covered_count = 0;
  /// True when the best-singleton fallback of Algorithm 1 (lines 8-12) won.
  bool singleton_fallback = false;
};

/// \brief Algorithm 1. Candidates with zero coverage are never picked.
SelectionResult SelectLanguagesGreedy(const std::vector<LanguageCandidate>& candidates,
                                      size_t memory_budget_bytes);

/// \brief Exact optimum by subset enumeration; requires
/// candidates.size() <= 24. For tests and small ablations only.
SelectionResult SelectLanguagesExhaustive(
    const std::vector<LanguageCandidate>& candidates, size_t memory_budget_bytes);

// ---------------------------------------------------------------------------
// DT aggregation (paper Definition 4) — extension.
//
// The paper formalizes dynamic-threshold aggregation, proves it NP-hard and
// hard to approximate (Theorem 1), and falls back to ST. This greedy
// heuristic implements DT anyway for the ablation: candidates are
// (language, threshold) pairs; each step picks the pair with the best
// marginal covered-negatives per byte whose addition keeps the *global*
// union precision above the target. No approximation guarantee exists (per
// Theorem 1); it is evaluated empirically against ST.

/// Per-language training scores handed to the DT optimizer.
struct DtSelectionInput {
  int lang_id = -1;
  size_t size_bytes = 0;
  /// Score of every T− / T+ pair under this language (index-aligned across
  /// inputs).
  std::vector<double> negative_scores;
  std::vector<double> positive_scores;
};

struct DtSelectionResult {
  /// Selected languages with their individually chosen thresholds.
  std::vector<std::pair<int, double>> selected;  // (lang_id, theta)
  size_t total_bytes = 0;
  size_t covered_negatives = 0;
  size_t covered_positives = 0;  ///< false positives of the union
  double precision = 0.0;
};

struct DtSelectionOptions {
  size_t memory_budget_bytes = 0;
  double precision_target = 0.95;
  /// Candidate thresholds per language = this many negative-score quantiles
  /// (clamped to < 0).
  size_t threshold_grid = 8;
};

/// \brief Greedy heuristic for Definition 4.
DtSelectionResult SelectLanguagesDT(const std::vector<DtSelectionInput>& inputs,
                                    const DtSelectionOptions& options);

}  // namespace autodetect
