#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/column_source.h"
#include "stats/language_stats.h"
#include "text/language.h"

/// \file distant_supervision.h
/// Automatic construction of labeled training pairs T = T+ ∪ T− (paper
/// Sec. 3.1 and Appendix F). No human labels anywhere:
///
///  * A crude generalization G (digits→\D, upper→\U, lower→\l, symbols kept)
///    is used to score pairwise compatibility of corpus columns; columns
///    whose value pairs all score above a threshold form the verified-clean
///    pool C+.
///  * T+ — compatible pairs — are sampled from within single C+ columns.
///  * T− — incompatible pairs — are formed by splicing a value u from one
///    C+ column into a different C+ column C2 and pairing u with v ∈ C2,
///    pruning pairs that are coincidentally compatible
///    (NPMI(G(u), G(v)) >= prune threshold).

namespace autodetect {

/// One labeled value pair. `compatible == false` means the pair is a
/// synthesized error (member of T−).
struct LabeledPair {
  std::string u;
  std::string v;
  bool compatible;
};

struct TrainingSet {
  std::vector<LabeledPair> positives;  ///< T+
  std::vector<LabeledPair> negatives;  ///< T−

  size_t size() const { return positives.size() + negatives.size(); }
};

struct DistantSupervisionOptions {
  size_t target_positives = 25000;
  size_t target_negatives = 25000;
  /// Min pairwise NPMI under G for a column to join C+ (paper: manually
  /// tuned to 0, chosen so almost all selected columns are truly compatible).
  double compatible_column_threshold = 0.0;
  /// Negative pairs with NPMI(G(u),G(v)) >= this are pruned as possibly
  /// compatible (paper: -0.3).
  double negative_prune_threshold = -0.3;
  /// Smoothing for the crude G scoring. Deliberately 0 (unsmoothed), unlike
  /// detection-time scoring: Jelinek-Mercer smoothing floors the NPMI of
  /// never-co-occurring common patterns around -0.2..-0.33, which would put
  /// every candidate negative right at the -0.3 prune threshold and discard
  /// exactly the training signal we need. Unsmoothed, "never co-occur" is
  /// exactly -1 and the paper's thresholds behave as intended.
  double smoothing_factor = 0.0;
  /// Fraction of T+ drawn specifically from pairs whose *crude patterns
  /// differ* (e.g. "99" with "1.99", "999" with "1,000"). The paper's T+ is
  /// sampled uniformly from 100M+ pairs, which at that scale contains
  /// plenty of such borderline-compatible pairs; at our reduced scale a
  /// uniform sample would miss them, calibrated thresholds would creep up
  /// to 0, and format-tolerant compatibility (the paper's Col-1/Col-2
  /// motivation) would be lost. Oversampling restores the constraint.
  double diverse_positive_fraction = 0.5;
  /// Pairs sampled per column when verifying compatibility.
  size_t compat_check_pairs = 16;
  /// Cap of distinct values kept per pooled column.
  size_t max_values_per_column = 12;
  /// Reservoir size of the C+ pool.
  size_t max_pool_columns = 50000;
  uint64_t seed = 7;
};

/// \brief Builds T from a (re-playable) corpus stream using pre-built crude
/// statistics for LanguageSpace::CrudeG(). Deterministic given options.
Result<TrainingSet> GenerateTrainingSet(ColumnSource* source,
                                        const LanguageStats& crude_stats,
                                        const DistantSupervisionOptions& options);

}  // namespace autodetect
