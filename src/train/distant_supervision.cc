#include "train/distant_supervision.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "stats/npmi.h"
#include "stats/stats_builder.h"
#include "text/pattern.h"

namespace autodetect {

namespace {

/// A pooled verified-compatible column: its distinct values and their crude
/// pattern keys.
struct PooledColumn {
  std::vector<std::string> values;
  std::vector<uint64_t> crude_keys;
  /// Per value: the subsequence of non-alphanumeric characters ("1,234.5"
  /// -> ",."). Pairs differing here are format-diverse positives — the most
  /// valuable kind, because they pin down thresholds of symbol-sensitive
  /// languages (the "99"/"1.99", "999"/"1,000" compatibility classes).
  std::vector<std::string> symbol_signatures;
};

std::string SymbolSignature(const std::string& v) {
  std::string sig;
  for (char c : v) {
    bool alnum = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                 (c >= 'A' && c <= 'Z');
    if (!alnum) sig.push_back(c);
  }
  return sig;
}

}  // namespace

Result<TrainingSet> GenerateTrainingSet(ColumnSource* source,
                                        const LanguageStats& crude_stats,
                                        const DistantSupervisionOptions& options) {
  if (options.target_positives == 0 && options.target_negatives == 0) {
    return Status::Invalid("no training pairs requested");
  }
  const GeneralizationLanguage crude = LanguageSpace::CrudeG();
  NpmiScorer scorer(&crude_stats, options.smoothing_factor);
  Pcg32 rng(options.seed);

  // Pass 1: collect the verified-compatible pool C+ (reservoir sampled).
  std::vector<PooledColumn> pool;
  pool.reserve(std::min<size_t>(options.max_pool_columns, 4096));
  size_t compatible_seen = 0;

  source->Reset();
  Column column;
  while (source->Next(&column)) {
    std::vector<std::string> distinct =
        DistinctValuesForStats(column.values, options.max_values_per_column);
    if (distinct.size() < 2) continue;

    std::vector<uint64_t> keys;
    keys.reserve(distinct.size());
    for (const auto& v : distinct) keys.push_back(GeneralizeToKey(v, crude));

    // Verify pairwise compatibility on a sample of pairs.
    bool compatible = true;
    size_t checks = 0;
    for (size_t i = 0; i < keys.size() && compatible; ++i) {
      for (size_t j = i + 1; j < keys.size(); ++j) {
        if (checks++ >= options.compat_check_pairs) break;
        if (scorer.Score(keys[i], keys[j]) < options.compatible_column_threshold) {
          compatible = false;
          break;
        }
      }
    }
    if (!compatible) continue;

    ++compatible_seen;
    std::vector<std::string> signatures;
    signatures.reserve(distinct.size());
    for (const auto& v : distinct) signatures.push_back(SymbolSignature(v));
    PooledColumn pooled{std::move(distinct), std::move(keys), std::move(signatures)};
    if (pool.size() < options.max_pool_columns) {
      pool.push_back(std::move(pooled));
    } else {
      // Reservoir replacement keeps the pool an unbiased sample of C+.
      size_t idx = static_cast<size_t>(rng.NextU64() % compatible_seen);
      if (idx < pool.size()) pool[idx] = std::move(pooled);
    }
  }

  if (pool.size() < 2) {
    return Status::Invalid("fewer than 2 verified-compatible columns in corpus");
  }
  AD_LOG(Info) << "distant supervision: pooled " << pool.size()
               << " compatible columns (of " << compatible_seen << " seen)";

  TrainingSet out;
  out.positives.reserve(options.target_positives);
  out.negatives.reserve(options.target_negatives);

  // Index of pooled columns containing more than one crude pattern — the
  // source of "diverse" positives (see diverse_positive_fraction). Columns
  // whose values also differ in symbol signature are indexed separately and
  // preferred: they constrain symbol-sensitive languages.
  std::vector<uint32_t> diverse_columns;
  std::vector<uint32_t> format_diverse_columns;
  for (uint32_t ci = 0; ci < pool.size(); ++ci) {
    const auto& col = pool[ci];
    bool key_diverse = false, sig_diverse = false;
    for (size_t i = 1; i < col.crude_keys.size(); ++i) {
      key_diverse |= col.crude_keys[i] != col.crude_keys[0];
      sig_diverse |= col.symbol_signatures[i] != col.symbol_signatures[0];
    }
    if (key_diverse) diverse_columns.push_back(ci);
    if (sig_diverse) format_diverse_columns.push_back(ci);
  }

  // T+: pairs from within one compatible column.
  size_t attempts = 0;
  const size_t max_attempts_pos = options.target_positives * 20 + 1000;
  while (out.positives.size() < options.target_positives &&
         attempts++ < max_attempts_pos) {
    bool want_diverse = !diverse_columns.empty() &&
                        rng.Chance(options.diverse_positive_fraction);
    // Among diverse draws, prefer format-diverse columns half the time.
    bool want_format =
        want_diverse && !format_diverse_columns.empty() && rng.Chance(0.5);
    const PooledColumn& c =
        want_format ? pool[rng.Pick(format_diverse_columns)]
        : want_diverse
            ? pool[rng.Pick(diverse_columns)]
            : pool[rng.Below(static_cast<uint32_t>(pool.size()))];
    uint32_t i = rng.Below(static_cast<uint32_t>(c.values.size()));
    uint32_t j = rng.Below(static_cast<uint32_t>(c.values.size()));
    if (i == j) continue;
    if (want_format && c.symbol_signatures[i] == c.symbol_signatures[j]) continue;
    if (want_diverse && !want_format && c.crude_keys[i] == c.crude_keys[j]) continue;
    out.positives.push_back(LabeledPair{c.values[i], c.values[j], true});
  }

  // T−: splice u from C1 into C2, pair with v ∈ C2, prune coincidental
  // compatibility under G.
  attempts = 0;
  const size_t max_attempts_neg = options.target_negatives * 40 + 1000;
  while (out.negatives.size() < options.target_negatives &&
         attempts++ < max_attempts_neg) {
    uint32_t a = rng.Below(static_cast<uint32_t>(pool.size()));
    uint32_t b = rng.Below(static_cast<uint32_t>(pool.size()));
    if (a == b) continue;
    const PooledColumn& c1 = pool[a];
    const PooledColumn& c2 = pool[b];
    uint32_t ui = rng.Below(static_cast<uint32_t>(c1.values.size()));
    uint32_t vi = rng.Below(static_cast<uint32_t>(c2.values.size()));
    if (scorer.Score(c1.crude_keys[ui], c2.crude_keys[vi]) >=
        options.negative_prune_threshold) {
      continue;  // possibly compatible by coincidence — drop (Appendix F)
    }
    out.negatives.push_back(LabeledPair{c1.values[ui], c2.values[vi], false});
  }

  if (out.positives.empty() || out.negatives.empty()) {
    return Status::Internal("distant supervision produced an empty side: " +
                            std::to_string(out.positives.size()) + " positives, " +
                            std::to_string(out.negatives.size()) + " negatives");
  }
  AD_LOG(Info) << "distant supervision: " << out.positives.size() << " positives, "
               << out.negatives.size() << " negatives";
  return out;
}

}  // namespace autodetect
