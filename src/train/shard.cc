#include "train/shard.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/xxhash64.h"
#include "io/mmap_file.h"
#include "io/serde.h"
#include "text/language.h"

namespace autodetect {

namespace {

constexpr char kShardMagic[] = "ADSHARD1";
constexpr uint32_t kShardVersion = 1;
constexpr uint64_t kShardAlignment = 4096;
/// magic[8] + u32 version + u32 endian + u64 alignment + u64 file_size +
/// two (offset, length, xxhash64) triples.
constexpr size_t kShardHeaderBytes = 8 + 4 + 4 + 8 + 8 + 6 * 8;

uint64_t RoundUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

uint64_t HashString(uint64_t h, std::string_view s) {
  h = Mix64(h ^ Fnv1a64(s));
  return h;
}

void WriteProvenance(BinaryWriter* w, const ShardProvenance& p) {
  w->WriteString(p.corpus_name);
  w->WriteString(p.profile);
  w->WriteU64(p.seed);
  w->WriteU64(p.total_columns);
  w->WriteU64(p.column_begin);
  w->WriteU64(p.column_end);
}

Result<ShardProvenance> ReadProvenance(BinaryReader* r) {
  ShardProvenance p;
  AD_ASSIGN_OR_RETURN(p.corpus_name, r->ReadString());
  AD_ASSIGN_OR_RETURN(p.profile, r->ReadString());
  AD_ASSIGN_OR_RETURN(p.seed, r->ReadU64());
  AD_ASSIGN_OR_RETURN(p.total_columns, r->ReadU64());
  AD_ASSIGN_OR_RETURN(p.column_begin, r->ReadU64());
  AD_ASSIGN_OR_RETURN(p.column_end, r->ReadU64());
  if (p.column_end < p.column_begin) {
    return r->Corrupt("shard column range is inverted");
  }
  return p;
}

bool SameCorpus(const ShardProvenance& a, const ShardProvenance& b) {
  return a.corpus_name == b.corpus_name && a.profile == b.profile &&
         a.seed == b.seed;
}

}  // namespace

uint64_t StatsOptionsDigest(const StatsBuilderOptions& options) {
  // Resolve the language set the builder will actually use: an empty id
  // list means every candidate in the space.
  std::vector<int> ids = options.language_ids;
  if (ids.empty()) {
    ids.resize(LanguageSpace::kNumLanguages);
    for (int i = 0; i < LanguageSpace::kNumLanguages; ++i) ids[i] = i;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  uint64_t h = 0xad54a4d1ull;
  for (int id : ids) h = Mix64(h ^ static_cast<uint64_t>(id));
  h = Mix64(h ^ options.max_distinct_values_per_column);
  h = Mix64(h ^ options.max_distinct_patterns_per_column);
  h = Mix64(h ^ (options.generalize_options.collapse_run_lengths ? 1u : 0u));
  h = Mix64(h ^ options.generalize_options.max_value_length);
  h = HashString(h, "ADSHARD1-options");
  return h;
}

Status WriteShard(const std::string& path, const StatsShard& shard) {
  std::ostringstream meta_stream;
  BinaryWriter meta(&meta_stream);
  meta.WriteU64(shard.options_digest);
  WriteProvenance(&meta, shard.provenance);
  const std::string meta_bytes = std::move(meta_stream).str();

  std::ostringstream data_stream;
  BinaryWriter data_writer(&data_stream);
  shard.stats.Serialize(&data_writer);
  AD_RETURN_NOT_OK(data_writer.status().WithContext("serializing shard stats"));
  const std::string data_bytes = std::move(data_stream).str();

  const uint64_t meta_off = kShardAlignment;
  const uint64_t data_off = RoundUp(meta_off + meta_bytes.size(), kShardAlignment);
  const uint64_t file_size = data_off + data_bytes.size();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.WriteRaw(kShardMagic, 8);
  w.WriteU32(kShardVersion);
  // Native endianness marker, as in ADMODEL2: the DATA counts are portable
  // serde either way, but keeping the skeleton identical lets tooling treat
  // both artifact families uniformly.
  const uint32_t endian_marker = 1;
  w.WriteRaw(&endian_marker, 4);
  w.WriteU64(kShardAlignment);
  w.WriteU64(file_size);
  w.WriteU64(meta_off);
  w.WriteU64(meta_bytes.size());
  w.WriteU64(XxHash64(meta_bytes.data(), meta_bytes.size()));
  w.WriteU64(data_off);
  w.WriteU64(data_bytes.size());
  w.WriteU64(XxHash64(data_bytes.data(), data_bytes.size()));
  w.AlignTo(kShardAlignment);
  w.WriteRaw(meta_bytes.data(), meta_bytes.size());
  w.AlignTo(kShardAlignment);
  w.WriteRaw(data_bytes.data(), data_bytes.size());
  return w.status().WithContext("writing " + path);
}

Result<StatsShard> ReadShard(const std::string& path) {
  AD_ASSIGN_OR_RETURN(MmapFile mapped, MmapFile::Open(path));
  const uint8_t* base = mapped.data();
  const size_t actual_size = mapped.size();
  if (actual_size < kShardHeaderBytes) {
    return Status::IOError(
        StrFormat("truncated shard header in %s: needed %zu bytes, got %zu",
                  path.c_str(), kShardHeaderBytes, actual_size));
  }
  if (std::memcmp(base, kShardMagic, 8) != 0) {
    char found[9] = {0};
    std::memcpy(found, base, 8);
    for (char& c : found) {
      if (c != 0 && (c < 0x20 || c > 0x7e)) c = '?';
    }
    return Status::Corruption(
        StrFormat("%s: header section: expected magic ADSHARD1, found \"%s\"",
                  path.c_str(), found));
  }
  uint32_t version;
  std::memcpy(&version, base + 8, 4);
  if (version != kShardVersion) {
    // Fail closed on any version skew, naming expected-vs-found: a reducer
    // must never fold a future shard's counts through a stale decoder.
    return Status::Corruption(
        StrFormat("%s: header section: unsupported ADSHARD1 version: "
                  "expected %u, found %u",
                  path.c_str(), kShardVersion, version));
  }
  uint32_t endian_marker;
  std::memcpy(&endian_marker, base + 12, 4);
  if (endian_marker != 1) {
    return Status::Corruption(
        StrFormat("%s: header section: shard byte order does not match this host",
                  path.c_str()));
  }

  BinaryReader header(base + 16, kShardHeaderBytes - 16);
  AD_ASSIGN_OR_RETURN(uint64_t alignment, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t file_size, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_off, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_len, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t meta_checksum, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_off, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_len, header.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t data_checksum, header.ReadU64());

  if (alignment < 8 || alignment > (1ULL << 24) ||
      (alignment & (alignment - 1)) != 0) {
    return Status::Corruption(
        StrFormat("%s: header section: implausible alignment", path.c_str()));
  }
  if (actual_size < file_size) {
    return Status::IOError(StrFormat(
        "truncated shard file %s: header declares %llu bytes, file has %zu",
        path.c_str(), static_cast<unsigned long long>(file_size), actual_size));
  }
  if (actual_size > file_size) {
    return Status::Corruption(
        StrFormat("%s: header section: file has trailing bytes", path.c_str()));
  }
  auto section_ok = [&](uint64_t off, uint64_t len) {
    return off >= kShardHeaderBytes && off % 8 == 0 && off <= file_size &&
           len <= file_size - off;
  };
  if (!section_ok(meta_off, meta_len)) {
    return Status::Corruption(
        StrFormat("%s: META section: bounds out of range", path.c_str()));
  }
  if (!section_ok(data_off, data_len)) {
    return Status::Corruption(
        StrFormat("%s: DATA section: bounds out of range", path.c_str()));
  }

  // Integrity before interpretation: a bad checksum never yields counts.
  mapped.Advise(MmapFile::Advice::kSequential);
  if (XxHash64(base + meta_off, meta_len) != meta_checksum) {
    return Status::Corruption(
        StrFormat("%s: META section: checksum mismatch", path.c_str()));
  }
  if (XxHash64(base + data_off, data_len) != data_checksum) {
    return Status::Corruption(
        StrFormat("%s: DATA section: checksum mismatch", path.c_str()));
  }

  StatsShard shard;
  {
    BinaryReader meta(base + meta_off, meta_len);
    AD_ASSIGN_OR_RETURN(shard.options_digest, meta.ReadU64());
    auto provenance = ReadProvenance(&meta);
    if (!provenance.ok()) {
      return provenance.status().WithContext("META section of " + path);
    }
    shard.provenance = std::move(*provenance);
  }
  {
    BinaryReader data(base + data_off, data_len);
    auto stats = CorpusStats::Deserialize(&data);
    if (!stats.ok()) {
      return stats.status().WithContext("DATA section of " + path);
    }
    shard.stats = std::move(*stats);
  }
  // Deserialization rebuilds the canonical probe layout directly (the wire
  // format is sorted), so this is normally a no-op — kept as a safety net so
  // an artifact round-trip can never perturb downstream bytes.
  shard.stats.Canonicalize();
  return shard;
}

Result<StatsShard> MergeShards(std::vector<StatsShard> shards) {
  if (shards.empty()) return Status::Invalid("no shards to merge");

  // Order independence by construction: sort by column range before
  // touching any counts, then canonicalize the merged dictionaries.
  std::sort(shards.begin(), shards.end(),
            [](const StatsShard& a, const StatsShard& b) {
              return a.provenance.column_begin < b.provenance.column_begin;
            });

  const std::vector<int> lang_ids = shards[0].stats.LanguageIds();
  for (size_t i = 1; i < shards.size(); ++i) {
    const StatsShard& s = shards[i];
    if (s.options_digest != shards[0].options_digest) {
      return Status::Invalid(StrFormat(
          "cannot merge shards built under different statistics options "
          "(digest %016llx vs %016llx)",
          static_cast<unsigned long long>(shards[0].options_digest),
          static_cast<unsigned long long>(s.options_digest)));
    }
    if (!SameCorpus(s.provenance, shards[0].provenance)) {
      return Status::Invalid(
          "cannot merge shards of different corpora (" +
          shards[0].provenance.corpus_name + "/" + shards[0].provenance.profile +
          " vs " + s.provenance.corpus_name + "/" + s.provenance.profile + ")");
    }
    if (s.stats.LanguageIds() != lang_ids) {
      return Status::Invalid("cannot merge shards with different language sets");
    }
    const ShardProvenance& prev = shards[i - 1].provenance;
    if (s.provenance.column_begin < prev.column_end) {
      return Status::Invalid(StrFormat(
          "shard column ranges overlap: [%llu, %llu) and [%llu, %llu)",
          static_cast<unsigned long long>(prev.column_begin),
          static_cast<unsigned long long>(prev.column_end),
          static_cast<unsigned long long>(s.provenance.column_begin),
          static_cast<unsigned long long>(s.provenance.column_end)));
    }
    if (s.provenance.column_begin > prev.column_end) {
      return Status::Invalid(StrFormat(
          "shard column ranges leave a gap: [%llu, %llu) then [%llu, %llu)",
          static_cast<unsigned long long>(prev.column_begin),
          static_cast<unsigned long long>(prev.column_end),
          static_cast<unsigned long long>(s.provenance.column_begin),
          static_cast<unsigned long long>(s.provenance.column_end)));
    }
  }

  StatsShard merged = std::move(shards[0]);
  // Languages are independent dictionaries; merge each across all shards on
  // its own core. Counts are additive, so the fold order within a language
  // does not matter — MergeCanonical lands every fold directly in the
  // canonical layout (a sorted merge-join, reusing the sorted entry arrays
  // deserialization left cached), erasing any layout history without the
  // full collect-sort-reinsert rebuild a Merge + Canonicalize pass would
  // pay on the large side.
  ThreadPool::ParallelFor(lang_ids.size(), /*num_threads=*/0, [&](size_t li) {
    const int id = lang_ids[li];
    LanguageStats& dst = merged.stats.MutableForLanguage(id);
    for (size_t i = 1; i < shards.size(); ++i) {
      dst.MergeCanonical(shards[i].stats.ForLanguage(id));
    }
  });
  for (size_t i = 1; i < shards.size(); ++i) {
    merged.provenance.column_end = shards[i].provenance.column_end;
    merged.provenance.total_columns = std::max(
        merged.provenance.total_columns, shards[i].provenance.total_columns);
  }
  return merged;
}

Result<StatsShard> MergeShardFiles(const std::vector<std::string>& paths) {
  std::vector<StatsShard> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    AD_ASSIGN_OR_RETURN(StatsShard shard, ReadShard(path));
    shards.push_back(std::move(shard));
  }
  return MergeShards(std::move(shards));
}

}  // namespace autodetect
