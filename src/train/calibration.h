#pragma once

#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "io/serde.h"
#include "stats/language_stats.h"
#include "text/language.h"
#include "text/run_tokenizer.h"
#include "train/distant_supervision.h"

/// \file calibration.h
/// Static-threshold calibration (paper Sec. 3.2, Eq. 7-8): for each
/// candidate language L_k, find the largest NPMI threshold θ_k such that
/// predicting "incompatible" for every training pair scoring <= θ' keeps
/// precision >= P for ALL θ' <= θ_k. Also records the empirical
/// score→precision curve, which at detection time provides the confidence
/// estimate P_k(s) used by max-confidence aggregation (Appendix B).

namespace autodetect {

/// \brief Empirical precision-at-threshold curve of one language on T.
/// Points are (score, precision of all predictions with score <= point's
/// score), sorted by score ascending.
///
/// The curve either owns its points (training path) or views a caller-owned
/// array — the zero-copy path points it directly at Point records inside a
/// memory-mapped ADMODEL2 section. Lookups are identical in both modes.
class PrecisionCurve {
 public:
  struct Point {
    double score;
    double precision;
  };
  // Points are stored verbatim in the frozen model format; the layout is
  // part of the on-disk contract.
  static_assert(sizeof(Point) == 16);

  PrecisionCurve() = default;
  explicit PrecisionCurve(std::vector<Point> points) : points_(std::move(points)) {}

  /// \brief Estimated precision P_k(s) when flagging at threshold `score`.
  /// Returns 0 for an empty curve.
  double PrecisionAt(double score) const;

  bool empty() const { return size() == 0; }
  size_t size() const { return points_.empty() ? view_size_ : points_.size(); }
  const Point* data() const { return points_.empty() ? view_data_ : points_.data(); }

  void Serialize(BinaryWriter* writer) const;
  static Result<PrecisionCurve> Deserialize(BinaryReader* reader);

  /// Frozen blob size: u64 count + points verbatim.
  size_t FrozenBytes() const { return 8 + size() * sizeof(Point); }
  /// \brief Appends the frozen representation (count + Point array) to
  /// `out`; the blob must land at an 8-byte aligned offset.
  void AppendFrozen(std::string* out) const;
  /// \brief Builds a non-owning curve viewing exactly [data, data + len);
  /// the bytes must outlive the result.
  static Result<PrecisionCurve> FromFrozen(const void* data, size_t len);

 private:
  std::vector<Point> points_;
  const Point* view_data_ = nullptr;  ///< live iff points_ is empty and set
  size_t view_size_ = 0;
};

struct CalibrationResult {
  /// θ_k. Only meaningful when has_threshold.
  double threshold = -2.0;
  /// False when no non-empty prefix meets the precision target (the
  /// language is unusable at this P and must not be selected).
  bool has_threshold = false;
  double precision_at_threshold = 0.0;
  /// Bit i set iff training negative T−[i] scores <= θ_k (the H_k^- set).
  DynamicBitset covered_negatives;
  size_t covered_count = 0;
  PrecisionCurve curve;
};

struct CalibrationOptions {
  double precision_target = 0.95;  ///< the P of Definition 5
  double smoothing_factor = 0.1;
  /// Upper bound on θ_k. NPMI > 0 means the patterns co-occur *more* than
  /// chance (Sec. 2.1), so an "incompatible" call above 0 would contradict
  /// the score's semantics no matter what the training prefix precision
  /// says; all thresholds in the paper's worked examples are negative.
  /// Strictly negative so that score 0 — the scorer's "no reliable
  /// evidence" sentinel — can never fire.
  double max_threshold = -0.01;
  /// Max points retained in the stored precision curve.
  size_t max_curve_points = 256;
};

/// \brief Training set pre-keyed under every candidate language at once.
/// Calibrating the 144 candidates used to re-generalize every training value
/// per language — 144 full string scans per value. Construction instead
/// tokenizes each *distinct* value once (run_tokenizer) and derives all
/// per-language keys with the shared-tokenization kernel; per-language
/// calibration then reads keys with no string work at all.
class PreKeyedTrainingSet {
 public:
  /// \param lang_ids ids into LanguageSpace::All(); the `lang_pos` of the
  /// accessors below indexes into this vector.
  PreKeyedTrainingSet(const TrainingSet& train, const std::vector<int>& lang_ids,
                      const GeneralizeOptions& options = {});

  size_t num_languages() const { return lang_ids_.size(); }
  const std::vector<int>& lang_ids() const { return lang_ids_; }
  size_t num_positives() const { return positives_.size(); }
  size_t num_negatives() const { return negatives_.size(); }
  size_t size() const { return positives_.size() + negatives_.size(); }

  /// \brief NPMI scores of every pair under language `lang_pos`, in the
  /// order positives-then-negatives (same contract as ScoreTrainingSet).
  std::vector<double> Score(size_t lang_pos, const LanguageStats& stats,
                            double smoothing_factor) const;

 private:
  uint64_t Key(uint32_t value_idx, size_t lang_pos) const {
    return keys_[static_cast<size_t>(value_idx) * lang_ids_.size() + lang_pos];
  }

  std::vector<int> lang_ids_;
  /// Key of distinct value v under language l at keys_[v * L + l].
  std::vector<uint64_t> keys_;
  /// Pairs as indices into the distinct-value key matrix.
  std::vector<std::pair<uint32_t, uint32_t>> positives_;
  std::vector<std::pair<uint32_t, uint32_t>> negatives_;
};

/// \brief Calibrates one language against the training set.
CalibrationResult CalibrateLanguage(const GeneralizationLanguage& lang,
                                    const LanguageStats& stats,
                                    const TrainingSet& train,
                                    const CalibrationOptions& options);

/// \brief Calibrates the language at `lang_pos` of `train.lang_ids()` from
/// pre-computed keys; identical result to the string-based overload.
CalibrationResult CalibrateLanguage(size_t lang_pos, const LanguageStats& stats,
                                    const PreKeyedTrainingSet& train,
                                    const CalibrationOptions& options);

/// \brief Scores every pair of `train` under `lang`; returned in the order
/// positives-then-negatives. Exposed for the aggregation ablation bench.
std::vector<double> ScoreTrainingSet(const GeneralizationLanguage& lang,
                                     const LanguageStats& stats,
                                     const TrainingSet& train,
                                     double smoothing_factor);

}  // namespace autodetect
