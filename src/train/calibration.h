#pragma once

#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "io/serde.h"
#include "stats/language_stats.h"
#include "text/language.h"
#include "train/distant_supervision.h"

/// \file calibration.h
/// Static-threshold calibration (paper Sec. 3.2, Eq. 7-8): for each
/// candidate language L_k, find the largest NPMI threshold θ_k such that
/// predicting "incompatible" for every training pair scoring <= θ' keeps
/// precision >= P for ALL θ' <= θ_k. Also records the empirical
/// score→precision curve, which at detection time provides the confidence
/// estimate P_k(s) used by max-confidence aggregation (Appendix B).

namespace autodetect {

/// \brief Empirical precision-at-threshold curve of one language on T.
/// Points are (score, precision of all predictions with score <= point's
/// score), sorted by score ascending.
class PrecisionCurve {
 public:
  struct Point {
    double score;
    double precision;
  };

  PrecisionCurve() = default;
  explicit PrecisionCurve(std::vector<Point> points) : points_(std::move(points)) {}

  /// \brief Estimated precision P_k(s) when flagging at threshold `score`.
  /// Returns 0 for an empty curve.
  double PrecisionAt(double score) const;

  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  void Serialize(BinaryWriter* writer) const;
  static Result<PrecisionCurve> Deserialize(BinaryReader* reader);

 private:
  std::vector<Point> points_;
};

struct CalibrationResult {
  /// θ_k. Only meaningful when has_threshold.
  double threshold = -2.0;
  /// False when no non-empty prefix meets the precision target (the
  /// language is unusable at this P and must not be selected).
  bool has_threshold = false;
  double precision_at_threshold = 0.0;
  /// Bit i set iff training negative T−[i] scores <= θ_k (the H_k^- set).
  DynamicBitset covered_negatives;
  size_t covered_count = 0;
  PrecisionCurve curve;
};

struct CalibrationOptions {
  double precision_target = 0.95;  ///< the P of Definition 5
  double smoothing_factor = 0.1;
  /// Upper bound on θ_k. NPMI > 0 means the patterns co-occur *more* than
  /// chance (Sec. 2.1), so an "incompatible" call above 0 would contradict
  /// the score's semantics no matter what the training prefix precision
  /// says; all thresholds in the paper's worked examples are negative.
  /// Strictly negative so that score 0 — the scorer's "no reliable
  /// evidence" sentinel — can never fire.
  double max_threshold = -0.01;
  /// Max points retained in the stored precision curve.
  size_t max_curve_points = 256;
};

/// \brief Calibrates one language against the training set.
CalibrationResult CalibrateLanguage(const GeneralizationLanguage& lang,
                                    const LanguageStats& stats,
                                    const TrainingSet& train,
                                    const CalibrationOptions& options);

/// \brief Scores every pair of `train` under `lang`; returned in the order
/// positives-then-negatives. Exposed for the aggregation ablation bench.
std::vector<double> ScoreTrainingSet(const GeneralizationLanguage& lang,
                                     const LanguageStats& stats,
                                     const TrainingSet& train,
                                     double smoothing_factor);

}  // namespace autodetect
