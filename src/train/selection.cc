#include "train/selection.h"

#include <algorithm>

#include "common/logging.h"

namespace autodetect {

namespace {

size_t UnionCoverage(const std::vector<LanguageCandidate>& candidates,
                     const std::vector<size_t>& picks) {
  if (picks.empty()) return 0;
  DynamicBitset acc(candidates[picks[0]].covered.size());
  for (size_t p : picks) acc.UnionWith(candidates[p].covered);
  return acc.Popcount();
}

}  // namespace

SelectionResult SelectLanguagesGreedy(const std::vector<LanguageCandidate>& candidates,
                                      size_t memory_budget_bytes) {
  SelectionResult result;
  if (candidates.empty()) return result;
  const size_t num_negatives = candidates[0].covered.size();

  // Greedy phase (Algorithm 1, lines 2-7).
  DynamicBitset covered(num_negatives);
  std::vector<bool> picked(candidates.size(), false);
  size_t used_bytes = 0;
  while (true) {
    double best_ratio = 0.0;
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (picked[i]) continue;
      if (used_bytes + candidates[i].size_bytes > memory_budget_bytes) continue;
      size_t gain = candidates[i].covered.CountNewOver(covered);
      if (gain == 0) continue;
      double ratio = static_cast<double>(gain) /
                     static_cast<double>(std::max<size_t>(1, candidates[i].size_bytes));
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
        best_gain = gain;
      }
    }
    if (best == candidates.size()) break;
    picked[best] = true;
    covered.UnionWith(candidates[best].covered);
    used_bytes += candidates[best].size_bytes;
    result.selected.push_back(best);
    (void)best_gain;
  }
  result.total_bytes = used_bytes;
  result.covered_count = covered.Popcount();

  // Best-singleton fallback (lines 8-12).
  size_t best_single = candidates.size();
  size_t best_single_cover = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].size_bytes > memory_budget_bytes) continue;
    size_t c = candidates[i].covered.Popcount();
    if (c > best_single_cover) {
      best_single_cover = c;
      best_single = i;
    }
  }
  if (best_single < candidates.size() && best_single_cover > result.covered_count) {
    result.selected = {best_single};
    result.total_bytes = candidates[best_single].size_bytes;
    result.covered_count = best_single_cover;
    result.singleton_fallback = true;
  }
  return result;
}

DtSelectionResult SelectLanguagesDT(const std::vector<DtSelectionInput>& inputs,
                                    const DtSelectionOptions& options) {
  DtSelectionResult result;
  if (inputs.empty()) return result;
  const size_t num_neg = inputs[0].negative_scores.size();
  const size_t num_pos = inputs[0].positive_scores.size();

  // Per-language candidate threshold grids: quantiles of its negative
  // scores, clamped strictly below 0 (see CalibrationOptions::max_threshold).
  struct Grid {
    std::vector<double> thetas;
  };
  std::vector<Grid> grids(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::vector<double> sorted = inputs[i].negative_scores;
    std::sort(sorted.begin(), sorted.end());
    for (size_t q = 1; q <= options.threshold_grid; ++q) {
      double theta =
          sorted[std::min(sorted.size() - 1,
                          q * sorted.size() / (options.threshold_grid + 1))];
      if (theta >= -0.01) continue;
      if (grids[i].thetas.empty() || grids[i].thetas.back() != theta) {
        grids[i].thetas.push_back(theta);
      }
    }
  }

  DynamicBitset covered_neg(num_neg), covered_pos(num_pos);
  // Per selected language: its current theta (index into grid), or -1.
  std::vector<int> chosen_theta(inputs.size(), -1);
  size_t used_bytes = 0;

  auto union_counts_with = [&](size_t li, double theta, size_t* new_neg,
                               size_t* new_pos) {
    size_t nn = 0, np = 0;
    for (size_t j = 0; j < num_neg; ++j) {
      if (!covered_neg.Test(j) && inputs[li].negative_scores[j] <= theta) ++nn;
    }
    for (size_t j = 0; j < num_pos; ++j) {
      if (!covered_pos.Test(j) && inputs[li].positive_scores[j] <= theta) ++np;
    }
    *new_neg = nn;
    *new_pos = np;
  };

  while (true) {
    double best_gain = 0;
    size_t best_li = inputs.size();
    double best_theta = 0;
    size_t cur_neg = covered_neg.Popcount();
    size_t cur_pos = covered_pos.Popcount();
    for (size_t li = 0; li < inputs.size(); ++li) {
      size_t extra_bytes = chosen_theta[li] == -1 ? inputs[li].size_bytes : 0;
      if (used_bytes + extra_bytes > options.memory_budget_bytes) continue;
      for (double theta : grids[li].thetas) {
        if (chosen_theta[li] != -1 &&
            theta <= grids[li].thetas[static_cast<size_t>(chosen_theta[li])]) {
          continue;  // only widening an already-selected language helps
        }
        size_t nn, np;
        union_counts_with(li, theta, &nn, &np);
        if (nn == 0) continue;
        double precision =
            static_cast<double>(cur_neg + nn) /
            static_cast<double>(cur_neg + nn + cur_pos + np);
        if (precision < options.precision_target) continue;
        double gain = static_cast<double>(nn) /
                      static_cast<double>(std::max<size_t>(1, extra_bytes) + 64);
        if (gain > best_gain) {
          best_gain = gain;
          best_li = li;
          best_theta = theta;
        }
      }
    }
    if (best_li == inputs.size()) break;
    if (chosen_theta[best_li] == -1) used_bytes += inputs[best_li].size_bytes;
    // Record the chosen theta's grid index.
    const auto& thetas = grids[best_li].thetas;
    chosen_theta[best_li] = static_cast<int>(
        std::find(thetas.begin(), thetas.end(), best_theta) - thetas.begin());
    for (size_t j = 0; j < num_neg; ++j) {
      if (inputs[best_li].negative_scores[j] <= best_theta) covered_neg.Set(j);
    }
    for (size_t j = 0; j < num_pos; ++j) {
      if (inputs[best_li].positive_scores[j] <= best_theta) covered_pos.Set(j);
    }
  }

  for (size_t li = 0; li < inputs.size(); ++li) {
    if (chosen_theta[li] == -1) continue;
    result.selected.emplace_back(
        inputs[li].lang_id,
        grids[li].thetas[static_cast<size_t>(chosen_theta[li])]);
    result.total_bytes += inputs[li].size_bytes;
  }
  result.covered_negatives = covered_neg.Popcount();
  result.covered_positives = covered_pos.Popcount();
  size_t denom = result.covered_negatives + result.covered_positives;
  result.precision =
      denom ? static_cast<double>(result.covered_negatives) /
                  static_cast<double>(denom)
            : 0.0;
  return result;
}

SelectionResult SelectLanguagesExhaustive(
    const std::vector<LanguageCandidate>& candidates, size_t memory_budget_bytes) {
  AD_CHECK(candidates.size() <= 24) << "exhaustive selection limited to 24 candidates";
  SelectionResult best;
  const size_t n = candidates.size();
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    size_t bytes = 0;
    std::vector<size_t> picks;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        bytes += candidates[i].size_bytes;
        picks.push_back(i);
      }
    }
    if (bytes > memory_budget_bytes) continue;
    size_t cover = UnionCoverage(candidates, picks);
    if (cover > best.covered_count ||
        (cover == best.covered_count && bytes < best.total_bytes)) {
      best.covered_count = cover;
      best.total_bytes = bytes;
      best.selected = std::move(picks);
    }
  }
  return best;
}

}  // namespace autodetect
