#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "detect/detector.h"

/// \file pair_cache.h
/// Thread-safe sharded LRU cache of PairVerdicts, keyed on the
/// order-independent hash of a value pair's per-language key rows
/// (Detector::PairCacheKey). Real tables repeat values heavily across
/// columns — dates, ids, enum-like strings — so a batch scan re-judges the
/// same pair over and over; memoizing the verdict skips the per-language
/// NPMI lookups entirely. The key space is mutex-striped into power-of-two
/// shards so concurrent workers rarely contend on the same lock, and each
/// shard runs an exact LRU over a preallocated entry slab (no per-entry
/// allocation after warm-up; the index map is the only dynamic structure).
///
/// Verdict transparency: a PairVerdict is a pure function of the key rows,
/// so serving a cached verdict is bit-identical to recomputing it (modulo
/// the ~2^-64 chance of a 64-bit key collision) — the engine's determinism
/// guarantee does not degrade with the cache on.

namespace autodetect {

struct PairCacheOptions {
  /// Total budget across shards; entries are costed at kBytesPerEntry.
  size_t capacity_bytes = 32ull << 20;
  /// Rounded up to a power of two; each shard has its own mutex + LRU.
  size_t num_shards = 16;
};

/// Aggregated counters over all shards (point-in-time snapshot).
struct PairCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ShardedPairCache : public PairVerdictCache {
 public:
  /// Estimated resident cost of one cached verdict: the slab entry plus the
  /// index map's node/bucket overhead.
  static constexpr size_t kBytesPerEntry = 112;

  explicit ShardedPairCache(PairCacheOptions options = {});

  /// Thread-safe; a hit refreshes the entry's LRU position.
  bool Lookup(uint64_t pair_key, PairVerdict* out) override;

  /// Thread-safe; inserting an existing key refreshes value and position.
  /// Evicts the shard's least-recently-used entry when the shard is full.
  void Insert(uint64_t pair_key, const PairVerdict& verdict) override;

  PairCacheStats Stats() const;

  /// Per-shard counters, in shard order (for the obs/ collector: shard
  /// imbalance is the first thing to look at when hit rates sag).
  std::vector<PairCacheStats> PerShardStats() const;

  /// Drops all entries (counters are kept).
  void Clear();

  size_t num_shards() const { return shards_.size(); }
  /// Entry capacity summed over shards.
  size_t capacity_entries() const;

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Entry {
    uint64_t key = 0;
    PairVerdict verdict;
    uint32_t prev = kNil;  ///< toward MRU
    uint32_t next = kNil;  ///< toward LRU
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> index;  ///< key -> slab slot
    std::vector<Entry> slab;
    uint32_t mru = kNil;
    uint32_t lru = kNil;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;

    void Unlink(uint32_t slot);
    void PushFront(uint32_t slot);
  };

  Shard& ShardFor(uint64_t pair_key) {
    // Pair keys come out of CombineUnordered, whose final Mix64 leaves the
    // low bits well distributed.
    return *shards_[pair_key & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace autodetect
