#include "serve/lifecycle.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "common/string_util.h"

namespace autodetect {

// ---------------------------------------------------------------------------
// MemoryBudget

MemoryBudget::MemoryBudget(MemoryBudgetOptions options)
    : options_(std::move(options)) {
  MetricsRegistry* registry = OrDefaultRegistry(options_.metrics);
  rejected_metric_ = registry->GetCounter("serve.mem.rejected_total");
  inflight_metric_ = registry->GetGauge("serve.mem.inflight_bytes");
  peak_metric_ = registry->GetGauge("serve.mem.peak_bytes");
}

bool MemoryBudget::TryReserve(size_t bytes) {
  if (bytes == 0) return true;
  size_t cur = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    if (options_.global_bytes != 0 &&
        (bytes > options_.global_bytes ||
         cur > options_.global_bytes - bytes)) {
      return false;
    }
    if (inflight_.compare_exchange_weak(cur, cur + bytes,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  size_t now = cur + bytes;
  inflight_metric_->Set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  peak_metric_->Set(static_cast<double>(peak_.load(std::memory_order_relaxed)));
  return true;
}

void MemoryBudget::Unreserve(size_t bytes) {
  if (bytes == 0) return;
  inflight_.fetch_sub(bytes, std::memory_order_relaxed);
  inflight_metric_->Set(static_cast<double>(inflight_.load(std::memory_order_relaxed)));
}

void MemoryBudget::CountRejection() {
  rejected_count_.fetch_add(1, std::memory_order_relaxed);
  rejected_metric_->Add(1);
}

Result<MemoryBudget::Charge> MemoryBudget::Admit(size_t bytes) {
  if (!enabled()) return Charge(this, 0);
  if (WouldExceedPerRequest(bytes)) {
    CountRejection();
    return Status::ResourceExhausted(StrFormat(
        "request claims %zu bytes, over the per-request budget of %zu",
        bytes, options_.per_request_bytes));
  }
  if (!TryReserve(bytes)) {
    CountRejection();
    return Status::ResourceExhausted(StrFormat(
        "request of %zu bytes does not fit the global memory budget "
        "(%zu in flight of %zu); retry later",
        bytes, inflight_.load(std::memory_order_relaxed),
        options_.global_bytes));
  }
  return Charge(this, bytes);
}

bool MemoryBudget::Charge::Extend(size_t more_bytes) {
  if (budget_ == nullptr || more_bytes == 0) return true;
  if (budget_->options_.per_request_bytes != 0 &&
      bytes_ + more_bytes > budget_->options_.per_request_bytes) {
    budget_->CountRejection();
    return false;
  }
  if (!budget_->TryReserve(more_bytes)) {
    budget_->CountRejection();
    return false;
  }
  bytes_ += more_bytes;
  return true;
}

void MemoryBudget::Charge::Release() {
  if (budget_ != nullptr) {
    budget_->Unreserve(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }
}

// ---------------------------------------------------------------------------
// HealthLadder

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

HealthLadder::HealthLadder(MetricsRegistry* metrics)
    : metrics_(OrDefaultRegistry(metrics)) {
  state_metric_ = metrics_->GetGauge("serve.health.state");
  state_metric_->Set(0.0);
}

void HealthLadder::SetCondition(std::string_view name, bool active) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active) {
    degraded_.insert(std::string(name));
  } else {
    degraded_.erase(std::string(name));
  }
  PublishLocked();
}

void HealthLadder::SetUnhealthyCondition(std::string_view name, bool active) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active) {
    unhealthy_.insert(std::string(name));
  } else {
    unhealthy_.erase(std::string(name));
  }
  PublishLocked();
}

void HealthLadder::SetDraining() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_.store(true, std::memory_order_release);
  PublishLocked();
}

HealthState HealthLadder::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!unhealthy_.empty()) return HealthState::kUnhealthy;
  if (draining_.load(std::memory_order_acquire)) return HealthState::kDraining;
  if (!degraded_.empty()) return HealthState::kDegraded;
  return HealthState::kHealthy;
}

void HealthLadder::PublishLocked() {
  HealthState s = HealthState::kHealthy;
  if (!unhealthy_.empty()) {
    s = HealthState::kUnhealthy;
  } else if (draining_.load(std::memory_order_acquire)) {
    s = HealthState::kDraining;
  } else if (!degraded_.empty()) {
    s = HealthState::kDegraded;
  }
  state_metric_->Set(static_cast<double>(static_cast<uint8_t>(s)));
}

std::string HealthLadder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthState s = HealthState::kHealthy;
  if (!unhealthy_.empty()) {
    s = HealthState::kUnhealthy;
  } else if (draining_.load(std::memory_order_acquire)) {
    s = HealthState::kDraining;
  } else if (!degraded_.empty()) {
    s = HealthState::kDegraded;
  }
  std::string out = "{\"state\":\"";
  out += HealthStateName(s);
  out += "\",\"draining\":";
  out += draining_.load(std::memory_order_acquire) ? "true" : "false";
  out += ",\"conditions\":[";
  bool first = true;
  for (const auto& set : {&unhealthy_, &degraded_}) {
    for (const std::string& name : *set) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += name;  // condition names are code-chosen identifiers, JSON-safe
      out += '"';
    }
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Watchdog

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {
  MetricsRegistry* registry = OrDefaultRegistry(options_.metrics);
  checks_metric_ = registry->GetCounter("serve.watchdog.checks_total");
  wedged_metric_ = registry->GetGauge("serve.watchdog.wedged_tasks");
  stalled_metric_ = registry->GetGauge("serve.watchdog.stalled_loops");
}

Watchdog::~Watchdog() { Stop(); }

int64_t Watchdog::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Watchdog::Start() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(run_mu_);
    while (!stopping_) {
      run_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
      if (stopping_) break;
      lock.unlock();
      CheckNow();
      lock.lock();
    }
  });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    started_ = false;
  }
}

uint64_t Watchdog::BeginTask(const char* kind) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_task_id_++;
  tasks_.emplace(id, Task{kind, NowMs()});
  return id;
}

void Watchdog::EndTask(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.erase(id);
}

Watchdog::TaskScope::TaskScope(Watchdog* dog, const char* kind) : dog_(dog) {
  if (dog_ != nullptr) id_ = dog_->BeginTask(kind);
}

Watchdog::TaskScope::~TaskScope() {
  if (dog_ != nullptr) dog_->EndTask(id_);
}

size_t Watchdog::RegisterHeartbeat(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto beat = std::make_unique<Heartbeat>();
  beat->name = std::move(name);
  beat->last_ms.store(NowMs(), std::memory_order_relaxed);
  heartbeats_.push_back(std::move(beat));
  return heartbeats_.size() - 1;
}

void Watchdog::Beat(size_t id) {
  // Registration happens before the loop threads start, so the vector is
  // stable by the time Beat races with CheckNow.
  std::lock_guard<std::mutex> lock(mu_);
  if (id < heartbeats_.size()) {
    heartbeats_[id]->last_ms.store(NowMs(), std::memory_order_relaxed);
  }
}

void Watchdog::CheckNow() {
  const int64_t now = NowMs();
  size_t wedged = 0;
  size_t stalled = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, task] : tasks_) {
      if (now - task.started_ms >
          static_cast<int64_t>(options_.wedge_timeout_ms)) {
        ++wedged;
      }
    }
    for (const auto& beat : heartbeats_) {
      if (now - beat->last_ms.load(std::memory_order_relaxed) >
          static_cast<int64_t>(options_.stall_timeout_ms)) {
        ++stalled;
      }
    }
  }
  wedged_now_.store(wedged, std::memory_order_relaxed);
  stalled_now_.store(stalled, std::memory_order_relaxed);
  checks_metric_->Add(1);
  wedged_metric_->Set(static_cast<double>(wedged));
  stalled_metric_->Set(static_cast<double>(stalled));
  if (options_.health != nullptr) {
    options_.health->SetCondition("worker-wedged", wedged > 0);
    options_.health->SetUnhealthyCondition("acceptor-stalled", stalled > 0);
  }
}

// ---------------------------------------------------------------------------
// CircuitBreaker

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {
/// Same seeding discipline as the failpoint registry: a PCG stream derived
/// from the name, so two runs see identical probe timing.
Pcg32 BreakerRng(std::string_view name) {
  Fnv1aHasher hasher;
  for (char c : name) hasher.Byte(static_cast<unsigned char>(c));
  return Pcg32(hasher.h);
}
}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)), rng_(BreakerRng(options_.name)) {
  MetricsRegistry* registry = OrDefaultRegistry(options_.metrics);
  const std::string prefix = "serve.breaker." + options_.name + ".";
  open_metric_ = registry->GetCounter(prefix + "open_total");
  rejected_metric_ = registry->GetCounter(prefix + "rejected_total");
  state_metric_ = registry->GetGauge(prefix + "state");
  state_metric_->Set(0.0);
}

int64_t CircuitBreaker::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::PublishLocked() {
  state_metric_->Set(static_cast<double>(static_cast<uint8_t>(state_)));
  if (options_.health != nullptr) {
    options_.health->SetCondition("breaker:" + options_.name,
                                  state_ != BreakerState::kClosed);
  }
}

void CircuitBreaker::TripLocked(int64_t now_ms) {
  state_ = BreakerState::kOpen;
  ++consecutive_trips_;
  uint64_t shift = std::min<size_t>(consecutive_trips_ - 1, 20);
  uint64_t window = options_.open_base_ms << shift;
  window = std::min(window, options_.open_max_ms);
  window = std::max<uint64_t>(window, 1);
  // Jitter into [w/2, w] so a fleet of breakers doesn't probe in lockstep.
  window_ms_ = window / 2 + rng_.NextU64() % (window - window / 2 + 1);
  reopen_at_ms_ = now_ms + static_cast<int64_t>(window_ms_);
  open_count_.fetch_add(1, std::memory_order_relaxed);
  open_metric_->Add(1);
  PublishLocked();
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (NowMs() >= reopen_at_ms_) {
        state_ = BreakerState::kHalfOpen;
        PublishLocked();
        return true;  // this caller is the probe
      }
      rejected_metric_->Add(1);
      return false;
    case BreakerState::kHalfOpen:
      rejected_metric_->Add(1);  // probe already in flight
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  consecutive_trips_ = 0;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    PublishLocked();
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowMs();
  if (state_ == BreakerState::kHalfOpen) {
    TripLocked(now);  // probe failed: back open, doubled window
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // still open; nothing to do
  if (++consecutive_failures_ >= options_.failure_threshold) {
    TripLocked(now);
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::open_window_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_ms_;
}

}  // namespace autodetect
