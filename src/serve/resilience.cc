#include "serve/resilience.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/trace.h"

namespace autodetect {

std::string_view AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
    case AdmissionPolicy::kReject:
      return "reject";
  }
  return "?";
}

Result<AdmissionPolicy> ParseAdmissionPolicy(std::string_view name) {
  if (name == "block") return AdmissionPolicy::kBlock;
  if (name == "shed-oldest") return AdmissionPolicy::kShedOldest;
  if (name == "reject") return AdmissionPolicy::kReject;
  return Status::Invalid("unknown admission policy '" + std::string(name) +
                         "' (expected block, shed-oldest or reject)");
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  MetricsRegistry* registry = OrDefaultRegistry(options_.metrics);
  const std::string& p = options_.metric_prefix;
  metrics_.admitted = registry->GetCounter(p + "admitted_total");
  metrics_.rejected = registry->GetCounter(p + "rejected_total");
  metrics_.shed_columns = registry->GetCounter(p + "shed_columns_total");
  metrics_.block_timeouts = registry->GetCounter(p + "block_timeouts_total");
  metrics_.queue_wait_us = registry->GetHistogram(p + "queue_wait_us");
  metrics_.inflight_columns = registry->GetGauge(p + "inflight_columns");
}

size_t AdmissionController::LiveColumnsLocked() const {
  size_t total = 0;
  for (const auto& ticket : live_) {
    if (!ticket->shed()) total += ticket->columns();
  }
  return total;
}

void AdmissionController::ShedOldestLocked(size_t needed) {
  // Oldest first: the deque is admission-ordered, so walk from the front
  // until the newcomer fits. Shed tickets stop counting toward capacity
  // immediately — their columns return kShed within one column's latency.
  // Shed column accounting happens at report time (the engine counts the
  // columns it actually returns kShed), not here — a victim's already-
  // scanned columns still deliver their full reports.
  for (auto& ticket : live_) {
    if (LiveColumnsLocked() + needed <= options_.queue_cap_columns) return;
    if (ticket->shed()) continue;
    ticket->shed_.store(true, std::memory_order_relaxed);
  }
}

std::shared_ptr<AdmissionController::Ticket> AdmissionController::Admit(
    size_t columns) {
  if (!enabled()) return nullptr;  // engine treats "disabled" as always-admit
  StageTimer wait_timer(metrics_.queue_wait_us);
  std::unique_lock<std::mutex> lock(mu_);
  // A batch larger than the cap can never fit beside other work; admit it
  // alone (cap bounds backlog, not table width).
  auto fits = [&] {
    const size_t live = LiveColumnsLocked();
    return live + columns <= options_.queue_cap_columns ||
           (live == 0 && columns > options_.queue_cap_columns);
  };
  if (!fits()) {
    switch (options_.policy) {
      case AdmissionPolicy::kReject:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        metrics_.rejected->Add(1);
        return nullptr;
      case AdmissionPolicy::kShedOldest:
        ShedOldestLocked(columns);
        capacity_cv_.notify_all();  // blocked admitters may fit now too
        break;
      case AdmissionPolicy::kBlock: {
        const bool got_capacity = capacity_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.block_timeout_ms), fits);
        if (!got_capacity) {
          block_timeouts_.fetch_add(1, std::memory_order_relaxed);
          rejected_.fetch_add(1, std::memory_order_relaxed);
          metrics_.block_timeouts->Add(1);
          metrics_.rejected->Add(1);
          return nullptr;
        }
        break;
      }
    }
  }
  auto ticket = std::shared_ptr<Ticket>(new Ticket(columns));
  ticket->seq_ = next_seq_++;
  live_.push_back(ticket);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  metrics_.admitted->Add(1);
  metrics_.inflight_columns->Set(static_cast<double>(LiveColumnsLocked()));
  return ticket;
}

void AdmissionController::Release(const std::shared_ptr<Ticket>& ticket) {
  AD_CHECK(ticket != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(live_.begin(), live_.end(), ticket);
    AD_CHECK(it != live_.end()) << "double Release of an admission ticket";
    live_.erase(it);
    metrics_.inflight_columns->Set(static_cast<double>(LiveColumnsLocked()));
  }
  capacity_cv_.notify_all();
}

void AdmissionController::CountShedColumns(size_t n) {
  if (n == 0) return;
  shed_columns_.fetch_add(n, std::memory_order_relaxed);
  metrics_.shed_columns->Add(n);
}

AdmissionStats AdmissionController::Stats() const {
  AdmissionStats stats;
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.shed_columns = shed_columns_.load(std::memory_order_relaxed);
  stats.block_timeouts = block_timeouts_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.inflight_columns = LiveColumnsLocked();
  return stats;
}

}  // namespace autodetect
