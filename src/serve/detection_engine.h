#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "detect/api.h"
#include "detect/detector.h"
#include "detect/model.h"
#include "detect/model_provider.h"
#include "obs/metrics.h"
#include "serve/pair_cache.h"
#include "serve/resilience.h"

/// \file detection_engine.h
/// The serving layer: a batch detection engine that fans column requests out
/// over a worker pool. This is the deployment shape of the paper's
/// "spell-checker for data" at service scale — a request is a table's worth
/// of columns, and the engine must return exactly what the sequential
/// Detector would, only faster. It is the parallel executor of the unified
/// detection API (detect/api.h).
///
/// Model lifecycle: the engine acquires models through a ModelProvider
/// (detect/model_provider.h). Each batch pins one immutable snapshot —
/// {model, detector, pair cache} — for its whole duration; when the
/// provider swaps models (ModelRegistry hot reload), in-flight batches
/// finish on the old snapshot and the next batch builds a fresh one. The
/// pair cache lives inside the snapshot on purpose: cached verdicts are a
/// function of the model's statistics, so carrying them across a reload
/// would silently serve the old model's judgments.
///
/// Guarantees:
///  * Determinism — every report's ColumnReport is bit-identical to
///    Detector::Detect on the same values against the same snapshot,
///    regardless of worker count, scheduling, or cache state. The streaming
///    Detect delivers each report under its request index (delivery ORDER is
///    scheduling-dependent; the index→report mapping is not), and the vector
///    adapter returns reports in request order. (DetectReport::latency_us is
///    execution metadata and outside the determinism contract.)
///  * Snapshot consistency — every report of a batch is produced by exactly
///    one model snapshot, even when a reload races the batch.
///  * No allocation churn — each worker leases a ColumnScratch from a pool.
///
/// Thread safety: Detect may be called concurrently from multiple threads;
/// batches share the pool and scratch pool, and may share or not share a
/// snapshot depending on reload timing.
///
/// Observability: the engine records serve.* metrics (batch counts/latency,
/// dispatch overhead, queue depth, worker busy time) and registers a
/// collector that publishes serve.cache.* gauges from the current
/// snapshot's pair cache on every registry snapshot; the collector is
/// deregistered in the destructor.

namespace autodetect {

struct EngineOptions {
  size_t num_threads = 0;  ///< worker count; 0 = hardware concurrency
  /// Per-snapshot pair-cache budget; 0 disables caching entirely.
  size_t cache_bytes = 32ull << 20;
  size_t cache_shards = 16;
  DetectorOptions detector;
  /// Deadline applied to every batch whose requests carry no token of their
  /// own (one CancelSource per batch, its token copied into each column).
  /// 0 = none. Requests with an active token keep it — per-request budgets
  /// override the engine default.
  uint64_t default_deadline_ms = 0;
  /// Admission control in front of the engine; queue_cap_columns == 0 (the
  /// default) disables it. The admission registry inherits `metrics` below
  /// when its own is null.
  AdmissionOptions admission;
  /// Metrics destination; null means the process default registry. Also
  /// fills detector.metrics when that is null, so one field wires the whole
  /// engine to a private registry (as the benches do).
  MetricsRegistry* metrics = nullptr;
};

/// Point-in-time engine counters.
struct EngineStats {
  uint64_t batches = 0;
  uint64_t columns = 0;
  PairCacheStats cache;       ///< current snapshot's cache; zeros when disabled
  AdmissionStats admission;   ///< zeros when admission control is disabled
};

class DetectionEngine : public DetectionExecutor {
 public:
  /// \param provider not owned; must outlive the engine and have a loaded
  /// model by the first Detect call (a ModelRegistry after Reload, or any
  /// FixedModel).
  explicit DetectionEngine(ModelProvider* provider, EngineOptions options = {});

  /// Fixed-model convenience: wraps `model` (not owned, must outlive the
  /// engine) in an internal FixedModel provider.
  explicit DetectionEngine(const Model* model, EngineOptions options = {});

  ~DetectionEngine() override;

  /// \brief Executes every request on the worker pool, streaming each report
  /// to `sink` as its column completes (the unified-API entry point). Sink
  /// calls come from the worker threads concurrently — implementations must
  /// be thread-safe (each index is delivered exactly once; the vector
  /// adapter's disjoint-slot writes need no lock). Returns after the last
  /// delivery.
  using DetectionExecutor::Detect;
  void Detect(const std::vector<DetectRequest>& batch, ReportSink& sink) override;

  EngineStats Stats() const;

  size_t num_threads() const { return pool_.num_threads(); }
  bool cache_enabled() const { return options_.cache_bytes > 0; }
  /// \brief The current snapshot's pair cache, null when disabled or before
  /// the first snapshot. The pointer is invalidated by the next reload —
  /// hold the engine's Detect results, not this, across batches.
  const ShardedPairCache* cache() const;
  /// \brief The current model snapshot (null before a registry's first
  /// load). The returned shared_ptr keeps the snapshot alive.
  std::shared_ptr<const Model> model() const { return provider_->Snapshot(); }
  const EngineOptions& options() const { return options_; }
  /// \brief The admission controller, null when admission control is
  /// disabled (queue_cap_columns == 0).
  const AdmissionController* admission() const { return admission_.get(); }
  /// \brief Mutable access for harnesses that pin occupancy (tests holding
  /// capacity via Admit to force deterministic shedding).
  AdmissionController* mutable_admission() { return admission_.get(); }

 private:
  /// Engine-level metric handles, resolved once at construction.
  struct Metrics {
    Counter* batches = nullptr;
    Counter* columns = nullptr;
    Counter* worker_busy_us = nullptr;  ///< summed worker wall-time in batches
    Histogram* batch_latency_us = nullptr;
    Histogram* dispatch_us = nullptr;  ///< submit-to-first-claim overhead
    Gauge* queue_depth = nullptr;      ///< columns admitted but not finished
    Gauge* workers = nullptr;
  };

  /// One immutable serving snapshot. Batches hold it via shared_ptr, so a
  /// snapshot (and the mapped model file behind it) stays alive until the
  /// last in-flight batch drops it.
  struct Snapshot {
    Snapshot(std::shared_ptr<const Model> model_in, uint64_t generation_in,
             const EngineOptions& options);
    std::shared_ptr<const Model> model;
    uint64_t generation = 0;
    Detector detector;
    std::unique_ptr<ShardedPairCache> cache;  ///< null when caching disabled
  };

  /// Shared constructor body (metric handles, scratch pool, collector).
  void InitCommon();

  /// Returns the snapshot for the provider's current generation, building
  /// one if the provider swapped models since the last batch.
  std::shared_ptr<Snapshot> CurrentSnapshot();

  std::unique_ptr<ColumnScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<ColumnScratch> scratch);
  void PublishCacheMetrics(MetricsRegistry* registry) const;

  std::unique_ptr<FixedModel> owned_provider_;  ///< raw-model ctor only
  ModelProvider* provider_;
  EngineOptions options_;
  std::unique_ptr<AdmissionController> admission_;  ///< null when disabled
  ThreadPool pool_;

  MetricsRegistry* registry_;
  Metrics metrics_;
  size_t cache_collector_id_ = 0;
  bool cache_collector_registered_ = false;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<Snapshot> snapshot_;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<ColumnScratch>> scratch_pool_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> columns_{0};
  std::atomic<int64_t> inflight_columns_{0};
};

}  // namespace autodetect
