#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "detect/api.h"
#include "detect/detector.h"
#include "detect/model.h"
#include "obs/metrics.h"
#include "serve/pair_cache.h"

/// \file detection_engine.h
/// The serving layer: a batch detection engine that owns an immutable Model
/// snapshot and fans column requests out over a worker pool. This is the
/// deployment shape of the paper's "spell-checker for data" at service
/// scale — a request is a table's worth of columns, and the engine must
/// return exactly what the sequential Detector would, only faster. It is the
/// parallel executor of the unified detection API (detect/api.h).
///
/// Guarantees:
///  * Determinism — Detect returns reports in request order, and every
///    report's ColumnReport is bit-identical to Detector::AnalyzeColumn on
///    the same values, regardless of worker count, scheduling, or cache
///    state. Workers claim columns dynamically (atomic cursor) but write
///    results into the request's slot, so ordering never depends on
///    completion order. (DetectReport::latency_us is execution metadata and
///    outside the determinism contract.)
///  * No allocation churn — each worker leases a ColumnScratch from a pool,
///    so per-value key-buffer allocations are amortized away across the
///    whole batch (the Detector's scratch path).
///  * Cross-column memoization — a ShardedPairCache shared by all workers
///    serves repeated value pairs (the common case in real tables) without
///    touching the per-language statistics.
///
/// Thread safety: Detect may be called concurrently from multiple threads;
/// batches share the pool, cache, and scratch pool.
///
/// Observability: the engine records serve.* metrics (batch counts/latency,
/// dispatch overhead, queue depth, worker busy time) and registers a
/// collector that publishes serve.cache.* gauges from the pair cache on
/// every registry snapshot; the collector is deregistered in the destructor.

namespace autodetect {

/// Pre-redesign name of the engine's request type; DetectRequest aggregate
/// initialization is a superset (the added `tag` member defaults), so
/// existing `ColumnRequest{name, values}` call sites compile unchanged.
using ColumnRequest = DetectRequest;

struct EngineOptions {
  size_t num_threads = 0;  ///< worker count; 0 = hardware concurrency
  /// Pair-cache budget; 0 disables caching entirely.
  size_t cache_bytes = 32ull << 20;
  size_t cache_shards = 16;
  DetectorOptions detector;
  /// Metrics destination; null means the process default registry. Also
  /// fills detector.metrics when that is null, so one field wires the whole
  /// engine to a private registry (as the benches do).
  MetricsRegistry* metrics = nullptr;
};

/// Point-in-time engine counters.
struct EngineStats {
  uint64_t batches = 0;
  uint64_t columns = 0;
  PairCacheStats cache;  ///< zeros when the cache is disabled
};

class DetectionEngine : public DetectionExecutor {
 public:
  /// \param model must outlive the engine; the engine never mutates it.
  explicit DetectionEngine(const Model* model, EngineOptions options = {});
  ~DetectionEngine() override;

  /// \brief Executes every request on the worker pool and returns one report
  /// per request, in request order (the unified-API entry point).
  std::vector<DetectReport> Detect(const std::vector<DetectRequest>& batch) override;

  /// \brief Deprecated forwarder (pre-unified-API entry point): like Detect
  /// but stripped down to the deterministic ColumnReports.
  std::vector<ColumnReport> DetectBatch(const std::vector<ColumnRequest>& batch);

  EngineStats Stats() const;

  size_t num_threads() const { return pool_.num_threads(); }
  bool cache_enabled() const { return cache_ != nullptr; }
  /// \brief The shared pair cache, null when disabled.
  const ShardedPairCache* cache() const { return cache_.get(); }
  const Detector& detector() const { return detector_; }
  const Model& model() const { return *model_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// Engine-level metric handles, resolved once at construction.
  struct Metrics {
    Counter* batches = nullptr;
    Counter* columns = nullptr;
    Counter* worker_busy_us = nullptr;  ///< summed worker wall-time in batches
    Histogram* batch_latency_us = nullptr;
    Histogram* dispatch_us = nullptr;  ///< submit-to-first-claim overhead
    Gauge* queue_depth = nullptr;      ///< columns admitted but not finished
    Gauge* workers = nullptr;
  };

  std::unique_ptr<ColumnScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<ColumnScratch> scratch);
  void PublishCacheMetrics(MetricsRegistry* registry) const;

  const Model* model_;
  EngineOptions options_;
  Detector detector_;
  std::unique_ptr<ShardedPairCache> cache_;
  ThreadPool pool_;

  MetricsRegistry* registry_;
  Metrics metrics_;
  size_t cache_collector_id_ = 0;
  bool cache_collector_registered_ = false;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<ColumnScratch>> scratch_pool_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> columns_{0};
  std::atomic<int64_t> inflight_columns_{0};
};

}  // namespace autodetect
