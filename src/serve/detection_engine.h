#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "detect/detector.h"
#include "detect/model.h"
#include "serve/pair_cache.h"

/// \file detection_engine.h
/// The serving layer: a batch detection engine that owns an immutable Model
/// snapshot and fans column requests out over a worker pool. This is the
/// deployment shape of the paper's "spell-checker for data" at service
/// scale — a request is a table's worth of columns, and the engine must
/// return exactly what the sequential Detector would, only faster.
///
/// Guarantees:
///  * Determinism — DetectBatch returns reports in request order, and every
///    report is bit-identical to Detector::AnalyzeColumn on the same values,
///    regardless of worker count, scheduling, or cache state. Workers claim
///    columns dynamically (atomic cursor) but write results into the
///    request's slot, so ordering never depends on completion order.
///  * No allocation churn — each worker leases a ColumnScratch from a pool,
///    so per-value key-buffer allocations are amortized away across the
///    whole batch (the Detector's scratch path).
///  * Cross-column memoization — a ShardedPairCache shared by all workers
///    serves repeated value pairs (the common case in real tables) without
///    touching the per-language statistics.
///
/// Thread safety: DetectBatch may be called concurrently from multiple
/// threads; batches share the pool, cache, and scratch pool.

namespace autodetect {

/// One column to scan. `name` is echoed back to callers by the CLI/eval
/// plumbing and does not influence detection.
struct ColumnRequest {
  std::string name;
  std::vector<std::string> values;
};

struct EngineOptions {
  size_t num_threads = 0;  ///< worker count; 0 = hardware concurrency
  /// Pair-cache budget; 0 disables caching entirely.
  size_t cache_bytes = 32ull << 20;
  size_t cache_shards = 16;
  DetectorOptions detector;
};

/// Point-in-time engine counters.
struct EngineStats {
  uint64_t batches = 0;
  uint64_t columns = 0;
  PairCacheStats cache;  ///< zeros when the cache is disabled
};

class DetectionEngine {
 public:
  /// \param model must outlive the engine; the engine never mutates it.
  explicit DetectionEngine(const Model* model, EngineOptions options = {});

  /// \brief Scans every requested column and returns one report per request,
  /// in request order.
  std::vector<ColumnReport> DetectBatch(const std::vector<ColumnRequest>& batch);

  EngineStats Stats() const;

  size_t num_threads() const { return pool_.num_threads(); }
  bool cache_enabled() const { return cache_ != nullptr; }
  const Detector& detector() const { return detector_; }
  const Model& model() const { return *model_; }
  const EngineOptions& options() const { return options_; }

 private:
  std::unique_ptr<ColumnScratch> AcquireScratch();
  void ReleaseScratch(std::unique_ptr<ColumnScratch> scratch);

  const Model* model_;
  EngineOptions options_;
  Detector detector_;
  std::unique_ptr<ShardedPairCache> cache_;
  ThreadPool pool_;

  std::mutex scratch_mu_;
  std::vector<std::unique_ptr<ColumnScratch>> scratch_pool_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> columns_{0};
};

}  // namespace autodetect
