#include "serve/pair_cache.h"

#include <algorithm>

#include "common/failpoint.h"

namespace autodetect {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedPairCache::ShardedPairCache(PairCacheOptions options) {
  size_t shards = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  size_t total_entries =
      std::max<size_t>(shards, options.capacity_bytes / kBytesPerEntry);
  size_t per_shard = std::max<size_t>(1, total_entries / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard;
    shard->slab.reserve(per_shard);
    shard->index.reserve(per_shard);
    shards_.push_back(std::move(shard));
  }
}

void ShardedPairCache::Shard::Unlink(uint32_t slot) {
  Entry& e = slab[slot];
  if (e.prev != kNil) {
    slab[e.prev].next = e.next;
  } else {
    mru = e.next;
  }
  if (e.next != kNil) {
    slab[e.next].prev = e.prev;
  } else {
    lru = e.prev;
  }
  e.prev = e.next = kNil;
}

void ShardedPairCache::Shard::PushFront(uint32_t slot) {
  Entry& e = slab[slot];
  e.prev = kNil;
  e.next = mru;
  if (mru != kNil) slab[mru].prev = slot;
  mru = slot;
  if (lru == kNil) lru = slot;
}

bool ShardedPairCache::Lookup(uint64_t pair_key, PairVerdict* out) {
  // Chaos: force a miss — every verdict recomputes, which must change
  // nothing but latency (the determinism contract says reports are
  // identical across cache states; this failpoint makes that testable).
  if (AD_FAILPOINT("serve.cache.miss")) {
    Shard& shard = ShardFor(pair_key);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    return false;
  }
  Shard& shard = ShardFor(pair_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(pair_key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  uint32_t slot = it->second;
  *out = shard.slab[slot].verdict;
  if (shard.mru != slot) {
    shard.Unlink(slot);
    shard.PushFront(slot);
  }
  return true;
}

void ShardedPairCache::Insert(uint64_t pair_key, const PairVerdict& verdict) {
  Shard& shard = ShardFor(pair_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.insertions;
  auto it = shard.index.find(pair_key);
  if (it != shard.index.end()) {
    uint32_t slot = it->second;
    shard.slab[slot].verdict = verdict;
    if (shard.mru != slot) {
      shard.Unlink(slot);
      shard.PushFront(slot);
    }
    return;
  }
  uint32_t slot;
  if (shard.slab.size() < shard.capacity) {
    slot = static_cast<uint32_t>(shard.slab.size());
    shard.slab.emplace_back();
  } else {
    // Evict the least-recently-used entry and reuse its slot.
    slot = shard.lru;
    shard.Unlink(slot);
    shard.index.erase(shard.slab[slot].key);
    ++shard.evictions;
  }
  Entry& e = shard.slab[slot];
  e.key = pair_key;
  e.verdict = verdict;
  shard.PushFront(slot);
  shard.index.emplace(pair_key, slot);
}

PairCacheStats ShardedPairCache::Stats() const {
  PairCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->index.size();
  }
  return stats;
}

std::vector<PairCacheStats> ShardedPairCache::PerShardStats() const {
  std::vector<PairCacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    PairCacheStats s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.insertions = shard->insertions;
    s.evictions = shard->evictions;
    s.entries = shard->index.size();
    out.push_back(s);
  }
  return out;
}

void ShardedPairCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->slab.clear();
    shard->mru = shard->lru = kNil;
  }
}

size_t ShardedPairCache::capacity_entries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->capacity;
  return total;
}

}  // namespace autodetect
