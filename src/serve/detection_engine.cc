#include "serve/detection_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace autodetect {

namespace {

/// The engine owns the wiring: a null detector.metrics (or admission
/// metrics) inherits the engine's registry so one `metrics` field redirects
/// the whole stack.
EngineOptions NormalizeOptions(EngineOptions options) {
  if (options.detector.metrics == nullptr) {
    options.detector.metrics = options.metrics;
  }
  if (options.admission.metrics == nullptr) {
    options.admission.metrics = options.metrics;
  }
  return options;
}

/// An empty report for a column admission refused: name/tag echoed, status
/// accurate, nothing scanned.
DetectReport MakeShedReport(const DetectRequest& request) {
  DetectReport report;
  report.name = request.name;
  report.tag = request.EffectiveTag();
  report.status = ColumnStatus::kShed;
  return report;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

}  // namespace

DetectionEngine::Snapshot::Snapshot(std::shared_ptr<const Model> model_in,
                                    uint64_t generation_in,
                                    const EngineOptions& options)
    : model(std::move(model_in)),
      generation(generation_in),
      detector(model.get(), options.detector) {
  if (options.cache_bytes > 0) {
    PairCacheOptions cache_opts;
    cache_opts.capacity_bytes = options.cache_bytes;
    cache_opts.num_shards = options.cache_shards;
    cache = std::make_unique<ShardedPairCache>(cache_opts);
  }
}

DetectionEngine::DetectionEngine(ModelProvider* provider, EngineOptions options)
    : provider_(provider),
      options_(NormalizeOptions(std::move(options))),
      pool_(options_.num_threads),
      registry_(OrDefaultRegistry(options_.metrics)) {
  InitCommon();
}

DetectionEngine::DetectionEngine(const Model* model, EngineOptions options)
    : owned_provider_(std::make_unique<FixedModel>(model)),
      provider_(owned_provider_.get()),
      options_(NormalizeOptions(std::move(options))),
      pool_(options_.num_threads),
      registry_(OrDefaultRegistry(options_.metrics)) {
  InitCommon();
}

void DetectionEngine::InitCommon() {
  if (options_.admission.queue_cap_columns > 0) {
    admission_ = std::make_unique<AdmissionController>(options_.admission);
  }
  metrics_.batches = registry_->GetCounter("serve.batches_total");
  metrics_.columns = registry_->GetCounter("serve.columns_total");
  metrics_.worker_busy_us = registry_->GetCounter("serve.worker_busy_us_total");
  metrics_.batch_latency_us = registry_->GetHistogram("serve.batch_latency_us");
  metrics_.dispatch_us = registry_->GetHistogram("serve.stage.dispatch_us");
  metrics_.queue_depth = registry_->GetGauge("serve.queue_depth");
  metrics_.workers = registry_->GetGauge("serve.workers");
  metrics_.workers->Set(static_cast<double>(pool_.num_threads()));
  if (options_.cache_bytes > 0) {
    // The cache's counters live behind its shard mutexes; publish them as
    // gauges lazily, at snapshot time, instead of taxing the hot path.
    cache_collector_id_ = registry_->AddCollector(
        [this](MetricsRegistry* registry) { PublishCacheMetrics(registry); });
    cache_collector_registered_ = true;
  }
  // Seed the scratch pool so steady-state batches never allocate one.
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    scratch_pool_.push_back(std::make_unique<ColumnScratch>());
  }
  // Build the first snapshot eagerly when a model is already available, so
  // the first batch pays no detector-construction latency.
  if (provider_->Snapshot() != nullptr) CurrentSnapshot();
}

DetectionEngine::~DetectionEngine() {
  // RemoveCollector blocks until in-flight snapshots have finished running
  // collectors, so the lambda can never observe a dead `this`.
  if (cache_collector_registered_) registry_->RemoveCollector(cache_collector_id_);
}

std::shared_ptr<DetectionEngine::Snapshot> DetectionEngine::CurrentSnapshot() {
  const uint64_t generation = provider_->Generation();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ == nullptr || snapshot_->generation != generation) {
    std::shared_ptr<const Model> model = provider_->Snapshot();
    AD_CHECK(model != nullptr);  // provider must be loaded before detection
    snapshot_ = std::make_shared<Snapshot>(std::move(model), generation, options_);
  }
  return snapshot_;
}

const ShardedPairCache* DetectionEngine::cache() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_ == nullptr ? nullptr : snapshot_->cache.get();
}

void DetectionEngine::PublishCacheMetrics(MetricsRegistry* registry) const {
  std::shared_ptr<Snapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot = snapshot_;
  }
  if (snapshot == nullptr || snapshot->cache == nullptr) return;
  PairCacheStats total = snapshot->cache->Stats();
  registry->GetGauge("serve.cache.hits")->Set(static_cast<double>(total.hits));
  registry->GetGauge("serve.cache.misses")->Set(static_cast<double>(total.misses));
  registry->GetGauge("serve.cache.insertions")
      ->Set(static_cast<double>(total.insertions));
  registry->GetGauge("serve.cache.evictions")
      ->Set(static_cast<double>(total.evictions));
  registry->GetGauge("serve.cache.entries")->Set(static_cast<double>(total.entries));
  registry->GetGauge("serve.cache.hit_rate")->Set(total.HitRate());
  const std::vector<PairCacheStats> shards = snapshot->cache->PerShardStats();
  for (size_t i = 0; i < shards.size(); ++i) {
    const std::string prefix = StrFormat("serve.cache.shard%zu.", i);
    registry->GetGauge(prefix + "hits")->Set(static_cast<double>(shards[i].hits));
    registry->GetGauge(prefix + "misses")->Set(static_cast<double>(shards[i].misses));
    registry->GetGauge(prefix + "entries")->Set(static_cast<double>(shards[i].entries));
  }
}

std::unique_ptr<ColumnScratch> DetectionEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      auto scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  // Concurrent batches can outnumber the seeded scratches; grow on demand.
  return std::make_unique<ColumnScratch>();
}

void DetectionEngine::ReleaseScratch(std::unique_ptr<ColumnScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

void DetectionEngine::Detect(const std::vector<DetectRequest>& batch,
                             ReportSink& sink) {
  if (batch.empty()) return;

  // Admission first: a rejected batch (kReject over capacity, kBlock
  // timeout) needs no snapshot and no workers — every column comes back
  // kShed, visibly, and the rejection shows up in serve.admission.*.
  std::shared_ptr<AdmissionController::Ticket> ticket;
  if (admission_ != nullptr) {
    ticket = admission_->Admit(batch.size());
    if (ticket == nullptr) {
      for (size_t i = 0; i < batch.size(); ++i) {
        sink.OnReport(i, MakeShedReport(batch[i]));
      }
      admission_->CountShedColumns(batch.size());
      return;
    }
  }

  // Batch-wide default deadline: one token shared by every column that has
  // no request-level token of its own (Detector prefers the request token).
  // The token owns the deadline state, so nothing here must outlive the
  // workers beyond what the completion latch already guarantees.
  CancelToken batch_cancel;
  if (options_.default_deadline_ms > 0) {
    batch_cancel = CancelSource::WithDeadline(
                       std::chrono::milliseconds(options_.default_deadline_ms))
                       .token();
  }

  // Pin one snapshot for the whole batch: a concurrent reload must not
  // split the batch across models. The shared_ptr keeps the snapshot (and
  // its mapped model file) alive even if the engine swaps mid-batch.
  const std::shared_ptr<Snapshot> snapshot = CurrentSnapshot();

  StageTimer batch_timer(metrics_.batch_latency_us);
  if (kMetricsEnabled) {
    metrics_.queue_depth->Set(static_cast<double>(
        inflight_columns_.fetch_add(static_cast<int64_t>(batch.size()),
                                    std::memory_order_relaxed) +
        static_cast<int64_t>(batch.size())));
  }

  const size_t workers = std::min(pool_.num_threads(), batch.size());

  // Per-batch completion latch: WaitIdle() would also wait on concurrent
  // batches' tasks, so each batch counts its own workers down instead.
  struct BatchState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> shed{0};  ///< columns returned kShed mid-batch
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  } state;
  state.remaining = workers;

  Snapshot* const snap = snapshot.get();
  // Raw pointer into the shared_ptr held on this frame; the completion
  // latch below keeps it valid for every worker.
  AdmissionController::Ticket* const tick = ticket.get();
  {
    StageTimer dispatch_timer(metrics_.dispatch_us);
    for (size_t w = 0; w < workers; ++w) {
      pool_.Submit([this, &batch, &sink, &state, snap, tick, &batch_cancel] {
        const auto worker_start = std::chrono::steady_clock::now();
        std::unique_ptr<ColumnScratch> scratch = AcquireScratch();
        uint64_t claimed = 0;
        while (true) {
          size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch.size()) break;
          if (tick != nullptr && tick->shed()) {
            // Shed mid-flight (a shed-oldest victim): unstarted columns
            // return immediately; columns already scanning finish normally.
            sink.OnReport(i, MakeShedReport(batch[i]));
            state.shed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (AD_FAILPOINT("serve.worker.slow")) {
            // Chaos hook: stretch one column's scan so deadline/shedding
            // races become reachable in tests.
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
          // Stream the report out the moment the column completes — this is
          // what lets the network layer frame per-column responses before
          // the batch finishes.
          sink.OnReport(i, snap->detector.Detect(batch[i], scratch.get(),
                                                 snap->cache.get(), batch_cancel));
          ++claimed;
        }
        ReleaseScratch(std::move(scratch));
        if (kMetricsEnabled && claimed > 0) {
          metrics_.worker_busy_us->Add(ElapsedUs(worker_start));
        }
        // Notify under the mutex: once the waiter observes remaining == 0 it
        // destroys `state`, so the signal must complete before the lock is
        // released — an unlocked notify could touch a dead condition variable.
        std::lock_guard<std::mutex> lock(state.mu);
        --state.remaining;
        state.done.notify_one();
      });
    }
  }
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
  }

  if (admission_ != nullptr) {
    admission_->CountShedColumns(state.shed.load(std::memory_order_relaxed));
    admission_->Release(ticket);
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  columns_.fetch_add(batch.size(), std::memory_order_relaxed);
  metrics_.batches->Add(1);
  metrics_.columns->Add(batch.size());
  if (kMetricsEnabled) {
    metrics_.queue_depth->Set(static_cast<double>(
        inflight_columns_.fetch_sub(static_cast<int64_t>(batch.size()),
                                    std::memory_order_relaxed) -
        static_cast<int64_t>(batch.size())));
  }
}

EngineStats DetectionEngine::Stats() const {
  EngineStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.columns = columns_.load(std::memory_order_relaxed);
  if (admission_ != nullptr) stats.admission = admission_->Stats();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ != nullptr && snapshot_->cache != nullptr) {
    stats.cache = snapshot_->cache->Stats();
  }
  return stats;
}

}  // namespace autodetect
