#include "serve/detection_engine.h"

#include <algorithm>
#include <condition_variable>

namespace autodetect {

DetectionEngine::DetectionEngine(const Model* model, EngineOptions options)
    : model_(model),
      options_(options),
      detector_(model, options.detector),
      pool_(options.num_threads) {
  if (options_.cache_bytes > 0) {
    PairCacheOptions cache_opts;
    cache_opts.capacity_bytes = options_.cache_bytes;
    cache_opts.num_shards = options_.cache_shards;
    cache_ = std::make_unique<ShardedPairCache>(cache_opts);
  }
  // Seed the scratch pool so steady-state batches never allocate one.
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    scratch_pool_.push_back(std::make_unique<ColumnScratch>());
  }
}

std::unique_ptr<ColumnScratch> DetectionEngine::AcquireScratch() {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      auto scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  // Concurrent batches can outnumber the seeded scratches; grow on demand.
  return std::make_unique<ColumnScratch>();
}

void DetectionEngine::ReleaseScratch(std::unique_ptr<ColumnScratch> scratch) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

std::vector<ColumnReport> DetectionEngine::DetectBatch(
    const std::vector<ColumnRequest>& batch) {
  std::vector<ColumnReport> results(batch.size());
  if (batch.empty()) return results;

  const size_t workers = std::min(pool_.num_threads(), batch.size());

  // Per-batch completion latch: WaitIdle() would also wait on concurrent
  // batches' tasks, so each batch counts its own workers down instead.
  struct BatchState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  } state;
  state.remaining = workers;

  for (size_t w = 0; w < workers; ++w) {
    pool_.Submit([this, &batch, &results, &state] {
      std::unique_ptr<ColumnScratch> scratch = AcquireScratch();
      while (true) {
        size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.size()) break;
        results[i] =
            detector_.AnalyzeColumn(batch[i].values, scratch.get(), cache_.get());
      }
      ReleaseScratch(std::move(scratch));
      // Notify under the mutex: once the waiter observes remaining == 0 it
      // destroys `state`, so the signal must complete before the lock is
      // released — an unlocked notify could touch a dead condition variable.
      std::lock_guard<std::mutex> lock(state.mu);
      --state.remaining;
      state.done.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.remaining == 0; });
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  columns_.fetch_add(batch.size(), std::memory_order_relaxed);
  return results;
}

EngineStats DetectionEngine::Stats() const {
  EngineStats stats;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.columns = columns_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) stats.cache = cache_->Stats();
  return stats;
}

}  // namespace autodetect
