#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "detect/model_provider.h"
#include "obs/metrics.h"
#include "serve/lifecycle.h"

/// \file model_registry.h
/// Hot-reloadable model lifecycle for serving. A ModelRegistry owns the
/// current `shared_ptr<const Model>` snapshot and swaps it atomically on
/// Reload: executors holding the old snapshot finish their in-flight
/// columns against it (RCU — no reader ever blocks on a reload, no column
/// ever sees a half-swapped model), while the next batch picks up the new
/// one via the bumped generation counter.
///
/// Reload fails closed: if loading the new file errors (truncated copy,
/// checksum mismatch, …) the registry keeps serving the old model and bumps
/// `model.reload.errors_total` — a bad artifact push degrades to a no-op
/// instead of an outage.
///
/// An optional watcher polls the file's mtime and reloads on change, which
/// is the `--model-watch` CLI mode: retrain offline, `mv` the new artifact
/// over the old path, and every serving process picks it up within one poll
/// interval.
///
/// Failed watcher reloads are retried on their own schedule — exponential
/// backoff with jitter (50ms doubling to a 10s cap), independent of any new
/// mtime change. Without this, a transiently bad artifact (half-copied file,
/// checksum race with the trainer's rename) would leave the registry stale
/// until the *next* artifact push; with it, the watcher converges as soon as
/// the file is whole. The jitter decorrelates fleets watching a shared path.
/// The current backoff is exported as the model.reload.backoff_ms gauge
/// (0 = healthy, polling normally).
///
/// Metrics (into the registry passed at construction):
///   model.reload.total        successful reloads (includes the first load)
///   model.reload.errors_total failed reload attempts (old model kept)
///   model.reload.backoff_ms   current watcher retry backoff (0 = healthy)
///   model.reload.latency_us   load+swap latency histogram
///   model.bytes               backing artifact bytes of the live model
///   model.generation          current snapshot generation
///
/// Failpoints (chaos builds only): registry.reload.fail makes Reload fail
/// as if the artifact were unreadable — the standard way to exercise the
/// fail-closed path and the watcher's backoff in tests.
/// registry.reload.flap is the intermittent variant (arm it with a
/// probability or hit-count spec) for driving an attached CircuitBreaker
/// through open/half-open/closed in chaos runs.
///
/// With AttachBreaker, every Reload first consults the breaker: while it is
/// open the artifact is not touched at all (typed kResourceExhausted
/// instead of another disk read), and reload outcomes feed the breaker so
/// repeated failures trip it and a successful half-open probe closes it.
/// The breaker's health-ladder coupling (when configured there) marks the
/// server degraded for exactly the open/half-open span.

namespace autodetect {

class ModelRegistry : public ModelProvider {
 public:
  /// \param metrics null means the process default registry.
  explicit ModelRegistry(MetricsRegistry* metrics = nullptr);
  ~ModelRegistry() override;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// \brief Loads `path` and atomically swaps it in as the current snapshot.
  /// On failure the previous snapshot (if any) keeps serving and the error
  /// is returned. Thread-safe; concurrent Snapshot() calls see either the
  /// old or the new model, never a mix.
  Status Reload(const std::string& path);

  /// \brief Installs an already-loaded model (tests, trained-in-process
  /// serving). Same swap semantics as Reload.
  void Install(std::shared_ptr<const Model> model);

  std::shared_ptr<const Model> Snapshot() const override;
  uint64_t Generation() const override {
    return generation_.load(std::memory_order_acquire);
  }

  /// Path of the last successful Reload ("" before the first).
  std::string path() const;

  /// \brief Starts a background thread that polls `path`'s mtime every
  /// `poll` and Reloads on change. Performs one synchronous initial load —
  /// its Status is returned, and the watcher runs regardless (the file may
  /// appear or be fixed later). No-op error if already watching.
  Status StartWatch(const std::string& path,
                    std::chrono::milliseconds poll = std::chrono::milliseconds(1000));

  /// \brief Stops the watcher thread (joins it). Safe to call when not
  /// watching. Also called by the destructor.
  void StopWatch();

  bool watching() const { return watcher_.joinable(); }

  /// \brief Routes every subsequent Reload through `breaker` (not owned;
  /// null detaches). Attach before serving starts — the pointer is read
  /// without synchronization beyond the atomic itself.
  void AttachBreaker(CircuitBreaker* breaker) {
    breaker_.store(breaker, std::memory_order_release);
  }

 private:
  void WatchLoop();
  Status ReloadAttempt(const std::string& path);
  void PublishModelMetrics(const std::shared_ptr<const Model>& model,
                           uint64_t generation);

  mutable std::mutex mu_;  ///< guards model_ and path_
  std::shared_ptr<const Model> model_;
  std::string path_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<CircuitBreaker*> breaker_{nullptr};

  std::mutex watch_mu_;  ///< guards stop + cv for the watcher thread
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  std::thread watcher_;
  std::string watch_path_;
  std::chrono::milliseconds watch_poll_{1000};
  std::filesystem::file_time_type watch_mtime_{};

  Counter* reload_total_;
  Counter* reload_errors_;
  Histogram* reload_latency_us_;
  Gauge* reload_backoff_ms_;
  Gauge* model_bytes_;
  Gauge* model_generation_;
  Gauge* sketch_bytes_;      ///< model.sketch.bytes — live sketch counters
  Gauge* sketch_languages_;  ///< model.sketch.languages
  Gauge* sketch_width_;      ///< model.sketch.width (widest language)
  Gauge* sketch_depth_;      ///< model.sketch.depth (deepest language)
};

/// Interface-style name for the registry-backed provider (the counterpart
/// of FixedModel in the ModelProvider family).
using RegistryModel = ModelRegistry;

}  // namespace autodetect
