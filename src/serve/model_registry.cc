#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/random.h"
#include "obs/trace.h"

namespace autodetect {

namespace fs = std::filesystem;

namespace {

/// Watcher retry backoff: first retry after ~kBackoffBaseMs, doubling to
/// kBackoffMaxMs, each jittered into [base/2, base] so a fleet of watchers
/// pointed at one shared artifact does not retry in lockstep.
constexpr int64_t kBackoffBaseMs = 50;
constexpr int64_t kBackoffMaxMs = 10'000;

}  // namespace

ModelRegistry::ModelRegistry(MetricsRegistry* metrics) {
  MetricsRegistry* registry = OrDefaultRegistry(metrics);
  reload_total_ = registry->GetCounter("model.reload.total");
  reload_errors_ = registry->GetCounter("model.reload.errors_total");
  reload_latency_us_ = registry->GetHistogram("model.reload.latency_us");
  reload_backoff_ms_ = registry->GetGauge("model.reload.backoff_ms");
  model_bytes_ = registry->GetGauge("model.bytes");
  model_generation_ = registry->GetGauge("model.generation");
  sketch_bytes_ = registry->GetGauge("model.sketch.bytes");
  sketch_languages_ = registry->GetGauge("model.sketch.languages");
  sketch_width_ = registry->GetGauge("model.sketch.width");
  sketch_depth_ = registry->GetGauge("model.sketch.depth");
}

ModelRegistry::~ModelRegistry() { StopWatch(); }

void ModelRegistry::PublishModelMetrics(const std::shared_ptr<const Model>& model,
                                        uint64_t generation) {
  // FileBytes is the artifact size for mapped v2 models; v1/installed models
  // have no backing file, so fall back to the estimated resident size.
  size_t bytes = model->FileBytes();
  if (bytes == 0) bytes = model->MemoryBytes();
  model_bytes_->Set(static_cast<double>(bytes));
  model_generation_->Set(static_cast<double>(generation));
  // Sketch footprint of the served model: all zeros for exact-only models,
  // refreshed on every swap so a hot reload from exact to sketched (or
  // back) is visible in dumps immediately.
  const ModelSketchInfo sketch = model->SketchInfo();
  sketch_bytes_->Set(static_cast<double>(sketch.bytes));
  sketch_languages_->Set(static_cast<double>(sketch.languages));
  sketch_width_->Set(static_cast<double>(sketch.width));
  sketch_depth_->Set(static_cast<double>(sketch.depth));
}

Status ModelRegistry::Reload(const std::string& path) {
  CircuitBreaker* breaker = breaker_.load(std::memory_order_acquire);
  if (breaker != nullptr && !breaker->Allow()) {
    // Open breaker: the recent reloads all failed, so stop hammering the
    // disk — the artifact is not touched until the probe window elapses.
    return Status::ResourceExhausted(
        "model-reload circuit breaker open; not rereading " + path);
  }
  Status attempt = ReloadAttempt(path);
  if (breaker != nullptr) {
    if (attempt.ok()) {
      breaker->RecordSuccess();
    } else {
      breaker->RecordFailure();
    }
  }
  return attempt;
}

Status ModelRegistry::ReloadAttempt(const std::string& path) {
  StageTimer timer(reload_latency_us_);
  if (AD_FAILPOINT("registry.reload.fail")) {
    reload_errors_->Add(1);
    return Status::IOError("failpoint registry.reload.fail: artifact unreadable")
        .WithContext("reloading model from " + path);
  }
  if (AD_FAILPOINT("registry.reload.flap")) {
    reload_errors_->Add(1);
    return Status::IOError(
               "failpoint registry.reload.flap: transient reload failure")
        .WithContext("reloading model from " + path);
  }
  Result<Model> loaded = Model::Load(path);
  if (!loaded.ok()) {
    reload_errors_->Add(1);
    return loaded.status().WithContext("reloading model from " + path);
  }
  auto model = std::make_shared<const Model>(std::move(loaded).ValueOrDie());
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = model;
    path_ = path;
    // Release-publish after the snapshot is in place: an executor that sees
    // the new generation is guaranteed to read the new model.
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  reload_total_->Add(1);
  PublishModelMetrics(model, generation);
  return Status::OK();
}

void ModelRegistry::Install(std::shared_ptr<const Model> model) {
  AD_CHECK(model != nullptr);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = model;
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  reload_total_->Add(1);
  PublishModelMetrics(model, generation);
}

std::shared_ptr<const Model> ModelRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

std::string ModelRegistry::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

Status ModelRegistry::StartWatch(const std::string& path,
                                 std::chrono::milliseconds poll) {
  if (watcher_.joinable()) return Status::Invalid("already watching");
  watch_path_ = path;
  watch_poll_ = poll;
  std::error_code ec;
  watch_mtime_ = fs::last_write_time(path, ec);  // epoch on error; retried below
  Status initial = Reload(path);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = false;
  }
  watcher_ = std::thread([this] { WatchLoop(); });
  return initial;
}

void ModelRegistry::StopWatch() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  watcher_.join();
}

void ModelRegistry::WatchLoop() {
  // Backoff state is watcher-local: `failures` drives the exponential base,
  // `backoff` is the jittered wait actually in effect (zero = healthy).
  // Seeded from `this` so concurrent registries in one process jitter
  // independently; reproducibility does not matter for retry spacing.
  Pcg32 jitter(reinterpret_cast<uintptr_t>(this) | 1u);
  int failures = 0;
  std::chrono::milliseconds backoff{0};
  while (true) {
    const std::chrono::milliseconds wait =
        backoff.count() > 0 ? backoff : watch_poll_;
    {
      std::unique_lock<std::mutex> lock(watch_mu_);
      if (watch_cv_.wait_for(lock, wait, [this] { return watch_stop_; })) {
        return;
      }
    }
    std::error_code ec;
    fs::file_time_type mtime = fs::last_write_time(watch_path_, ec);
    if (ec) continue;  // file briefly absent mid-swap; try again next poll
    // A pending backoff retries even without a new mtime — the common
    // failure is a half-written artifact that becomes whole under the same
    // timestamp granule, and waiting for the next push would serve stale.
    if (mtime == watch_mtime_ && backoff.count() == 0) continue;
    watch_mtime_ = mtime;
    Status status = Reload(watch_path_);
    if (status.ok()) {
      failures = 0;
      backoff = std::chrono::milliseconds{0};
      reload_backoff_ms_->Set(0);
      continue;
    }
    // Reload counted the error and kept the old snapshot; schedule a retry.
    const int64_t base =
        std::min(kBackoffMaxMs, kBackoffBaseMs << std::min(failures, 20));
    failures = std::min(failures + 1, 20);
    const int64_t jittered = jitter.Uniform(base / 2, base);
    backoff = std::chrono::milliseconds{jittered};
    reload_backoff_ms_->Set(static_cast<double>(jittered));
  }
}

}  // namespace autodetect
