#include "serve/model_registry.h"

#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace autodetect {

namespace fs = std::filesystem;

ModelRegistry::ModelRegistry(MetricsRegistry* metrics) {
  MetricsRegistry* registry = OrDefaultRegistry(metrics);
  reload_total_ = registry->GetCounter("model.reload.total");
  reload_errors_ = registry->GetCounter("model.reload.errors_total");
  reload_latency_us_ = registry->GetHistogram("model.reload.latency_us");
  model_bytes_ = registry->GetGauge("model.bytes");
  model_generation_ = registry->GetGauge("model.generation");
}

ModelRegistry::~ModelRegistry() { StopWatch(); }

void ModelRegistry::PublishModelMetrics(const std::shared_ptr<const Model>& model,
                                        uint64_t generation) {
  // FileBytes is the artifact size for mapped v2 models; v1/installed models
  // have no backing file, so fall back to the estimated resident size.
  size_t bytes = model->FileBytes();
  if (bytes == 0) bytes = model->MemoryBytes();
  model_bytes_->Set(static_cast<double>(bytes));
  model_generation_->Set(static_cast<double>(generation));
}

Status ModelRegistry::Reload(const std::string& path) {
  StageTimer timer(reload_latency_us_);
  Result<Model> loaded = Model::Load(path);
  if (!loaded.ok()) {
    reload_errors_->Add(1);
    return loaded.status().WithContext("reloading model from " + path);
  }
  auto model = std::make_shared<const Model>(std::move(loaded).ValueOrDie());
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = model;
    path_ = path;
    // Release-publish after the snapshot is in place: an executor that sees
    // the new generation is guaranteed to read the new model.
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  reload_total_->Add(1);
  PublishModelMetrics(model, generation);
  return Status::OK();
}

void ModelRegistry::Install(std::shared_ptr<const Model> model) {
  AD_CHECK(model != nullptr);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model_ = model;
    generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  reload_total_->Add(1);
  PublishModelMetrics(model, generation);
}

std::shared_ptr<const Model> ModelRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

std::string ModelRegistry::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

Status ModelRegistry::StartWatch(const std::string& path,
                                 std::chrono::milliseconds poll) {
  if (watcher_.joinable()) return Status::Invalid("already watching");
  watch_path_ = path;
  watch_poll_ = poll;
  std::error_code ec;
  watch_mtime_ = fs::last_write_time(path, ec);  // epoch on error; retried below
  Status initial = Reload(path);
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = false;
  }
  watcher_ = std::thread([this] { WatchLoop(); });
  return initial;
}

void ModelRegistry::StopWatch() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  watcher_.join();
}

void ModelRegistry::WatchLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watch_mu_);
      if (watch_cv_.wait_for(lock, watch_poll_, [this] { return watch_stop_; })) {
        return;
      }
    }
    std::error_code ec;
    fs::file_time_type mtime = fs::last_write_time(watch_path_, ec);
    if (ec) continue;  // file briefly absent mid-swap; try again next poll
    if (mtime == watch_mtime_) continue;
    watch_mtime_ = mtime;
    // Reload already counts errors and keeps the old snapshot on failure;
    // nothing further to do here — the next mtime change retries.
    Status status = Reload(watch_path_);
    (void)status;
  }
}

}  // namespace autodetect
