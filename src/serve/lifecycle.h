#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "obs/metrics.h"

/// \file lifecycle.h
/// Server lifecycle & overload defense: the layer that turns a fast server
/// into an operable one. Four cooperating pieces (see DESIGN.md §16):
///
///   MemoryBudget    per-request and global byte budgets charged at wire
///                   decode and column materialization. Over budget is a
///                   typed kResourceExhausted rejection — never an OOM.
///   HealthLadder    healthy → degraded → draining → unhealthy, driven by
///                   named conditions and surfaced via /healthz and the
///                   serve.health.state gauge.
///   Watchdog        a sampling thread that watches dispatch tasks and
///                   acceptor-loop heartbeats; a task stuck past the wedge
///                   timeout flips the ladder to degraded, a silent
///                   acceptor loop flips it to unhealthy. Both recover
///                   automatically when the stall clears.
///   CircuitBreaker  closed/open/half-open around retryable dependencies
///                   (model hot-reload); repeated failures stop the retry
///                   hammering and mark the ladder degraded until a probe
///                   succeeds. Probe scheduling is deterministic (PCG
///                   seeded from the breaker name, the failpoint RNG
///                   discipline) so chaos runs replay exactly.
///
/// All components are thread-safe and metric-instrumented; all accept a
/// null MetricsRegistry meaning the process default.

namespace autodetect {

// ---------------------------------------------------------------------------
// MemoryBudget

struct MemoryBudgetOptions {
  /// Total bytes chargeable across all in-flight requests. 0 = unlimited.
  size_t global_bytes = 0;
  /// Bytes one request may charge (wire frame + materialized columns).
  /// 0 = unlimited.
  size_t per_request_bytes = 0;
  /// Metrics destination; null means the process default registry.
  MetricsRegistry* metrics = nullptr;
};

/// Byte-budget accounting for the serving path. Charging is two-phase:
/// `Admit` at wire-decode time (the frame's claimed payload size), then
/// `Charge::Extend` as columns materialize. Both fail softly — the caller
/// turns a refusal into a typed error frame / HTTP 503, the process never
/// allocates past the budget on the request path.
///
/// Metrics: serve.mem.inflight_bytes (gauge), serve.mem.peak_bytes (gauge),
/// serve.mem.rejected_total (counter).
class MemoryBudget {
 public:
  /// RAII handle for one request's charged bytes; releases on destruction.
  /// Movable, not copyable. A default-constructed Charge is empty (budget
  /// disabled) — Extend on it always succeeds.
  class Charge {
   public:
    Charge() = default;
    ~Charge() { Release(); }
    Charge(const Charge&) = delete;
    Charge& operator=(const Charge&) = delete;
    Charge(Charge&& other) noexcept
        : budget_(other.budget_), bytes_(other.bytes_) {
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    Charge& operator=(Charge&& other) noexcept {
      if (this != &other) {
        Release();
        budget_ = other.budget_;
        bytes_ = other.bytes_;
        other.budget_ = nullptr;
        other.bytes_ = 0;
      }
      return *this;
    }

    /// \brief Charges `more_bytes` on top of the admitted amount. Returns
    /// false (charge unchanged, rejection counted) when the extension would
    /// exceed the per-request or global budget.
    bool Extend(size_t more_bytes);

    /// \brief Returns this charge's bytes to the budget. Idempotent.
    void Release();

    size_t bytes() const { return bytes_; }

   private:
    friend class MemoryBudget;
    Charge(MemoryBudget* budget, size_t bytes)
        : budget_(budget), bytes_(bytes) {}
    MemoryBudget* budget_ = nullptr;
    size_t bytes_ = 0;
  };

  explicit MemoryBudget(MemoryBudgetOptions options = {});

  /// \brief Admits a request claiming `bytes`. kResourceExhausted when the
  /// claim exceeds the per-request budget or does not fit in the global
  /// budget right now (the latter is retryable — the error message says so).
  Result<Charge> Admit(size_t bytes);

  /// \brief True when a claim of `bytes` can never be admitted (exceeds the
  /// per-request cap). Lets the wire loop reject a hostile length prefix
  /// from the 5-byte frame header alone, before buffering the payload.
  bool WouldExceedPerRequest(size_t bytes) const {
    return options_.per_request_bytes != 0 &&
           bytes > options_.per_request_bytes;
  }

  size_t inflight_bytes() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t rejected_total() const {
    return rejected_count_.load(std::memory_order_relaxed);
  }
  bool enabled() const {
    return options_.global_bytes != 0 || options_.per_request_bytes != 0;
  }
  const MemoryBudgetOptions& options() const { return options_; }

 private:
  /// Reserves `bytes` against the global budget; false when it doesn't fit.
  bool TryReserve(size_t bytes);
  void Unreserve(size_t bytes);
  void CountRejection();

  MemoryBudgetOptions options_;
  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> rejected_count_{0};
  Counter* rejected_metric_ = nullptr;
  Gauge* inflight_metric_ = nullptr;
  Gauge* peak_metric_ = nullptr;
};

// ---------------------------------------------------------------------------
// HealthLadder

enum class HealthState : uint8_t {
  kHealthy = 0,
  kDegraded = 1,   ///< serving, but a condition is active (wedge, breaker)
  kDraining = 2,   ///< shutting down; finishing in-flight, refusing new work
  kUnhealthy = 3,  ///< not serving (acceptor loop stalled)
};

std::string_view HealthStateName(HealthState state);

/// Aggregates named conditions into one server health state. Severity is
/// ordered unhealthy > draining > degraded > healthy; draining is sticky
/// (a drain never un-drains), conditions set and clear freely. /healthz
/// returns 200 while Serving() and 503 otherwise; the numeric state is
/// exported as the serve.health.state gauge on every transition.
class HealthLadder {
 public:
  explicit HealthLadder(MetricsRegistry* metrics = nullptr);

  /// \brief Activates/clears a degraded-severity condition (e.g.
  /// "worker-wedged", "breaker:model-reload").
  void SetCondition(std::string_view name, bool active);
  /// \brief Activates/clears an unhealthy-severity condition (e.g.
  /// "acceptor-stalled").
  void SetUnhealthyCondition(std::string_view name, bool active);
  /// \brief Enters draining; irreversible for this ladder's lifetime.
  void SetDraining();

  HealthState state() const;
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// \brief True when /healthz should answer 200 (healthy or degraded).
  bool Serving() const {
    HealthState s = state();
    return s == HealthState::kHealthy || s == HealthState::kDegraded;
  }
  /// \brief {"state": "...", "draining": bool, "conditions": [...]} with
  /// conditions sorted for deterministic output.
  std::string ToJson() const;

 private:
  void PublishLocked();

  MetricsRegistry* metrics_;
  Gauge* state_metric_ = nullptr;
  mutable std::mutex mu_;
  std::set<std::string> degraded_;
  std::set<std::string> unhealthy_;
  std::atomic<bool> draining_{false};
};

// ---------------------------------------------------------------------------
// Watchdog

struct WatchdogOptions {
  /// Sampling period of the watchdog thread.
  uint64_t interval_ms = 100;
  /// A dispatch task running longer than this is wedged (degraded). Size as
  /// N × the request deadline — a wedged worker is one that outlived any
  /// deadline that should have bounded it.
  uint64_t wedge_timeout_ms = 5000;
  /// An acceptor loop whose heartbeat is older than this is stalled
  /// (unhealthy — the server cannot accept work).
  uint64_t stall_timeout_ms = 5000;
  /// Ladder to drive; null = detection only (Stats still reflect wedges).
  HealthLadder* health = nullptr;
  /// Metrics destination; null means the process default registry.
  MetricsRegistry* metrics = nullptr;
};

/// Watchdog over the serving threads. Dispatch work brackets itself in a
/// TaskScope; event loops call Beat() once per iteration. A sampling thread
/// (or CheckNow() in tests) compares both against the timeouts and drives
/// the health ladder: wedged task ⇒ "worker-wedged" degraded condition,
/// stalled loop ⇒ "acceptor-stalled" unhealthy condition. Conditions clear
/// on the first check after the stall resolves — health recovers without a
/// restart.
///
/// Metrics: serve.watchdog.checks_total, serve.watchdog.wedged_tasks
/// (gauge), serve.watchdog.stalled_loops (gauge).
class Watchdog {
 public:
  /// Null-safe RAII bracket around one unit of dispatch work.
  class TaskScope {
   public:
    TaskScope(Watchdog* dog, const char* kind);
    ~TaskScope();
    TaskScope(const TaskScope&) = delete;
    TaskScope& operator=(const TaskScope&) = delete;

   private:
    Watchdog* dog_ = nullptr;
    uint64_t id_ = 0;
  };

  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();

  void Start();
  void Stop();

  /// \brief Registers a heartbeat slot for a loop thread; the returned id is
  /// stable for the watchdog's lifetime. The slot starts "fresh" so a loop
  /// is only stalled relative to its own last Beat.
  size_t RegisterHeartbeat(std::string name);
  void Beat(size_t id);

  /// \brief Runs one sampling pass synchronously (deterministic for tests;
  /// also what the background thread calls each interval).
  void CheckNow();

  size_t wedged_tasks() const {
    return wedged_now_.load(std::memory_order_relaxed);
  }
  size_t stalled_loops() const {
    return stalled_now_.load(std::memory_order_relaxed);
  }
  const WatchdogOptions& options() const { return options_; }

 private:
  uint64_t BeginTask(const char* kind);
  void EndTask(uint64_t id);
  static int64_t NowMs();

  WatchdogOptions options_;
  Counter* checks_metric_ = nullptr;
  Gauge* wedged_metric_ = nullptr;
  Gauge* stalled_metric_ = nullptr;

  struct Task {
    const char* kind;
    int64_t started_ms;
  };
  struct Heartbeat {
    std::string name;
    std::atomic<int64_t> last_ms{0};
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Task> tasks_;
  uint64_t next_task_id_ = 1;
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;

  std::atomic<size_t> wedged_now_{0};
  std::atomic<size_t> stalled_now_{0};

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stopping_ = false;
  std::thread thread_;
  bool started_ = false;
};

// ---------------------------------------------------------------------------
// CircuitBreaker

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  size_t failure_threshold = 3;
  /// First open window; doubles per consecutive trip up to open_max_ms,
  /// jittered into [w/2, w] by a PCG stream seeded from `name` so probe
  /// timing replays deterministically (the failpoint RNG discipline).
  uint64_t open_base_ms = 100;
  uint64_t open_max_ms = 10000;
  /// Breaker name: seeds the jitter stream, suffixes the metrics
  /// (serve.breaker.<name>.*) and the ladder condition ("breaker:<name>").
  std::string name = "breaker";
  /// Ladder to mark degraded while the breaker is open; null = none.
  HealthLadder* health = nullptr;
  /// Metrics destination; null means the process default registry.
  MetricsRegistry* metrics = nullptr;
};

/// Classic closed/open/half-open circuit breaker for retryable dependencies.
/// Callers ask Allow() before each attempt and report the outcome:
///
///   closed     every attempt allowed; `failure_threshold` consecutive
///              failures trip it open.
///   open       attempts are refused until the jittered window elapses;
///              the first Allow() after that becomes the half-open probe.
///   half-open  exactly one probe is in flight; success closes the breaker
///              (window resets), failure re-opens with a doubled window.
///
/// Metrics: serve.breaker.<name>.state (gauge), .open_total, .rejected_total.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// \brief True when the caller may attempt the protected operation. A
  /// true return from the open state means this caller holds the half-open
  /// probe and MUST report RecordSuccess/RecordFailure.
  bool Allow();
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  /// Current open-window length (for tests).
  uint64_t open_window_ms() const;
  uint64_t open_total() const {
    return open_count_.load(std::memory_order_relaxed);
  }
  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void TripLocked(int64_t now_ms);
  void PublishLocked();
  static int64_t NowMs();

  CircuitBreakerOptions options_;
  Counter* open_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Gauge* state_metric_ = nullptr;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  size_t consecutive_failures_ = 0;
  size_t consecutive_trips_ = 0;
  uint64_t window_ms_ = 0;
  int64_t reopen_at_ms_ = 0;
  Pcg32 rng_;
  std::atomic<uint64_t> open_count_{0};
};

}  // namespace autodetect
