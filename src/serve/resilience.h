#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/metrics.h"

/// \file resilience.h
/// Admission control for the serving layer: the component that stands
/// between callers and the DetectionEngine and decides, per batch, whether
/// the engine should take on more work. Without it, overload has exactly one
/// behaviour — every caller blocks while the worker pool grinds through an
/// unbounded backlog; with it, overload degrades by policy:
///
///   kBlock      callers wait for capacity up to a timeout, then the batch
///               is rejected (backpressure with a bound — the default).
///   kShedOldest the newest batch is admitted immediately and the oldest
///               in-flight batches are marked shed; their remaining columns
///               return ColumnStatus::kShed without being scanned, freeing
///               capacity within one column's latency (freshness wins).
///   kReject     over capacity, new batches are refused outright and every
///               column reports kShed (fail-fast for callers with their own
///               retry budget).
///
/// Capacity is counted in columns (the engine's unit of work), admitted at
/// batch granularity. A batch larger than the cap is admitted alone when
/// nothing else is in flight — a cap should bound the backlog, not make big
/// tables unscannable.
///
/// Shedding is cooperative, mirroring cancellation: a ticket carries an
/// atomic shed flag the engine polls before scanning each column. Columns
/// already being scanned finish (their scratch stays valid); unstarted ones
/// return immediately with an accurate status. Nothing is ever dropped
/// silently — a shed column is visible in its report AND in the
/// serve.admission.* counters.
///
/// Metrics (into the registry passed in options):
///   serve.admission.admitted_total       batches admitted
///   serve.admission.rejected_total       batches refused (reject/timeout)
///   serve.admission.shed_columns_total   columns returned kShed
///   serve.admission.block_timeouts_total kBlock waits that hit the timeout
///   serve.admission.queue_wait_us        histogram of admission wait time
///   serve.admission.inflight_columns     gauge of admitted, unreleased work

namespace autodetect {

enum class AdmissionPolicy : uint8_t {
  kBlock = 0,   ///< wait for capacity up to block_timeout_ms, then reject
  kShedOldest,  ///< admit now; shed oldest in-flight batches to make room
  kReject,      ///< refuse immediately when over capacity
};

std::string_view AdmissionPolicyName(AdmissionPolicy policy);
/// Parses "block" | "shed-oldest" | "reject" (the CLI spellings).
Result<AdmissionPolicy> ParseAdmissionPolicy(std::string_view name);

struct AdmissionOptions {
  /// Column capacity across all in-flight batches. 0 disables admission
  /// control entirely (every batch is admitted, nothing is tracked).
  size_t queue_cap_columns = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// kBlock only: longest a caller waits for capacity before the batch is
  /// rejected.
  uint64_t block_timeout_ms = 1000;
  /// Metrics destination; null means the process default registry.
  MetricsRegistry* metrics = nullptr;
  /// Metric-name prefix, must end with '.'. The engine-global controller
  /// keeps the default; the network server's per-tenant controllers use
  /// "serve.admission.tenant.<name>." so shed/reject counts are
  /// attributable per tenant.
  std::string metric_prefix = "serve.admission.";
};

/// Point-in-time admission counters.
struct AdmissionStats {
  uint64_t admitted = 0;        ///< batches
  uint64_t rejected = 0;        ///< batches
  uint64_t shed_columns = 0;    ///< columns marked shed (victims + rejects)
  uint64_t block_timeouts = 0;  ///< kBlock waits that expired
  size_t inflight_columns = 0;  ///< live admitted work
};

class AdmissionController {
 public:
  /// One admitted batch's handle. The engine polls shed() before each
  /// column; the controller's shed-oldest policy flips it. Thread-safe.
  class Ticket {
   public:
    bool shed() const { return shed_.load(std::memory_order_relaxed); }
    size_t columns() const { return columns_; }

   private:
    friend class AdmissionController;
    explicit Ticket(size_t columns) : columns_(columns) {}
    std::atomic<bool> shed_{false};
    size_t columns_;
    uint64_t seq_ = 0;  ///< admission order, for oldest-first shedding
  };

  explicit AdmissionController(AdmissionOptions options = {});

  /// \brief Asks to admit a batch of `columns`. Returns a live ticket, or
  /// null when the batch was rejected (kReject over capacity, or kBlock
  /// timeout) — the caller then reports every column kShed. Never returns
  /// null under kShedOldest. Thread-safe.
  std::shared_ptr<Ticket> Admit(size_t columns);

  /// \brief Returns a ticket's capacity. Must be called exactly once per
  /// successful Admit, after the batch finishes (shed or not).
  void Release(const std::shared_ptr<Ticket>& ticket);

  /// \brief Counts `n` columns that came back kShed (ticket shed flag or a
  /// rejected batch) — keeps the shed accounting in one place.
  void CountShedColumns(size_t n);

  AdmissionStats Stats() const;
  const AdmissionOptions& options() const { return options_; }
  bool enabled() const { return options_.queue_cap_columns > 0; }

 private:
  /// Live (admitted, unreleased) column count, excluding shed tickets.
  size_t LiveColumnsLocked() const;
  /// Marks oldest live tickets shed until `needed` columns fit. Lock held.
  void ShedOldestLocked(size_t needed);

  AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable capacity_cv_;
  std::deque<std::shared_ptr<Ticket>> live_;  ///< admission order
  uint64_t next_seq_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_columns_{0};
  std::atomic<uint64_t> block_timeouts_{0};

  struct Metrics {
    Counter* admitted = nullptr;
    Counter* rejected = nullptr;
    Counter* shed_columns = nullptr;
    Counter* block_timeouts = nullptr;
    Histogram* queue_wait_us = nullptr;
    Gauge* inflight_columns = nullptr;
  };
  Metrics metrics_;
};

}  // namespace autodetect
