#include "stats/npmi.h"

#include <algorithm>
#include <cmath>

namespace autodetect {

double NpmiScorer::SmoothedCoCount(uint64_t key1, uint64_t key2) const {
  double observed = static_cast<double>(stats_->CoCount(key1, key2));
  if (f_ <= 0.0) return observed;
  double n = static_cast<double>(stats_->num_columns());
  if (n <= 0) return observed;
  double expected = static_cast<double>(stats_->Count(key1)) *
                    static_cast<double>(stats_->Count(key2)) / n;
  return (1.0 - f_) * observed + f_ * expected;
}

double NpmiScorer::Score(uint64_t key1, uint64_t key2, ScoreDetail* detail) const {
  const double n = static_cast<double>(stats_->num_columns());
  if (n <= 0) return -1.0;
  const double c1 = static_cast<double>(stats_->Count(key1));
  const double c2 = static_cast<double>(stats_->Count(key2));
  // Identical patterns are perfectly compatible whenever they exist at all
  // (two values indistinguishable under L carry no incompatibility signal).
  if (key1 == key2 && c1 > 0) return 1.0;
  if (c1 < static_cast<double>(min_support_) &&
      c2 < static_cast<double>(min_support_)) {
    if (detail != nullptr) detail->rare_fallback = true;
    return 0.0;  // both patterns too rare: no reliable evidence either way
  }
  if (c1 <= 0 || c2 <= 0) return -1.0;

  // Co-occurrence deficit gate (see kDeficitRatio).
  const double raw_c12 = static_cast<double>(stats_->CoCount(key1, key2));
  const double expectation = c1 * c2 / n;
  const bool deficit = raw_c12 < kDeficitRatio * expectation;

  const double c12 = SmoothedCoCount(key1, key2);
  if (c12 <= 0) return deficit ? -1.0 : 0.0;

  const double p1 = c1 / n;
  const double p2 = c2 / n;
  // Smoothed co-count can exceed min(c1, c2) only through rounding noise;
  // clamp the joint probability into a consistent range.
  const double p12 = std::min(c12 / n, std::min(p1, p2));

  if (p12 >= 1.0) return 1.0;  // co-occur in every column

  const double pmi = std::log(p12 / (p1 * p2));
  const double denom = -std::log(p12);
  if (denom <= 0) return 1.0;
  double npmi = std::clamp(pmi / denom, -1.0, 1.0);
  if (!deficit && npmi < 0) return 0.0;
  return npmi;
}

double NpmiOfValues(std::string_view v1, std::string_view v2,
                    const GeneralizationLanguage& lang, const LanguageStats& stats,
                    double smoothing_factor) {
  NpmiScorer scorer(&stats, smoothing_factor);
  return scorer.Score(GeneralizeToKey(v1, lang), GeneralizeToKey(v2, lang));
}

}  // namespace autodetect
