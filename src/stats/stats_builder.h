#pragma once

#include <map>
#include <vector>

#include "common/result.h"
#include "corpus/column_source.h"
#include "obs/metrics.h"
#include "stats/language_stats.h"
#include "text/language.h"
#include "text/pattern.h"

/// \file stats_builder.h
/// Builds per-language corpus statistics for many candidate languages in one
/// streaming pass over a column source, parallelized across languages. This
/// is the "training" half of Auto-Detect's offline phase (the other half —
/// calibration and selection — lives in src/train).

namespace autodetect {

struct StatsBuilderOptions {
  /// Ids into LanguageSpace::All(); empty means all 144 candidates.
  std::vector<int> language_ids;
  /// Distinct raw values per column fed to pattern counting; columns with
  /// more distinct values are subsampled deterministically. Bounds the
  /// quadratic pair blow-up per column.
  size_t max_distinct_values_per_column = 48;
  /// Distinct *patterns* per column per language; the co-occurrence pair
  /// count per column is at most this choose 2.
  size_t max_distinct_patterns_per_column = 24;
  size_t num_threads = 0;  ///< 0 = hardware concurrency
  size_t batch_columns = 2048;
  GeneralizeOptions generalize_options;
  /// Metrics destination (train.* series); null means the process default.
  MetricsRegistry* metrics = nullptr;
};

/// \brief Statistics for a set of languages over one corpus.
class CorpusStats {
 public:
  bool Has(int lang_id) const { return per_language_.count(lang_id) > 0; }
  const LanguageStats& ForLanguage(int lang_id) const;
  LanguageStats& MutableForLanguage(int lang_id);

  std::vector<int> LanguageIds() const;
  /// \brief Adds stats for `lang_id`. If the language already exists the two
  /// are merged additively (disjoint column sets, LanguageStats::Merge);
  /// inserting over an existing language that cannot be merged (either side
  /// frozen or sketch-compressed) is a checked programming error — never a
  /// silent overwrite.
  void Insert(int lang_id, LanguageStats stats);
  /// Drops all languages except `keep` (used after selection to shed the
  /// memory of unselected candidates). Debug builds assert every kept id
  /// actually exists — a typo'd id silently shrinking the candidate set is
  /// how selection bugs hide.
  void Retain(const std::vector<int>& keep);

  /// \brief Canonicalizes every language's dictionaries (see
  /// LanguageStats::Canonicalize): afterwards serialized/frozen bytes depend
  /// only on the counts, not on how they were accumulated or merged.
  void Canonicalize();

  /// \brief Materializes every language's hash-deferred dictionaries (see
  /// LanguageStats::EnsureHashed). Deserialize defers the probe-array
  /// builds; the training session calls this at its first point-query stage
  /// so statistics that are only merged and re-serialized never pay them.
  void EnsureHashed();

  void Serialize(BinaryWriter* writer) const;
  static Result<CorpusStats> Deserialize(BinaryReader* reader);

 private:
  std::map<int, LanguageStats> per_language_;
};

/// \brief Streams `source` once and builds statistics for every requested
/// language. Deterministic for a given source and options.
CorpusStats BuildCorpusStats(ColumnSource* source, const StatsBuilderOptions& options);

/// \brief The distinct-value preprocessing used per column (exposed for
/// tests and for the distant-supervision module, which must mirror it):
/// order-preserving dedupe, then deterministic subsample to `max_distinct`.
std::vector<std::string> DistinctValuesForStats(const std::vector<std::string>& values,
                                                size_t max_distinct);

}  // namespace autodetect
