#include "stats/stats_builder.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace autodetect {

const LanguageStats& CorpusStats::ForLanguage(int lang_id) const {
  auto it = per_language_.find(lang_id);
  AD_CHECK(it != per_language_.end()) << "no stats for language " << lang_id;
  return it->second;
}

LanguageStats& CorpusStats::MutableForLanguage(int lang_id) {
  auto it = per_language_.find(lang_id);
  AD_CHECK(it != per_language_.end()) << "no stats for language " << lang_id;
  return it->second;
}

std::vector<int> CorpusStats::LanguageIds() const {
  std::vector<int> ids;
  ids.reserve(per_language_.size());
  for (const auto& [id, _] : per_language_) ids.push_back(id);
  return ids;
}

void CorpusStats::Insert(int lang_id, LanguageStats stats) {
  per_language_[lang_id] = std::move(stats);
}

void CorpusStats::Retain(const std::vector<int>& keep) {
  std::map<int, LanguageStats> kept;
  for (int id : keep) {
    auto it = per_language_.find(id);
    if (it != per_language_.end()) kept[id] = std::move(it->second);
  }
  per_language_ = std::move(kept);
}

void CorpusStats::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(per_language_.size());
  for (const auto& [id, stats] : per_language_) {
    writer->WriteU32(static_cast<uint32_t>(id));
    stats.Serialize(writer);
  }
}

Result<CorpusStats> CorpusStats::Deserialize(BinaryReader* reader) {
  CorpusStats out;
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 100000) return Status::Corruption("implausible language count");
  for (uint64_t i = 0; i < n; ++i) {
    AD_ASSIGN_OR_RETURN(uint32_t id, reader->ReadU32());
    AD_ASSIGN_OR_RETURN(LanguageStats stats, LanguageStats::Deserialize(reader));
    out.per_language_[static_cast<int>(id)] = std::move(stats);
  }
  return out;
}

std::vector<std::string> DistinctValuesForStats(const std::vector<std::string>& values,
                                                size_t max_distinct) {
  std::vector<std::string> distinct;
  std::unordered_set<std::string_view> seen;
  distinct.reserve(std::min(values.size(), max_distinct * 2));
  for (const auto& v : values) {
    if (seen.insert(v).second) distinct.push_back(v);
  }
  if (distinct.size() > max_distinct) {
    // Deterministic stride subsample keeps head and tail representation.
    std::vector<std::string> sampled;
    sampled.reserve(max_distinct);
    double stride = static_cast<double>(distinct.size()) / static_cast<double>(max_distinct);
    for (size_t i = 0; i < max_distinct; ++i) {
      sampled.push_back(distinct[static_cast<size_t>(i * stride)]);
    }
    return sampled;
  }
  return distinct;
}

CorpusStats BuildCorpusStats(ColumnSource* source, const StatsBuilderOptions& options) {
  std::vector<int> lang_ids = options.language_ids;
  if (lang_ids.empty()) {
    for (int i = 0; i < LanguageSpace::kNumLanguages; ++i) lang_ids.push_back(i);
  }
  const auto& all_langs = LanguageSpace::All();
  for (int id : lang_ids) {
    AD_CHECK(id >= 0 && id < static_cast<int>(all_langs.size()));
  }

  std::vector<LanguageStats> per_lang(lang_ids.size());

  std::vector<std::vector<std::string>> batch;
  batch.reserve(options.batch_columns);

  auto flush = [&] {
    if (batch.empty()) return;
    ThreadPool::ParallelFor(
        lang_ids.size(), options.num_threads, [&](size_t li) {
          const GeneralizationLanguage& lang = all_langs[static_cast<size_t>(lang_ids[li])];
          std::vector<uint64_t> keys;
          for (const auto& distinct_values : batch) {
            keys.clear();
            for (const auto& v : distinct_values) {
              keys.push_back(GeneralizeToKey(v, lang, options.generalize_options));
            }
            std::sort(keys.begin(), keys.end());
            keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
            if (keys.size() > options.max_distinct_patterns_per_column) {
              keys.resize(options.max_distinct_patterns_per_column);
            }
            per_lang[li].AddColumn(keys);
          }
        });
    batch.clear();
  };

  Column column;
  while (source->Next(&column)) {
    batch.push_back(
        DistinctValuesForStats(column.values, options.max_distinct_values_per_column));
    if (batch.size() >= options.batch_columns) flush();
  }
  flush();

  CorpusStats out;
  for (size_t i = 0; i < lang_ids.size(); ++i) {
    out.Insert(lang_ids[i], std::move(per_lang[i]));
  }
  return out;
}

}  // namespace autodetect
