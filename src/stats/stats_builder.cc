#include "stats/stats_builder.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "stats/value_interner.h"
#include "text/run_tokenizer.h"

namespace autodetect {

const LanguageStats& CorpusStats::ForLanguage(int lang_id) const {
  auto it = per_language_.find(lang_id);
  AD_CHECK(it != per_language_.end()) << "no stats for language " << lang_id;
  return it->second;
}

LanguageStats& CorpusStats::MutableForLanguage(int lang_id) {
  auto it = per_language_.find(lang_id);
  AD_CHECK(it != per_language_.end()) << "no stats for language " << lang_id;
  return it->second;
}

std::vector<int> CorpusStats::LanguageIds() const {
  std::vector<int> ids;
  ids.reserve(per_language_.size());
  for (const auto& [id, _] : per_language_) ids.push_back(id);
  return ids;
}

void CorpusStats::Insert(int lang_id, LanguageStats stats) {
  auto it = per_language_.find(lang_id);
  if (it == per_language_.end()) {
    per_language_.emplace(lang_id, std::move(stats));
    return;
  }
  // Merge-or-fail: additive counts merge (disjoint column sets); anything
  // unmergeable would have been silently overwritten before, losing a whole
  // language's statistics.
  AD_CHECK(!it->second.frozen() && !it->second.uses_sketch() &&
           !stats.frozen() && !stats.uses_sketch())
      << "Insert over existing unmergeable stats for language " << lang_id;
  it->second.Merge(stats);
}

void CorpusStats::Retain(const std::vector<int>& keep) {
  std::map<int, LanguageStats> kept;
  for (int id : keep) {
    auto it = per_language_.find(id);
    AD_DCHECK(it != per_language_.end())
        << "Retain of language " << id << " which has no stats";
    if (it != per_language_.end()) kept[id] = std::move(it->second);
  }
  per_language_ = std::move(kept);
}

void CorpusStats::Canonicalize() {
  // Per-language dictionaries are independent; the collect-sort-reinsert
  // rebuild is the expensive part of adopting merged statistics, so spread
  // the languages across cores. Already-canonical dictionaries (e.g. fresh
  // from FlatMap64::FromSorted) return immediately.
  std::vector<LanguageStats*> all;
  all.reserve(per_language_.size());
  for (auto& [id, stats] : per_language_) all.push_back(&stats);
  ThreadPool::ParallelFor(all.size(), /*num_threads=*/0,
                          [&](size_t i) { all[i]->Canonicalize(); });
}

void CorpusStats::EnsureHashed() {
  std::vector<LanguageStats*> all;
  all.reserve(per_language_.size());
  for (auto& [id, stats] : per_language_) all.push_back(&stats);
  ThreadPool::ParallelFor(all.size(), /*num_threads=*/0,
                          [&](size_t i) { all[i]->EnsureHashed(); });
}

void CorpusStats::Serialize(BinaryWriter* writer) const {
  // Each language's blob is length-prefixed so Deserialize can slice the
  // byte stream without parsing it, then parse languages in parallel. The
  // per-language serialization (collect + sort of every dictionary) is
  // likewise independent, so it runs across cores too.
  std::vector<const LanguageStats*> stats;
  std::vector<int> ids;
  stats.reserve(per_language_.size());
  ids.reserve(per_language_.size());
  for (const auto& [id, s] : per_language_) {
    ids.push_back(id);
    stats.push_back(&s);
  }
  std::vector<std::string> blobs(stats.size());
  ThreadPool::ParallelFor(stats.size(), /*num_threads=*/0, [&](size_t i) {
    std::ostringstream out;
    BinaryWriter w(&out);
    stats[i]->Serialize(&w);
    blobs[i] = std::move(out).str();
  });
  writer->WriteU64(per_language_.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    writer->WriteU32(static_cast<uint32_t>(ids[i]));
    writer->WriteU64(blobs[i].size());
    writer->WriteRaw(blobs[i].data(), blobs[i].size());
  }
}

Result<CorpusStats> CorpusStats::Deserialize(BinaryReader* reader) {
  CorpusStats out;
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 100000) return Status::Corruption("implausible language count");
  // Pass 1 (serial): slice the stream into per-language blobs using the
  // length prefixes. Blobs are read in bounded chunks so a corrupt length
  // fails with a truncation error instead of a giant allocation.
  std::vector<int> ids(n);
  std::vector<std::string> blobs(n);
  for (uint64_t i = 0; i < n; ++i) {
    AD_ASSIGN_OR_RETURN(uint32_t id, reader->ReadU32());
    AD_ASSIGN_OR_RETURN(uint64_t len, reader->ReadU64());
    ids[i] = static_cast<int>(id);
    std::string& blob = blobs[i];
    constexpr uint64_t kChunk = 1 << 20;
    while (blob.size() < len) {
      const size_t take = static_cast<size_t>(std::min<uint64_t>(kChunk, len - blob.size()));
      const size_t old = blob.size();
      blob.resize(old + take);
      Status read = reader->ReadRaw(blob.data() + old, take);
      if (!read.ok()) return read;
    }
  }
  // Pass 2 (parallel): parse each blob with an in-memory reader.
  std::vector<LanguageStats> parsed(n);
  std::vector<Status> statuses(n);
  // Hash materialization is deferred: most deserialized statistics are
  // merged and re-serialized by a reducer; the training session materializes
  // at its first point-query stage (CorpusStats::EnsureHashed).
  ThreadPool::ParallelFor(n, /*num_threads=*/0, [&](size_t i) {
    BinaryReader blob_reader(blobs[i].data(), blobs[i].size());
    Result<LanguageStats> stats =
        LanguageStats::Deserialize(&blob_reader, /*defer_hash=*/true);
    if (!stats.ok()) {
      statuses[i] = stats.status();
      return;
    }
    if (blob_reader.offset() != blobs[i].size()) {
      statuses[i] = blob_reader.Corrupt("trailing bytes after language statistics");
      return;
    }
    parsed[i] = std::move(*stats);
  });
  for (uint64_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
    out.per_language_[ids[i]] = std::move(parsed[i]);
  }
  return out;
}

std::vector<std::string> DistinctValuesForStats(const std::vector<std::string>& values,
                                                size_t max_distinct) {
  std::vector<std::string> distinct;
  std::unordered_set<std::string_view> seen;
  distinct.reserve(std::min(values.size(), max_distinct * 2));
  for (const auto& v : values) {
    if (seen.insert(v).second) distinct.push_back(v);
  }
  if (distinct.size() > max_distinct) {
    // Deterministic stride subsample keeps head and tail representation.
    std::vector<std::string> sampled;
    sampled.reserve(max_distinct);
    double stride = static_cast<double>(distinct.size()) / static_cast<double>(max_distinct);
    for (size_t i = 0; i < max_distinct; ++i) {
      sampled.push_back(distinct[static_cast<size_t>(i * stride)]);
    }
    return sampled;
  }
  return distinct;
}

namespace {

/// One batch of columns, each reduced to its distinct values and tokenized
/// ONCE into char-class runs. Every language chunk derives its pattern keys
/// from these shared run lists — the corpus bytes are scanned a single time
/// no matter how many candidate languages are in play.
struct TokenizedBatch {
  std::vector<TokenizedValues> columns;
  std::atomic<size_t> chunks_remaining{0};
};

/// A contiguous range of candidate languages owned by exactly one task
/// chain: batches queue up per chunk and are drained strictly in order, so
/// each LanguageStats sees columns in the global stream order (same results
/// as the old serial-per-language loop) without any cross-batch barrier —
/// the reader keeps tokenizing batch k+1 while workers count batch k.
struct LanguageChunk {
  size_t begin = 0;  ///< index range into lang_ids
  size_t end = 0;
  std::unique_ptr<MultiGeneralizer> keys;
  std::mutex mu;
  std::deque<std::shared_ptr<TokenizedBatch>> pending;
  bool draining = false;
};

}  // namespace

CorpusStats BuildCorpusStats(ColumnSource* source, const StatsBuilderOptions& options) {
  std::vector<int> lang_ids = options.language_ids;
  if (lang_ids.empty()) {
    for (int i = 0; i < LanguageSpace::kNumLanguages; ++i) lang_ids.push_back(i);
  }
  const auto& all_langs = LanguageSpace::All();
  for (int id : lang_ids) {
    AD_CHECK(id >= 0 && id < static_cast<int>(all_langs.size()));
  }

  std::vector<LanguageStats> per_lang(lang_ids.size());

  MetricsRegistry* registry = OrDefaultRegistry(options.metrics);
  Counter* columns_total = registry->GetCounter("train.columns_total");
  Counter* values_total = registry->GetCounter("train.values_total");
  Counter* patterns_total = registry->GetCounter("train.patterns_total");
  Histogram* tokenize_us = registry->GetHistogram("train.stage.tokenize_us");
  Histogram* count_us = registry->GetHistogram("train.stage.count_us");
  registry->GetGauge("text.simd.isa")
      ->Set(static_cast<double>(static_cast<uint8_t>(ActiveSimdTier())));

  size_t num_threads = options.num_threads != 0
                           ? options.num_threads
                           : std::max<size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(num_threads);

  // ~2 chunks per worker keeps the chains load-balanced; chunks own disjoint
  // language ranges, so they never contend on a LanguageStats.
  size_t num_chunks = std::min(lang_ids.size(), std::max<size_t>(1, num_threads * 2));
  std::vector<LanguageChunk> chunks(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunks[c].begin = c * lang_ids.size() / num_chunks;
    chunks[c].end = (c + 1) * lang_ids.size() / num_chunks;
    std::vector<int> chunk_ids(lang_ids.begin() + static_cast<ptrdiff_t>(chunks[c].begin),
                               lang_ids.begin() + static_cast<ptrdiff_t>(chunks[c].end));
    chunks[c].keys = std::make_unique<MultiGeneralizer>(
        MultiGeneralizer::ForIds(chunk_ids, options.generalize_options));
  }

  // Backpressure: bounds resident tokenized batches (reader vs workers).
  constexpr size_t kMaxBatchesInFlight = 4;
  std::mutex flight_mu;
  std::condition_variable flight_cv;
  size_t batches_in_flight = 0;

  auto process_batch = [&](LanguageChunk& chunk, const TokenizedBatch& tokenized) {
    StageTimer count_timer(count_us);
    const size_t n_langs = chunk.end - chunk.begin;
    std::vector<uint64_t> value_keys(n_langs);
    std::vector<std::vector<uint64_t>> col_keys(n_langs);
    uint64_t patterns_ingested = 0;
    for (const TokenizedValues& column : tokenized.columns) {
      for (auto& keys : col_keys) keys.clear();
      for (size_t v = 0; v < column.size(); ++v) {
        chunk.keys->KeysFor(column.Runs(v), column.ClassMask(v), value_keys.data());
        for (size_t s = 0; s < n_langs; ++s) col_keys[s].push_back(value_keys[s]);
      }
      for (size_t s = 0; s < n_langs; ++s) {
        auto& keys = col_keys[s];
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        if (keys.size() > options.max_distinct_patterns_per_column) {
          keys.resize(options.max_distinct_patterns_per_column);
        }
        patterns_ingested += keys.size();
        per_lang[chunk.begin + s].AddColumn(keys);
      }
    }
    patterns_total->Add(patterns_ingested);
  };

  auto drain_chunk = [&](LanguageChunk& chunk) {
    for (;;) {
      std::shared_ptr<TokenizedBatch> tokenized;
      {
        std::unique_lock<std::mutex> lock(chunk.mu);
        if (chunk.pending.empty()) {
          chunk.draining = false;
          return;
        }
        tokenized = std::move(chunk.pending.front());
        chunk.pending.pop_front();
      }
      process_batch(chunk, *tokenized);
      if (tokenized->chunks_remaining.fetch_sub(1) == 1) {
        std::unique_lock<std::mutex> lock(flight_mu);
        --batches_in_flight;
        flight_cv.notify_all();
      }
    }
  };

  auto tokenized = std::make_shared<TokenizedBatch>();
  uint64_t batch_values = 0;

  auto flush = [&] {
    if (tokenized->columns.empty()) return;
    columns_total->Add(tokenized->columns.size());
    values_total->Add(batch_values);
    batch_values = 0;
    tokenized->chunks_remaining.store(num_chunks);
    {
      std::unique_lock<std::mutex> lock(flight_mu);
      flight_cv.wait(lock,
                     [&] { return batches_in_flight < kMaxBatchesInFlight; });
      ++batches_in_flight;
    }
    for (auto& chunk : chunks) {
      bool start_drainer = false;
      {
        std::unique_lock<std::mutex> lock(chunk.mu);
        chunk.pending.push_back(tokenized);
        if (!chunk.draining) {
          chunk.draining = true;
          start_drainer = true;
        }
      }
      if (start_drainer) {
        pool.Submit([&drain_chunk, &chunk] { drain_chunk(chunk); });
      }
    }
    tokenized = std::make_shared<TokenizedBatch>();
    tokenized->columns.reserve(options.batch_columns);
  };

  // Each column is interned (distinct value + multiplicity, no string
  // copies) and tokenized straight into the current batch while the source's
  // buffers are still alive — the sampled selection matches
  // DistinctValuesForStats index for index, so stats are unchanged; the
  // unordered_set, its node allocations and the copied value vectors of the
  // old pipeline are gone.
  ValueInterner interner;
  std::vector<uint32_t> sampled;
  Column column;
  while (source->Next(&column)) {
    StageTimer tokenize_timer(tokenize_us);
    interner.Intern(column.values);
    interner.SampleIndices(options.max_distinct_values_per_column, &sampled);
    tokenized->columns.emplace_back();
    TokenizedValues& runs = tokenized->columns.back();
    for (uint32_t idx : sampled) {
      runs.Add(interner.entry(idx).value, options.generalize_options);
    }
    batch_values += sampled.size();
    if (tokenized->columns.size() >= options.batch_columns) flush();
  }
  flush();

  {
    std::unique_lock<std::mutex> lock(flight_mu);
    flight_cv.wait(lock, [&] { return batches_in_flight == 0; });
  }
  pool.WaitIdle();

  CorpusStats out;
  for (size_t i = 0; i < lang_ids.size(); ++i) {
    out.Insert(lang_ids[i], std::move(per_lang[i]));
  }
  return out;
}

}  // namespace autodetect
