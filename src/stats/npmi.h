#pragma once

#include <cstdint>
#include <string_view>

#include "stats/language_stats.h"
#include "text/pattern.h"

/// \file npmi.h
/// Pointwise mutual information over pattern co-occurrence (paper Eqs. 1-2)
/// with Jelinek-Mercer smoothing of rare co-counts (Eq. 10). This is the
/// compatibility score s_k(u, v) at the core of Auto-Detect.

namespace autodetect {

/// \brief NPMI scorer bound to one language's statistics.
class NpmiScorer {
 public:
  /// \param stats must outlive the scorer.
  /// \param smoothing_factor the f of Eq. 10 (paper default 0.1; f=0
  /// disables smoothing).
  /// \param min_pattern_support reliability gate: when BOTH patterns have
  /// been seen in fewer than this many columns, the co-occurrence evidence
  /// is too thin to call the pair incompatible and Score returns 0
  /// (unknown). This extends the paper's rare-event reasoning (Sec. 3.3)
  /// to the reduced corpus scale of this reproduction; real error pairs
  /// keep one *common* side (the clean values) and are unaffected.
  NpmiScorer(const LanguageStats* stats, double smoothing_factor = 0.1,
             uint64_t min_pattern_support = 3)
      : stats_(stats), f_(smoothing_factor), min_support_(min_pattern_support) {}

  /// Incompatibility requires a *co-occurrence deficit*: the pair's raw
  /// observed co-count must be below this fraction of the independence
  /// expectation c1*c2/N for the score to go negative at all. Pairs that
  /// co-occur at a substantial fraction of chance (e.g. mononyms inside
  /// name columns, ints among floats) are mildly anti-correlated at
  /// reduced corpus scale but are not errors; true errors co-occur
  /// essentially never (the paper's Example 1: c(v1,v3)=10 against
  /// millions). Scores for non-deficit pairs are clamped to >= 0.
  static constexpr double kDeficitRatio = 0.25;

  /// Optional evidence-quality detail reported by Score (for observability;
  /// does not affect the score itself).
  struct ScoreDetail {
    /// Both patterns were below min_pattern_support: the scorer punted and
    /// returned 0 (unknown) instead of trusting thin co-occurrence evidence.
    bool rare_fallback = false;
  };

  /// \brief NPMI of two pattern keys, in [-1, 1]. Conventions for the
  /// corners (limits of Eq. 2):
  ///  - identical patterns that exist in the corpus score +1;
  ///  - any pair whose smoothed co-count is zero scores -1 (never observed
  ///    together -> maximally incompatible);
  ///  - a pattern never seen at all (c(p) == 0) also yields -1, since the
  ///    corpus offers no evidence it belongs anywhere.
  /// \param detail when non-null, filled with evidence-quality flags.
  double Score(uint64_t key1, uint64_t key2, ScoreDetail* detail = nullptr) const;

  /// \brief Smoothed co-occurrence count (Eq. 10):
  /// (1-f)*c(p1,p2) + f*c(p1)*c(p2)/N.
  double SmoothedCoCount(uint64_t key1, uint64_t key2) const;

  double smoothing_factor() const { return f_; }
  const LanguageStats& stats() const { return *stats_; }

 private:
  const LanguageStats* stats_;
  double f_;
  uint64_t min_support_;
};

/// \brief Convenience scorer over raw values: generalizes both under `lang`
/// then scores. (Production code paths pre-generalize and reuse keys.)
double NpmiOfValues(std::string_view v1, std::string_view v2,
                    const GeneralizationLanguage& lang, const LanguageStats& stats,
                    double smoothing_factor = 0.1);

}  // namespace autodetect
