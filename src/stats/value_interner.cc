#include "stats/value_interner.h"

#include <algorithm>

#include "common/hash.h"

namespace autodetect {

void ValueInterner::Intern(const std::vector<std::string>& values) {
  map_.Reset();
  entries_.clear();
  num_values_ = values.size();
  // Seed capacity for the common case; genuinely high-cardinality columns
  // grow by amortized rehash instead of pre-paying rows-sized memory.
  map_.Reserve(std::min<size_t>(values.size(), 4096));
  entries_.reserve(std::min<size_t>(values.size(), 4096));
  for (size_t row = 0; row < values.size(); ++row) {
    const std::string& v = values[row];
    uint64_t key = Fnv1a64(v);
    for (;; ++key) {
      uint64_t& slot = map_[key];
      if (slot == 0) {
        slot = entries_.size() + 1;
        entries_.push_back(Entry{v, 1, static_cast<uint32_t>(row)});
        break;
      }
      Entry& e = entries_[slot - 1];
      if (e.value == v) {
        ++e.multiplicity;
        break;
      }
      // True 64-bit hash collision between distinct values: walk to the
      // next key. Deterministic, and vanishingly rare.
    }
  }
}

void ValueInterner::SampleIndices(size_t max_distinct,
                                  std::vector<uint32_t>* out) const {
  out->clear();
  const size_t d = entries_.size();
  if (d <= max_distinct) {
    out->reserve(d);
    for (size_t i = 0; i < d; ++i) out->push_back(static_cast<uint32_t>(i));
    return;
  }
  // Must match the stride arithmetic of DistinctValuesForStats exactly:
  // reports are byte-compared between the two paths.
  out->reserve(max_distinct);
  double stride = static_cast<double>(d) / static_cast<double>(max_distinct);
  for (size_t i = 0; i < max_distinct; ++i) {
    out->push_back(static_cast<uint32_t>(static_cast<size_t>(
        static_cast<double>(i) * stride)));
  }
}

}  // namespace autodetect
