#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/result.h"
#include "io/serde.h"
#include "sketch/count_min.h"

/// \file language_stats.h
/// Per-language corpus statistics: for one generalization language L this
/// stores c(p) — the number of corpus columns containing pattern p — and
/// c(p1, p2) — the number of columns containing both patterns (paper
/// Sec. 2.1). Co-occurrence can be held exactly (open-addressing flat map)
/// or approximately (count–min sketch, Sec. 3.4). Patterns are identified
/// by their 64-bit canonical keys (pattern.h).
///
/// A LanguageStats is either *owned* (mutable, dictionaries in heap
/// FlatMap64s — the training representation) or *frozen* (read-only views
/// over a caller-provided byte blob, typically inside a memory-mapped
/// ADMODEL2 file — the serving representation). Lookups behave identically
/// in both modes; mutation of a frozen instance is a programming error.

namespace autodetect {

class LanguageStats {
 public:
  LanguageStats() = default;

  /// \brief Ingests one column, given the column's *distinct* pattern keys.
  /// Increments c(p) for each key and c(p,q) for each unordered pair.
  void AddColumn(const std::vector<uint64_t>& distinct_keys);

  /// Number of columns ingested (the N of Eq. 1).
  uint64_t num_columns() const { return num_columns_; }

  /// c(p): columns containing pattern `key`.
  uint64_t Count(uint64_t key) const {
    return frozen_ ? counts_view_.GetOr(key) : counts_.GetOr(key);
  }

  /// c(p1, p2): columns containing both patterns. For key1 == key2 this is
  /// c(p) by definition (a value pair with identical patterns co-occurs
  /// wherever the pattern occurs).
  uint64_t CoCount(uint64_t key1, uint64_t key2) const;

  /// Number of distinct patterns / distinct co-occurring pairs seen.
  size_t NumPatterns() const {
    return frozen_ ? counts_view_.size() : counts_.size();
  }
  size_t NumCoPairs() const {
    return frozen_ ? co_view_.size() : co_counts_.size();
  }

  /// \brief Estimated resident bytes of the statistics — the size(L) used
  /// by the selection knapsack. Dictionaries are costed at their actual
  /// open-addressing backing arrays (16 bytes/slot at <= 0.75 load);
  /// sketches at their counter array.
  size_t MemoryBytes() const;

  /// \brief Bytes of the co-occurrence store alone (dictionary or sketch);
  /// MemoryBytes() minus the c(p) dictionary. The selection knapsack uses
  /// this to price sketch-compressed candidates consistently.
  size_t CoMemoryBytes() const;

  /// \brief Replaces the exact co-occurrence dictionary with a count-min
  /// sketch sized at `ratio` (0 < ratio <= 1) of the dictionary's bytes.
  /// Pattern occurrence counts c(p) stay exact (they are small).
  /// Conservative update is used, matching the power-law tightening the
  /// paper describes.
  Status CompressToSketch(double ratio, uint64_t seed = 0xc0ffee);

  /// \brief Same compression, but sized by an absolute byte budget: the
  /// sketch holds at most `budget_bytes` of counters (width rounded down to
  /// a power of two, depth 4). This is the `train --sketch-budget-mb` path.
  Status CompressToSketchBudget(size_t budget_bytes, uint64_t seed = 0xc0ffee);

  bool uses_sketch() const { return sketch_.has_value() || sketch_external_; }

  /// True when the co-occurrence sketch lives outside this blob (in the
  /// ADMODEL2 SKCH section); the loader must AttachSketch before serving.
  bool sketch_external() const { return sketch_external_; }

  /// \brief Binds the externally-stored sketch view (only valid on a frozen
  /// instance loaded from a blob whose flags declared an external sketch).
  /// The viewed bytes must outlive this instance.
  void AttachSketch(CountMinSketch::FrozenView view);

  /// Sketch geometry, 0 when not sketched (for metrics / `info`).
  size_t SketchWidth() const;
  size_t SketchDepth() const;

  /// Iterates exact co-counts (unavailable after sketch compression).
  void ForEachCoCount(
      const std::function<void(uint64_t pair_key, uint64_t count)>& fn) const;

  /// Iterates c(p) entries.
  void ForEachCount(const std::function<void(uint64_t key, uint64_t count)>& fn) const;

  /// \brief Merges another shard built over a disjoint set of columns.
  void Merge(const LanguageStats& other);

  /// \brief Merge that lands directly in the canonical layout: a sorted
  /// merge-join over both sides' dictionaries (FlatMap64::MergeSorted)
  /// replaces Merge + Canonicalize. Equivalent result, but large merges skip
  /// the per-entry hash probes and the full collect-sort-reinsert rebuild —
  /// this is the shard-reduction path, where the big side was just
  /// deserialized and its sorted entry arrays are still cached. Only valid
  /// on owned, exact (unsketched) stats.
  void MergeCanonical(const LanguageStats& other);

  /// \brief Rebuilds both dictionaries into the canonical probe layout
  /// (FlatMap64::Canonicalize), making the frozen/serialized bytes a pure
  /// function of the counts. Training canonicalizes at every statistics
  /// adoption point so that N merged shards and a one-shot pass freeze to
  /// identical bytes. Only valid on owned, exact (unsketched) stats.
  void Canonicalize();

  void Serialize(BinaryWriter* writer) const;

  /// \brief Reads stats written by Serialize. With `defer_hash` the
  /// dictionaries keep only their sorted entry arrays (FlatMap64 hash
  /// deferral) — the shard-reduction profile, where deserialized stats are
  /// merged and re-serialized but never point-queried. EnsureHashed() (or
  /// any find-or-insert access) materializes the probe arrays.
  static Result<LanguageStats> Deserialize(BinaryReader* reader,
                                           bool defer_hash = false);

  /// \brief Materializes hash-deferred dictionaries (no-op otherwise); must
  /// run before Count/CoCount queries on defer_hash-deserialized stats.
  void EnsureHashed();

  /// True when backed by views over external bytes (zero-copy model path).
  bool frozen() const { return frozen_; }

  /// \brief Appends the frozen representation to `out`. Layout (all fields
  /// 8-byte aligned provided the blob itself starts 8-aligned):
  ///   u64 num_columns
  ///   u64 flags            (bit 0: co-occurrence held as a sketch;
  ///                         bit 1: that sketch lives in the SKCH section)
  ///   [counts frozen map]  (FlatMap64 frozen blob)
  ///   [co frozen map]      (exact mode) | u64 sketch_len + bytes + pad to 8
  ///                        (embedded sketch) | nothing (external sketch)
  /// With `external_sketch` the sketch bytes are the caller's problem
  /// (AppendSketchFrozen emits them); the blob carries only counts. Works
  /// for both owned and frozen sources.
  void AppendFrozen(std::string* out, bool external_sketch = false) const;

  /// \brief Appends the co-occurrence sketch as a CountMinSketch frozen
  /// blob (page-alignable, see count_min.h). Requires uses_sketch().
  void AppendSketchFrozen(std::string* out) const;

  /// \brief Builds a frozen instance viewing exactly [data, data + len).
  /// The bytes must stay alive and unmodified for the lifetime of the
  /// result (the mapped model file guarantees this). The sketch, when
  /// present, is copied — it is small by design (Sec. 3.4) and its row
  /// seeds need parsing anyway. Fails closed: any length/alignment
  /// inconsistency is an error, trailing unconsumed bytes are Corruption.
  static Result<LanguageStats> FromFrozen(const void* data, size_t len);

 private:
  uint64_t num_columns_ = 0;
  FlatMap64 counts_;
  FlatMap64 co_counts_;  // key: CombineUnordered
  Status CompressImpl(size_t budget_bytes, uint64_t seed);

  std::optional<CountMinSketch> sketch_;
  bool frozen_ = false;
  bool sketch_external_ = false;  ///< sketch lives in the SKCH section
  FlatMap64::FrozenView counts_view_;  ///< live iff frozen_
  FlatMap64::FrozenView co_view_;      ///< live iff frozen_ and no sketch
  CountMinSketch::FrozenView sketch_view_;  ///< live iff sketch_external_
};

}  // namespace autodetect
