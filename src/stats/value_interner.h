#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"

/// \file value_interner.h
/// Column value interning: reduces a column to its distinct values with
/// multiplicities and first-occurrence rows, so the tokenize/generalize/score
/// pipeline runs once per DISTINCT value instead of once per row. Real tables
/// are dominated by repeats (enums, booleans, country codes, nulls), which
/// makes this an integer-factor lever on both training and detection; the
/// paper's pattern space only ever sees distinct values anyway
/// (Auto-Detect §3.1 counts a pattern once per column), so interning changes
/// no observable result — the fuzz suite proves deduped detect ≡ non-deduped
/// detect byte for byte.

namespace autodetect {

/// \brief One column's values grouped by identity, in first-occurrence
/// order. Backed by a FlatMap64 keyed on FNV-1a of the value bytes, with an
/// equality check on every hit and linear probing in KEY space (key+1) on a
/// true 64-bit collision — hash collisions cost a probe, never a merged
/// entry, so the distinct list is exact. The interner owns its index
/// structures across columns (Reset, not Clear), so a long scan allocates
/// only when a column exceeds every previous column's cardinality.
class ValueInterner {
 public:
  struct Entry {
    std::string_view value;     ///< points into the interned column
    uint32_t multiplicity = 0;  ///< occurrences in the column
    uint32_t first_row = 0;     ///< row index of the first occurrence
  };

  /// \brief Interns one column. Entry values are views into `values`; they
  /// stay valid only while `values` is alive and unmodified.
  void Intern(const std::vector<std::string>& values);

  size_t num_values() const { return num_values_; }
  size_t num_distinct() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// \brief Writes the entry indices the stats pipeline keeps for a cap of
  /// `max_distinct`: all of them in first-occurrence order when within the
  /// cap, else the deterministic stride subsample — index for index the
  /// same selection as DistinctValuesForStats (property-tested), so the
  /// interned path scores exactly the values the legacy path scores.
  void SampleIndices(size_t max_distinct, std::vector<uint32_t>* out) const;

 private:
  FlatMap64 map_;  ///< FNV-1a(value) [+k probes] -> entry index + 1
  std::vector<Entry> entries_;
  size_t num_values_ = 0;
};

}  // namespace autodetect
