#include "stats/language_stats.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace autodetect {

void LanguageStats::AddColumn(const std::vector<uint64_t>& distinct_keys) {
  AD_CHECK(!frozen_);  // frozen stats are immutable by contract
  ++num_columns_;
  for (uint64_t k : distinct_keys) ++counts_[k];
  AD_DCHECK(!sketch_.has_value());  // building after compression is unsupported
  for (size_t i = 0; i < distinct_keys.size(); ++i) {
    for (size_t j = i + 1; j < distinct_keys.size(); ++j) {
      ++co_counts_[CombineUnordered(distinct_keys[i], distinct_keys[j])];
    }
  }
}

uint64_t LanguageStats::CoCount(uint64_t key1, uint64_t key2) const {
  if (key1 == key2) return Count(key1);
  uint64_t pair_key = CombineUnordered(key1, key2);
  if (uses_sketch()) {
    // Min-estimate over conservative-update counters, NOT the count-mean-min
    // correction: co-occurrence mass is strongly zipf, so the mean
    // per-counter noise the correction subtracts exceeds most true pair
    // counts and zeroes the tail wholesale — measured on the training
    // corpora, it erases ~95% of real pairs and collapses detection
    // precision. CU+min never underestimates and its overestimate shrinks
    // rapidly with width. Two exact bounds tighten it further (marginal
    // counts are never sketched): a pair co-occurs at most as often as its
    // rarer pattern occurs, which caps the relative error exactly where
    // collision noise is proportionally worst — the rare-pattern pairs the
    // detector's tail quality lives on — and a never-seen pattern cannot
    // co-occur at all.
    const uint64_t cap = std::min(Count(key1), Count(key2));
    if (cap == 0) return 0;
    // The loader must AttachSketch before serving an external sketch.
    AD_DCHECK(sketch_.has_value() || sketch_view_.valid());
    const uint64_t est = sketch_.has_value() ? sketch_->Estimate(pair_key)
                                             : sketch_view_.Estimate(pair_key);
    return std::min(est, cap);
  }
  return frozen_ ? co_view_.GetOr(pair_key) : co_counts_.GetOr(pair_key);
}

size_t LanguageStats::MemoryBytes() const {
  return (frozen_ ? counts_view_.bytes() : counts_.MemoryBytes()) + CoMemoryBytes();
}

size_t LanguageStats::CoMemoryBytes() const {
  if (sketch_.has_value()) return sketch_->MemoryBytes();
  if (sketch_external_) return sketch_view_.CounterBytes();
  return frozen_ ? co_view_.bytes() : co_counts_.MemoryBytes();
}

size_t LanguageStats::SketchWidth() const {
  if (sketch_.has_value()) return sketch_->width();
  return sketch_external_ ? sketch_view_.width() : 0;
}

size_t LanguageStats::SketchDepth() const {
  if (sketch_.has_value()) return sketch_->depth();
  return sketch_external_ ? sketch_view_.depth() : 0;
}

void LanguageStats::AttachSketch(CountMinSketch::FrozenView view) {
  AD_CHECK(frozen_ && sketch_external_ && !sketch_view_.valid());
  sketch_view_ = std::move(view);
}

Status LanguageStats::CompressImpl(size_t budget_bytes, uint64_t seed) {
  if (frozen_) return Status::Invalid("cannot compress frozen stats");
  if (uses_sketch()) return Status::Invalid("already compressed");
  CountMinSketch sketch =
      CountMinSketch::FromMemoryBudget(budget_bytes, /*depth=*/4, seed);
  // Conservative update: pair counts are strongly zipf, where CU cuts the
  // min-estimate's overestimate several-fold versus plain Add at the same
  // width. It forfeits the count-mean-min correction (which needs rows that
  // sum to the total mass), but CoCount serves Estimate anyway — see the
  // rationale there.
  co_counts_.ForEach([&](uint64_t pair_key, uint64_t count) {
    sketch.AddConservative(pair_key, count);
  });
  sketch_ = std::move(sketch);
  co_counts_.Clear();
  return Status::OK();
}

Status LanguageStats::CompressToSketch(double ratio, uint64_t seed) {
  if (!(ratio > 0.0 && ratio <= 1.0)) {
    return Status::Invalid("sketch ratio must be in (0, 1]");
  }
  size_t dict_bytes = co_counts_.MemoryBytes();
  size_t budget = std::max<size_t>(64, static_cast<size_t>(dict_bytes * ratio));
  return CompressImpl(budget, seed);
}

Status LanguageStats::CompressToSketchBudget(size_t budget_bytes, uint64_t seed) {
  if (budget_bytes == 0) return Status::Invalid("sketch budget must be nonzero");
  return CompressImpl(budget_bytes, seed);
}

void LanguageStats::ForEachCoCount(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (frozen_) {
    co_view_.ForEach(fn);
  } else {
    co_counts_.ForEach(fn);
  }
}

void LanguageStats::ForEachCount(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (frozen_) {
    counts_view_.ForEach(fn);
  } else {
    counts_.ForEach(fn);
  }
}

void LanguageStats::Merge(const LanguageStats& other) {
  AD_CHECK(!frozen_ && !other.frozen_);
  AD_CHECK(!sketch_.has_value() && !other.sketch_.has_value());
  num_columns_ += other.num_columns_;
  counts_.MergeAdd(other.counts_);
  co_counts_.MergeAdd(other.co_counts_);
}

void LanguageStats::MergeCanonical(const LanguageStats& other) {
  AD_CHECK(!frozen_ && !other.frozen_);
  AD_CHECK(!uses_sketch() && !other.uses_sketch());
  num_columns_ += other.num_columns_;
  counts_ = FlatMap64::MergeSorted(counts_, other.counts_);
  co_counts_ = FlatMap64::MergeSorted(co_counts_, other.co_counts_);
}

void LanguageStats::Canonicalize() {
  AD_CHECK(!frozen_ && !uses_sketch());
  counts_.Canonicalize();
  co_counts_.Canonicalize();
}

namespace {

/// Serialized dictionaries are written in ascending key order — the wire
/// contract that lets Deserialize rebuild the canonical probe layout
/// directly (FlatMap64::FromSorted) instead of replaying inserts and
/// re-sorting afterwards.
///
/// A Slot is two explicit-width little-endian words, so on the (assumed)
/// little-endian host the slot array's in-memory bytes ARE the wire
/// encoding — entries move with one bulk read/write instead of two calls
/// per entry. The frozen-map format (AppendFrozen) bakes in the same
/// assumption.
void WriteSortedSlots(BinaryWriter* writer,
                      const std::vector<FlatMap64::Slot>& entries) {
  writer->WriteU64(entries.size());
  if (!entries.empty()) {
    writer->WriteRaw(entries.data(), entries.size() * sizeof(FlatMap64::Slot));
  }
}

void WriteSortedMap(BinaryWriter* writer, const FlatMap64& map) {
  if (const std::vector<FlatMap64::Slot>* cached = map.sorted_cache()) {
    WriteSortedSlots(writer, *cached);
  } else {
    WriteSortedSlots(writer, map.CollectSorted());
  }
}

template <typename ForEachFn>
void WriteSortedEntries(BinaryWriter* writer, size_t n, ForEachFn&& for_each) {
  std::vector<FlatMap64::Slot> entries;
  entries.reserve(n);
  for_each([&](uint64_t k, uint64_t v) {
    entries.push_back(FlatMap64::Slot{k, v});
  });
  std::sort(entries.begin(), entries.end(),
            [](const FlatMap64::Slot& a, const FlatMap64::Slot& b) {
              return a.key < b.key;
            });
  WriteSortedSlots(writer, entries);
}

Result<FlatMap64> ReadSortedEntries(BinaryReader* reader, bool defer_hash) {
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  std::vector<FlatMap64::Slot> entries;
  // Read in bounded chunks so a corrupt length fails at the first
  // out-of-bounds read instead of a huge upfront allocation.
  constexpr uint64_t kChunkSlots = 1 << 16;
  while (entries.size() < n) {
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(kChunkSlots, n - entries.size()));
    const size_t old = entries.size();
    entries.resize(old + take);
    Status read = reader->ReadRaw(entries.data() + old,
                                  take * sizeof(FlatMap64::Slot));
    if (!read.ok()) return read;
  }
  return FlatMap64::FromSorted(std::move(entries), defer_hash);
}

}  // namespace

void LanguageStats::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(num_columns_);
  if (frozen_) {
    WriteSortedEntries(writer, NumPatterns(),
                       [&](auto&& fn) { counts_view_.ForEach(fn); });
  } else {
    WriteSortedMap(writer, counts_);
  }
  writer->WriteU8(uses_sketch() ? 1 : 0);
  if (sketch_.has_value()) {
    sketch_->Serialize(writer);
  } else if (sketch_external_) {
    // ADMODEL1 has no external section; embed a thawed copy.
    sketch_view_.Thaw().Serialize(writer);
  } else if (frozen_) {
    WriteSortedEntries(writer, NumCoPairs(),
                       [&](auto&& fn) { co_view_.ForEach(fn); });
  } else {
    WriteSortedMap(writer, co_counts_);
  }
}

void LanguageStats::AppendFrozen(std::string* out, bool external_sketch) const {
  const bool sketched = uses_sketch();
  AD_CHECK(!external_sketch || sketched);
  uint64_t flags = sketched ? (external_sketch ? 3u : 1u) : 0u;
  uint64_t head[2] = {num_columns_, flags};
  out->append(reinterpret_cast<const char*>(head), sizeof(head));
  if (frozen_) {
    counts_view_.AppendTo(out);
  } else {
    counts_.AppendFrozen(out);
  }
  if (sketched && external_sketch) {
    return;  // sketch bytes land in the SKCH section via AppendSketchFrozen
  }
  if (sketched) {
    std::ostringstream sketch_bytes;
    BinaryWriter sketch_writer(&sketch_bytes);
    if (sketch_.has_value()) {
      sketch_->Serialize(&sketch_writer);
    } else {
      sketch_view_.Thaw().Serialize(&sketch_writer);
    }
    std::string s = std::move(sketch_bytes).str();
    uint64_t len = s.size();
    out->append(reinterpret_cast<const char*>(&len), sizeof(len));
    out->append(s);
    out->append((8 - s.size() % 8) % 8, '\0');  // keep the blob 8-aligned
  } else if (frozen_) {
    co_view_.AppendTo(out);
  } else {
    co_counts_.AppendFrozen(out);
  }
}

void LanguageStats::AppendSketchFrozen(std::string* out) const {
  AD_CHECK(uses_sketch());
  if (sketch_.has_value()) {
    sketch_->AppendFrozen(out);
  } else {
    AD_CHECK(sketch_view_.valid());
    sketch_view_.AppendTo(out);
  }
}

Result<LanguageStats> LanguageStats::FromFrozen(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (reinterpret_cast<uintptr_t>(p) % 8 != 0) {
    return Status::Corruption("frozen stats blob is not 8-byte aligned");
  }
  if (len < 16) {
    return Status::IOError("truncated frozen stats: header needs 16 bytes, got " +
                           std::to_string(len));
  }
  uint64_t head[2];
  std::memcpy(head, p, sizeof(head));
  if (head[1] > 3 || head[1] == 2) {
    return Status::Corruption("frozen stats header: unknown flags");
  }
  LanguageStats stats;
  stats.frozen_ = true;
  stats.num_columns_ = head[0];
  size_t off = 16;
  AD_ASSIGN_OR_RETURN(stats.counts_view_,
                      FlatMap64::FrozenView::FromBytes(p + off, len - off));
  off += stats.counts_view_.bytes();
  if (head[1] == 3) {
    // Sketch lives in the model's SKCH section; the loader attaches it.
    stats.sketch_external_ = true;
  } else if (head[1] & 1) {
    BinaryReader reader(p + off, len - off);
    AD_ASSIGN_OR_RETURN(uint64_t sketch_len, reader.ReadU64());
    if (sketch_len > len - off - 8) {
      return Status::Corruption("frozen stats: sketch length exceeds blob");
    }
    AD_ASSIGN_OR_RETURN(CountMinSketch sketch, CountMinSketch::Deserialize(&reader));
    if (reader.offset() - 8 != sketch_len) {
      return Status::Corruption("frozen stats: sketch length mismatch");
    }
    stats.sketch_ = std::move(sketch);
    off += 8 + static_cast<size_t>(sketch_len) + (8 - sketch_len % 8) % 8;
  } else {
    AD_ASSIGN_OR_RETURN(stats.co_view_,
                        FlatMap64::FrozenView::FromBytes(p + off, len - off));
    off += stats.co_view_.bytes();
  }
  if (off != len) {
    return Status::Corruption("frozen stats: blob has " + std::to_string(len - off) +
                              " trailing bytes");
  }
  return stats;
}

Result<LanguageStats> LanguageStats::Deserialize(BinaryReader* reader,
                                                 bool defer_hash) {
  LanguageStats stats;
  AD_ASSIGN_OR_RETURN(stats.num_columns_, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(stats.counts_, ReadSortedEntries(reader, defer_hash));
  AD_ASSIGN_OR_RETURN(uint8_t has_sketch, reader->ReadU8());
  if (has_sketch) {
    AD_ASSIGN_OR_RETURN(CountMinSketch sketch, CountMinSketch::Deserialize(reader));
    stats.sketch_ = std::move(sketch);
  } else {
    AD_ASSIGN_OR_RETURN(stats.co_counts_, ReadSortedEntries(reader, defer_hash));
  }
  return stats;
}

void LanguageStats::EnsureHashed() {
  AD_CHECK(!frozen_);
  counts_.EnsureHashed();
  co_counts_.EnsureHashed();
}

}  // namespace autodetect
