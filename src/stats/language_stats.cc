#include "stats/language_stats.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace autodetect {

void LanguageStats::AddColumn(const std::vector<uint64_t>& distinct_keys) {
  AD_CHECK(!frozen_);  // frozen stats are immutable by contract
  ++num_columns_;
  for (uint64_t k : distinct_keys) ++counts_[k];
  AD_DCHECK(!sketch_.has_value());  // building after compression is unsupported
  for (size_t i = 0; i < distinct_keys.size(); ++i) {
    for (size_t j = i + 1; j < distinct_keys.size(); ++j) {
      ++co_counts_[CombineUnordered(distinct_keys[i], distinct_keys[j])];
    }
  }
}

uint64_t LanguageStats::CoCount(uint64_t key1, uint64_t key2) const {
  if (key1 == key2) return Count(key1);
  uint64_t pair_key = CombineUnordered(key1, key2);
  if (sketch_.has_value()) {
    // The sketch returns nonzero noise for never-seen pairs; gate on both
    // patterns existing to cut the worst false estimates.
    if (Count(key1) == 0 || Count(key2) == 0) return 0;
    return sketch_->Estimate(pair_key);
  }
  return frozen_ ? co_view_.GetOr(pair_key) : co_counts_.GetOr(pair_key);
}

size_t LanguageStats::MemoryBytes() const {
  return (frozen_ ? counts_view_.bytes() : counts_.MemoryBytes()) + CoMemoryBytes();
}

size_t LanguageStats::CoMemoryBytes() const {
  if (sketch_.has_value()) return sketch_->MemoryBytes();
  return frozen_ ? co_view_.bytes() : co_counts_.MemoryBytes();
}

Status LanguageStats::CompressToSketch(double ratio, uint64_t seed) {
  if (frozen_) return Status::Invalid("cannot compress frozen stats");
  if (sketch_.has_value()) return Status::Invalid("already compressed");
  if (!(ratio > 0.0 && ratio <= 1.0)) {
    return Status::Invalid("sketch ratio must be in (0, 1]");
  }
  size_t dict_bytes = co_counts_.MemoryBytes();
  size_t budget = std::max<size_t>(64, static_cast<size_t>(dict_bytes * ratio));
  CountMinSketch sketch = CountMinSketch::FromMemoryBudget(budget, /*depth=*/4, seed);
  co_counts_.ForEach([&](uint64_t pair_key, uint64_t count) {
    sketch.AddConservative(pair_key, count);
  });
  sketch_ = std::move(sketch);
  co_counts_.Clear();
  return Status::OK();
}

void LanguageStats::ForEachCoCount(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (frozen_) {
    co_view_.ForEach(fn);
  } else {
    co_counts_.ForEach(fn);
  }
}

void LanguageStats::ForEachCount(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (frozen_) {
    counts_view_.ForEach(fn);
  } else {
    counts_.ForEach(fn);
  }
}

void LanguageStats::Merge(const LanguageStats& other) {
  AD_CHECK(!frozen_ && !other.frozen_);
  AD_CHECK(!sketch_.has_value() && !other.sketch_.has_value());
  num_columns_ += other.num_columns_;
  counts_.MergeAdd(other.counts_);
  co_counts_.MergeAdd(other.co_counts_);
}

void LanguageStats::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(num_columns_);
  writer->WriteU64(NumPatterns());
  ForEachCount([&](uint64_t k, uint64_t v) {
    writer->WriteU64(k);
    writer->WriteU64(v);
  });
  writer->WriteU8(sketch_.has_value() ? 1 : 0);
  if (sketch_.has_value()) {
    sketch_->Serialize(writer);
  } else {
    writer->WriteU64(NumCoPairs());
    ForEachCoCount([&](uint64_t k, uint64_t v) {
      writer->WriteU64(k);
      writer->WriteU64(v);
    });
  }
}

void LanguageStats::AppendFrozen(std::string* out) const {
  uint64_t head[2] = {num_columns_, sketch_.has_value() ? 1u : 0u};
  out->append(reinterpret_cast<const char*>(head), sizeof(head));
  if (frozen_) {
    counts_view_.AppendTo(out);
  } else {
    counts_.AppendFrozen(out);
  }
  if (sketch_.has_value()) {
    std::ostringstream sketch_bytes;
    BinaryWriter sketch_writer(&sketch_bytes);
    sketch_->Serialize(&sketch_writer);
    std::string s = std::move(sketch_bytes).str();
    uint64_t len = s.size();
    out->append(reinterpret_cast<const char*>(&len), sizeof(len));
    out->append(s);
    out->append((8 - s.size() % 8) % 8, '\0');  // keep the blob 8-aligned
  } else if (frozen_) {
    co_view_.AppendTo(out);
  } else {
    co_counts_.AppendFrozen(out);
  }
}

Result<LanguageStats> LanguageStats::FromFrozen(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (reinterpret_cast<uintptr_t>(p) % 8 != 0) {
    return Status::Corruption("frozen stats blob is not 8-byte aligned");
  }
  if (len < 16) {
    return Status::IOError("truncated frozen stats: header needs 16 bytes, got " +
                           std::to_string(len));
  }
  uint64_t head[2];
  std::memcpy(head, p, sizeof(head));
  if (head[1] > 1) {
    return Status::Corruption("frozen stats header: unknown flags");
  }
  LanguageStats stats;
  stats.frozen_ = true;
  stats.num_columns_ = head[0];
  size_t off = 16;
  AD_ASSIGN_OR_RETURN(stats.counts_view_,
                      FlatMap64::FrozenView::FromBytes(p + off, len - off));
  off += stats.counts_view_.bytes();
  if (head[1] & 1) {
    BinaryReader reader(p + off, len - off);
    AD_ASSIGN_OR_RETURN(uint64_t sketch_len, reader.ReadU64());
    if (sketch_len > len - off - 8) {
      return Status::Corruption("frozen stats: sketch length exceeds blob");
    }
    AD_ASSIGN_OR_RETURN(CountMinSketch sketch, CountMinSketch::Deserialize(&reader));
    if (reader.offset() - 8 != sketch_len) {
      return Status::Corruption("frozen stats: sketch length mismatch");
    }
    stats.sketch_ = std::move(sketch);
    off += 8 + static_cast<size_t>(sketch_len) + (8 - sketch_len % 8) % 8;
  } else {
    AD_ASSIGN_OR_RETURN(stats.co_view_,
                        FlatMap64::FrozenView::FromBytes(p + off, len - off));
    off += stats.co_view_.bytes();
  }
  if (off != len) {
    return Status::Corruption("frozen stats: blob has " + std::to_string(len - off) +
                              " trailing bytes");
  }
  return stats;
}

Result<LanguageStats> LanguageStats::Deserialize(BinaryReader* reader) {
  LanguageStats stats;
  AD_ASSIGN_OR_RETURN(stats.num_columns_, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n_counts, reader->ReadU64());
  stats.counts_.Reserve(static_cast<size_t>(n_counts));
  for (uint64_t i = 0; i < n_counts; ++i) {
    AD_ASSIGN_OR_RETURN(uint64_t k, reader->ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t v, reader->ReadU64());
    stats.counts_[k] = v;
  }
  AD_ASSIGN_OR_RETURN(uint8_t has_sketch, reader->ReadU8());
  if (has_sketch) {
    AD_ASSIGN_OR_RETURN(CountMinSketch sketch, CountMinSketch::Deserialize(reader));
    stats.sketch_ = std::move(sketch);
  } else {
    AD_ASSIGN_OR_RETURN(uint64_t n_pairs, reader->ReadU64());
    stats.co_counts_.Reserve(static_cast<size_t>(n_pairs));
    for (uint64_t i = 0; i < n_pairs; ++i) {
      AD_ASSIGN_OR_RETURN(uint64_t k, reader->ReadU64());
      AD_ASSIGN_OR_RETURN(uint64_t v, reader->ReadU64());
      stats.co_counts_[k] = v;
    }
  }
  return stats;
}

}  // namespace autodetect
