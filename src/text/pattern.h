#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "text/language.h"

/// \file pattern.h
/// Generalized patterns: the result of applying a generalization language to
/// a cell value, run-length encoded the way the paper renders them
/// ("\\D[4]-\\D[2]-\\D[2]"). Patterns are the unit that all corpus
/// statistics are computed over.

namespace autodetect {

/// One run of identical generalizations. For `node == kLeaf`, `ch` holds the
/// literal character of the run; otherwise `ch` is 0.
struct PatternToken {
  TreeNode node = TreeNode::kLeaf;
  char ch = 0;
  uint32_t count = 1;

  bool operator==(const PatternToken& other) const {
    return node == other.node && ch == other.ch && count == other.count;
  }
};

/// Options controlling value -> pattern conversion.
struct GeneralizeOptions {
  /// Paper default: keep run lengths ("\\D[4]" != "\\D[2]"). Setting this to
  /// true collapses runs to "one or more" ("\\D+") — an ablation extension,
  /// not part of the 144-language candidate space.
  bool collapse_run_lengths = false;
  /// Values longer than this are truncated before generalization; guards the
  /// statistics store against pathological cells (e.g. whole documents
  /// pasted into one cell).
  size_t max_value_length = 256;
};

/// \brief A generalized, run-length-encoded pattern.
class Pattern {
 public:
  Pattern() = default;

  /// \brief Generalizes `value` under `lang` (paper Eq. 3 plus run-length
  /// coalescing). Deterministic and total: any byte string yields a pattern.
  static Pattern Generalize(std::string_view value, const GeneralizationLanguage& lang,
                            const GeneralizeOptions& options = {});

  const std::vector<PatternToken>& tokens() const { return tokens_; }
  bool empty() const { return tokens_.empty(); }

  /// \brief Canonical rendering, e.g. "\\A[4]-\\A[2]-\\A[2]". Injective:
  /// distinct patterns always render distinctly (literals that could clash
  /// with the token syntax are escaped).
  std::string ToString() const;

  /// \brief Stable 64-bit key of the canonical rendering; the key the
  /// statistics dictionaries and sketches are indexed by.
  uint64_t Key() const { return Fnv1a64(ToString()); }

  /// Total character length this pattern stands for.
  size_t ValueLength() const;

  bool operator==(const Pattern& other) const {
    return tokens_ == other.tokens_ && collapsed_ == other.collapsed_;
  }

 private:
  std::vector<PatternToken> tokens_;
  bool collapsed_ = false;
};

/// \brief Convenience fused path used by the statistics builder: generalize
/// and return the canonical string without keeping the token vector.
std::string GeneralizeToString(std::string_view value, const GeneralizationLanguage& lang,
                               const GeneralizeOptions& options = {});

/// \brief Fused generalize+hash; the hot path of corpus processing.
uint64_t GeneralizeToKey(std::string_view value, const GeneralizationLanguage& lang,
                         const GeneralizeOptions& options = {});

}  // namespace autodetect
