#include "text/pattern.h"

namespace autodetect {

namespace {

/// Appends the canonical rendering of one token to `out`.
void RenderToken(const PatternToken& t, bool collapse, std::string* out) {
  if (t.node == TreeNode::kLeaf) {
    // Escape characters that collide with the token syntax so the rendering
    // stays injective.
    if (t.ch == '\\' || t.ch == '[' || t.ch == ']' || t.ch == '+') out->push_back('\\');
    out->push_back(t.ch);
  } else {
    out->append(TreeNodeToken(t.node));
  }
  if (collapse) {
    if (t.count > 1) out->push_back('+');
  } else if (t.count > 1) {
    out->push_back('[');
    out->append(std::to_string(t.count));
    out->push_back(']');
  }
}

}  // namespace

Pattern Pattern::Generalize(std::string_view value, const GeneralizationLanguage& lang,
                            const GeneralizeOptions& options) {
  Pattern p;
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  p.tokens_.reserve(8);
  for (char c : value) {
    TreeNode node = lang.Map(c);
    char leaf_ch = (node == TreeNode::kLeaf) ? c : 0;
    if (!p.tokens_.empty() && p.tokens_.back().node == node &&
        p.tokens_.back().ch == leaf_ch) {
      ++p.tokens_.back().count;
    } else {
      p.tokens_.push_back(PatternToken{node, leaf_ch, 1});
    }
  }
  if (options.collapse_run_lengths) {
    p.collapsed_ = true;
    for (auto& t : p.tokens_) {
      if (t.count > 1) t.count = 2;  // canonical "more than one" marker
    }
  }
  return p;
}

std::string Pattern::ToString() const {
  std::string out;
  out.reserve(tokens_.size() * 3);
  for (const auto& t : tokens_) {
    RenderToken(t, collapsed_, &out);
  }
  return out;
}

size_t Pattern::ValueLength() const {
  size_t n = 0;
  for (const auto& t : tokens_) n += t.count;
  return n;
}

std::string GeneralizeToString(std::string_view value,
                               const GeneralizationLanguage& lang,
                               const GeneralizeOptions& options) {
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  std::string out;
  out.reserve(value.size() + 4);
  size_t i = 0;
  while (i < value.size()) {
    char c = value[i];
    TreeNode node = lang.Map(c);
    size_t j = i + 1;
    if (node == TreeNode::kLeaf) {
      while (j < value.size() && lang.Map(value[j]) == TreeNode::kLeaf &&
             value[j] == c) {
        ++j;
      }
    } else {
      while (j < value.size() && lang.Map(value[j]) == node) ++j;
    }
    PatternToken t{node, node == TreeNode::kLeaf ? c : static_cast<char>(0),
                   static_cast<uint32_t>(j - i)};
    RenderToken(t, options.collapse_run_lengths, &out);
    i = j;
  }
  return out;
}

uint64_t GeneralizeToKey(std::string_view value, const GeneralizationLanguage& lang,
                         const GeneralizeOptions& options) {
  // Allocation-free fused generalize+hash: must stay in lockstep with
  // GeneralizeToString (verified by tests).
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  Fnv1aHasher hasher;
  char digits[12];
  size_t i = 0;
  while (i < value.size()) {
    char c = value[i];
    TreeNode node = lang.Map(c);
    size_t j = i + 1;
    if (node == TreeNode::kLeaf) {
      while (j < value.size() && lang.Map(value[j]) == TreeNode::kLeaf &&
             value[j] == c) {
        ++j;
      }
      if (c == '\\' || c == '[' || c == ']' || c == '+') hasher.Byte('\\');
      hasher.Byte(static_cast<unsigned char>(c));
    } else {
      while (j < value.size() && lang.Map(value[j]) == node) ++j;
      hasher.Str(TreeNodeToken(node));
    }
    size_t count = j - i;
    if (count > 1) {
      if (options.collapse_run_lengths) {
        hasher.Byte('+');
      } else {
        hasher.Byte('[');
        int len = 0;
        size_t v = count;
        while (v > 0) {
          digits[len++] = static_cast<char>('0' + v % 10);
          v /= 10;
        }
        for (int k = len - 1; k >= 0; --k) hasher.Byte(static_cast<unsigned char>(digits[k]));
        hasher.Byte(']');
      }
    }
    i = j;
  }
  return hasher.h;
}

}  // namespace autodetect
