#pragma once

#include <string_view>

#include "text/pattern.h"

/// \file pattern_distance.h
/// Alignment-based distance between generalized patterns, in the spirit of
/// the pattern distance from TEGRA [Chu et al., SIGMOD'15] that the paper's
/// SVDD/DBOD baselines use. The distance is a token-level edit distance
/// where substituting related tokens (same class chain, different level or
/// length) is cheaper than substituting unrelated tokens.

namespace autodetect {

/// \brief Cost model for token-level alignment.
struct PatternDistanceOptions {
  double insert_delete_cost = 1.0;
  /// Same tree node, different run length (e.g. \D[4] vs \D[2]).
  double length_mismatch_cost = 0.25;
  /// Different node on the same chain (e.g. \U vs \L, or leaf 'a' vs \l).
  double related_substitution_cost = 0.5;
  /// Unrelated tokens (e.g. \D vs \S).
  double unrelated_substitution_cost = 1.0;
};

/// \brief Token-level edit distance between two patterns. Symmetric,
/// non-negative, zero iff equal; satisfies the triangle inequality for the
/// default cost model (property-tested).
double PatternDistance(const Pattern& a, const Pattern& b,
                       const PatternDistanceOptions& options = {});

/// \brief Distance normalized into [0, 1] by the larger token count.
double NormalizedPatternDistance(const Pattern& a, const Pattern& b,
                                 const PatternDistanceOptions& options = {});

/// \brief Convenience: generalize both values under `lang` then measure.
double ValuePatternDistance(std::string_view v1, std::string_view v2,
                            const GeneralizationLanguage& lang,
                            const PatternDistanceOptions& options = {});

}  // namespace autodetect
