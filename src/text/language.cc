#include "text/language.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace autodetect {

Result<GeneralizationLanguage> GeneralizationLanguage::Make(TreeNode upper,
                                                            TreeNode lower,
                                                            TreeNode digit,
                                                            TreeNode symbol) {
  if (!GeneralizationTree::IsValidFor(upper, CharClass::kUpper)) {
    return Status::Invalid("invalid target for upper-case chain");
  }
  if (!GeneralizationTree::IsValidFor(lower, CharClass::kLower)) {
    return Status::Invalid("invalid target for lower-case chain");
  }
  if (!GeneralizationTree::IsValidFor(digit, CharClass::kDigit)) {
    return Status::Invalid("invalid target for digit chain");
  }
  if (!GeneralizationTree::IsValidFor(symbol, CharClass::kSymbol)) {
    return Status::Invalid("invalid target for symbol chain");
  }
  return GeneralizationLanguage(upper, lower, digit, symbol);
}

namespace {
std::string TargetName(TreeNode node) {
  return node == TreeNode::kLeaf ? "." : std::string(TreeNodeToken(node));
}
}  // namespace

std::string GeneralizationLanguage::Name() const {
  return StrFormat("U>%s|l>%s|D>%s|S>%s",
                   TargetName(TargetFor(CharClass::kUpper)).c_str(),
                   TargetName(TargetFor(CharClass::kLower)).c_str(),
                   TargetName(TargetFor(CharClass::kDigit)).c_str(),
                   TargetName(TargetFor(CharClass::kSymbol)).c_str());
}

bool GeneralizationLanguage::IsRootLanguage() const {
  for (int i = 0; i < kNumCharClasses; ++i) {
    if (targets_[i] != TreeNode::kAny) return false;
  }
  return true;
}

bool GeneralizationLanguage::IsLeafLanguage() const {
  for (int i = 0; i < kNumCharClasses; ++i) {
    if (targets_[i] != TreeNode::kLeaf) return false;
  }
  return true;
}

bool GeneralizationLanguage::CoarserOrEqual(const GeneralizationLanguage& other) const {
  // Pointwise: every class generalizes at least as far up its chain.
  for (int i = 0; i < kNumCharClasses; ++i) {
    CharClass cls = static_cast<CharClass>(i);
    if (GeneralizationTree::Depth(targets_[i], cls) >
        GeneralizationTree::Depth(other.targets_[i], cls)) {
      return false;
    }
  }
  // Partition: classes merged by `other` must stay merged here (leaf
  // targets never merge distinct classes).
  for (int i = 0; i < kNumCharClasses; ++i) {
    for (int j = i + 1; j < kNumCharClasses; ++j) {
      bool other_merges = other.targets_[i] != TreeNode::kLeaf &&
                          other.targets_[i] == other.targets_[j];
      bool self_merges =
          targets_[i] != TreeNode::kLeaf && targets_[i] == targets_[j];
      if (other_merges && !self_merges) return false;
    }
  }
  return true;
}

const std::vector<GeneralizationLanguage>& LanguageSpace::All() {
  static const std::vector<GeneralizationLanguage> kAll = [] {
    std::vector<GeneralizationLanguage> out;
    const auto& uppers = GeneralizationTree::ChainFor(CharClass::kUpper);
    const auto& lowers = GeneralizationTree::ChainFor(CharClass::kLower);
    const auto& digits = GeneralizationTree::ChainFor(CharClass::kDigit);
    const auto& symbols = GeneralizationTree::ChainFor(CharClass::kSymbol);
    for (TreeNode u : uppers) {
      for (TreeNode l : lowers) {
        for (TreeNode d : digits) {
          for (TreeNode s : symbols) {
            auto lang = GeneralizationLanguage::Make(u, l, d, s);
            AD_CHECK(lang.ok());
            out.push_back(*lang);
          }
        }
      }
    }
    AD_CHECK(out.size() == static_cast<size_t>(kNumLanguages));
    return out;
  }();
  return kAll;
}

GeneralizationLanguage LanguageSpace::PaperL1() {
  auto r = GeneralizationLanguage::Make(TreeNode::kAny, TreeNode::kAny, TreeNode::kAny,
                                        TreeNode::kLeaf);
  AD_CHECK(r.ok());
  return *r;
}

GeneralizationLanguage LanguageSpace::PaperL2() {
  auto r = GeneralizationLanguage::Make(TreeNode::kLetter, TreeNode::kLetter,
                                        TreeNode::kDigit, TreeNode::kSymbol);
  AD_CHECK(r.ok());
  return *r;
}

GeneralizationLanguage LanguageSpace::CrudeG() {
  auto r = GeneralizationLanguage::Make(TreeNode::kUpper, TreeNode::kLower,
                                        TreeNode::kDigit, TreeNode::kLeaf);
  AD_CHECK(r.ok());
  return *r;
}

GeneralizationLanguage LanguageSpace::Leaf() {
  auto r = GeneralizationLanguage::Make(TreeNode::kLeaf, TreeNode::kLeaf,
                                        TreeNode::kLeaf, TreeNode::kLeaf);
  AD_CHECK(r.ok());
  return *r;
}

GeneralizationLanguage LanguageSpace::Root() {
  auto r = GeneralizationLanguage::Make(TreeNode::kAny, TreeNode::kAny, TreeNode::kAny,
                                        TreeNode::kAny);
  AD_CHECK(r.ok());
  return *r;
}

namespace {

/// Packs a language's four targets into a base-7 index (< 7^4 = 2401).
size_t PackTargets(const GeneralizationLanguage& lang) {
  size_t packed = 0;
  for (int c = kNumCharClasses - 1; c >= 0; --c) {
    packed = packed * kNumTreeNodes +
             static_cast<size_t>(lang.TargetFor(static_cast<CharClass>(c)));
  }
  return packed;
}

}  // namespace

int LanguageSpace::IdOf(const GeneralizationLanguage& lang) {
  // IdOf sits on hot setup paths (trainer, detector, benches) and used to
  // linear-scan all 144 languages with operator==; a lazily built dense
  // index over the packed target tuple makes it one array load.
  static const std::vector<int16_t> kIndex = [] {
    std::vector<int16_t> index(kNumTreeNodes * kNumTreeNodes * kNumTreeNodes *
                                   kNumTreeNodes,
                               int16_t{-1});
    const auto& all = All();
    for (size_t i = 0; i < all.size(); ++i) {
      index[PackTargets(all[i])] = static_cast<int16_t>(i);
    }
    return index;
  }();
  return kIndex[PackTargets(lang)];
}

}  // namespace autodetect
