#include "text/pattern_distance.h"

#include <algorithm>
#include <vector>

namespace autodetect {

namespace {

/// True when two tokens belong to the same class chain of H (so one could
/// generalize into the other).
bool SameChain(const PatternToken& a, const PatternToken& b) {
  auto class_of = [](const PatternToken& t) -> int {
    switch (t.node) {
      case TreeNode::kLeaf:
        return static_cast<int>(ClassifyChar(t.ch));
      case TreeNode::kUpper:
        return static_cast<int>(CharClass::kUpper);
      case TreeNode::kLower:
        return static_cast<int>(CharClass::kLower);
      case TreeNode::kDigit:
        return static_cast<int>(CharClass::kDigit);
      case TreeNode::kSymbol:
        return static_cast<int>(CharClass::kSymbol);
      case TreeNode::kLetter:
      case TreeNode::kAny:
        return 4;  // spans multiple classes; treat as its own bucket
    }
    return 5;
  };
  int ca = class_of(a), cb = class_of(b);
  if (ca == 4 || cb == 4) {
    // \L relates to letters, \A relates to everything.
    if (a.node == TreeNode::kAny || b.node == TreeNode::kAny) return true;
    auto letter_related = [](const PatternToken& t) {
      if (t.node == TreeNode::kLetter || t.node == TreeNode::kUpper ||
          t.node == TreeNode::kLower)
        return true;
      return t.node == TreeNode::kLeaf && (ClassifyChar(t.ch) == CharClass::kUpper ||
                                           ClassifyChar(t.ch) == CharClass::kLower);
    };
    return letter_related(a) && letter_related(b);
  }
  return ca == cb;
}

double SubstitutionCost(const PatternToken& a, const PatternToken& b,
                        const PatternDistanceOptions& opt) {
  if (a == b) return 0.0;
  if (a.node == b.node && a.ch == b.ch) return opt.length_mismatch_cost;
  if (SameChain(a, b)) {
    double cost = opt.related_substitution_cost;
    if (a.count != b.count) cost += opt.length_mismatch_cost;
    return std::min(cost, opt.unrelated_substitution_cost);
  }
  return opt.unrelated_substitution_cost;
}

}  // namespace

double PatternDistance(const Pattern& a, const Pattern& b,
                       const PatternDistanceOptions& opt) {
  const auto& ta = a.tokens();
  const auto& tb = b.tokens();
  const size_t n = ta.size(), m = tb.size();
  if (n == 0) return static_cast<double>(m) * opt.insert_delete_cost;
  if (m == 0) return static_cast<double>(n) * opt.insert_delete_cost;
  std::vector<double> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j) * opt.insert_delete_cost;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i) * opt.insert_delete_cost;
    for (size_t j = 1; j <= m; ++j) {
      double del = prev[j] + opt.insert_delete_cost;
      double ins = curr[j - 1] + opt.insert_delete_cost;
      double sub = prev[j - 1] + SubstitutionCost(ta[i - 1], tb[j - 1], opt);
      curr[j] = std::min({del, ins, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double NormalizedPatternDistance(const Pattern& a, const Pattern& b,
                                 const PatternDistanceOptions& opt) {
  size_t denom = std::max(a.tokens().size(), b.tokens().size());
  if (denom == 0) return 0.0;
  return PatternDistance(a, b, opt) / static_cast<double>(denom);
}

double ValuePatternDistance(std::string_view v1, std::string_view v2,
                            const GeneralizationLanguage& lang,
                            const PatternDistanceOptions& opt) {
  return NormalizedPatternDistance(Pattern::Generalize(v1, lang),
                                   Pattern::Generalize(v2, lang), opt);
}

}  // namespace autodetect
