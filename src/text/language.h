#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/generalization_tree.h"

/// \file language.h
/// Generalization languages (paper Definition 2) and the candidate space L.
///
/// A language maps every character of Σ to a node of the tree H. With the
/// paper's practical restriction that all characters of a class generalize
/// to the same level, a language is fully described by four targets:
/// one per class chain. That yields 4 (upper) × 4 (lower) × 3 (digit) ×
/// 3 (symbol) = 144 candidate languages — the figure quoted in Sec. 2.2.

namespace autodetect {

class GeneralizationLanguage {
 public:
  /// Constructs the identity ("leaf") language.
  GeneralizationLanguage() = default;

  /// \brief Validated construction; fails if a target is not on the
  /// corresponding class chain of H.
  static Result<GeneralizationLanguage> Make(TreeNode upper, TreeNode lower,
                                             TreeNode digit, TreeNode symbol);

  /// Target node for a character class.
  TreeNode TargetFor(CharClass cls) const {
    return targets_[static_cast<int>(cls)];
  }

  /// Maps one character to its generalization (paper: L(α)).
  TreeNode Map(char c) const { return TargetFor(ClassifyChar(c)); }

  /// \brief Compact stable name, e.g. "U>\\L|l>\\L|D>\\D|S>." (a dot means
  /// kept at leaf level). Used in logs, benches and model files.
  std::string Name() const;

  /// True if every class is generalized to the root (the useless L_root).
  bool IsRootLanguage() const;
  /// True if every class stays at leaf level (the sparse L_leaf).
  bool IsLeafLanguage() const;

  /// \brief Partial order on languages: true iff this language generalizes
  /// at least as much as `other` on every class chain AND merges every pair
  /// of character classes that `other` merges (e.g. if `other` sends both
  /// cases to \L, this language must not split them again via \A on one
  /// side only). Under this definition, any two values indistinguishable
  /// under `other` stay indistinguishable under this language
  /// (property-tested); the pointwise condition alone would not suffice.
  bool CoarserOrEqual(const GeneralizationLanguage& other) const;

  bool operator==(const GeneralizationLanguage& other) const {
    for (int i = 0; i < kNumCharClasses; ++i) {
      if (targets_[i] != other.targets_[i]) return false;
    }
    return true;
  }

 private:
  GeneralizationLanguage(TreeNode upper, TreeNode lower, TreeNode digit,
                         TreeNode symbol)
      : targets_{upper, lower, digit, symbol} {}

  TreeNode targets_[kNumCharClasses] = {TreeNode::kLeaf, TreeNode::kLeaf,
                                        TreeNode::kLeaf, TreeNode::kLeaf};
};

/// \brief The candidate language space L induced by H with the same-level
/// restriction (144 languages), plus the named special members the paper
/// uses in examples.
class LanguageSpace {
 public:
  /// All 144 candidate languages, in a deterministic order. Index in this
  /// vector is the language's stable id across the whole system.
  static const std::vector<GeneralizationLanguage>& All();

  static constexpr int kNumLanguages = 144;

  /// Paper Example 2, L1: symbols kept, everything else to root.
  static GeneralizationLanguage PaperL1();
  /// Paper Example 2, L2: letters to \L, digits to \D, symbols to \S.
  static GeneralizationLanguage PaperL2();
  /// The crude generalization G of Appendix F: digits to \D, upper to \U,
  /// lower to \l, symbols kept at leaves. Used by distant supervision.
  static GeneralizationLanguage CrudeG();
  /// L_leaf — no generalization at all.
  static GeneralizationLanguage Leaf();
  /// L_root — everything to \A.
  static GeneralizationLanguage Root();

  /// \brief Id (index in All()) of a language; -1 if not in the space
  /// (cannot happen for languages built from valid targets).
  static int IdOf(const GeneralizationLanguage& lang);
};

}  // namespace autodetect
