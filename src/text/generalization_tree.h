#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/char_class.h"

/// \file generalization_tree.h
/// The generalization tree H of paper Definition 1 / Figure 3:
///
///   \A (any) -+- \L (letter) -+- \U -- leaves A..Z
///             |               +- \l -- leaves a..z
///             +- \D (digit) ----- leaves 0..9
///             +- \S (symbol) ---- leaves (each symbol char)
///
/// Each leaf is a character of Σ; each internal node is the union of its
/// children. A generalization language (language.h) assigns every character
/// a node on its leaf-to-root chain.

namespace autodetect {

/// Internal (and leaf-marker) nodes of H. kLeaf stands for "the character
/// itself", i.e. no generalization.
enum class TreeNode : uint8_t {
  kLeaf = 0,
  kUpper = 1,   ///< \U : any of A-Z
  kLower = 2,   ///< \l : any of a-z
  kLetter = 3,  ///< \L : any letter
  kDigit = 4,   ///< \D : any digit
  kSymbol = 5,  ///< \S : any symbol
  kAny = 6,     ///< \A : root
};

constexpr int kNumTreeNodes = 7;

/// \brief Rendering used in canonical pattern strings ("\\U", "\\A", ...).
std::string_view TreeNodeToken(TreeNode node);

/// \brief Static queries over the fixed tree H of Figure 3.
class GeneralizationTree {
 public:
  /// Nodes on the leaf-to-root chain for a character class, ordered from
  /// most specific (kLeaf) to the root (kAny). These are exactly the valid
  /// targets a language may map that class to.
  static const std::vector<TreeNode>& ChainFor(CharClass cls);

  /// True iff `node` lies on the chain for class `cls` (i.e. `node` is an
  /// ancestor-or-self of that class's leaves).
  static bool IsValidFor(TreeNode node, CharClass cls);

  /// Depth of a node: root = 0, \L/\D/\S = 1, \U/\l = 2 (digits/symbols'
  /// leaves are depth 2, letters' leaves depth 3).
  static int Depth(TreeNode node, CharClass cls);

  /// The coarser (closer to root) of two nodes on the same chain.
  /// Precondition: both valid for `cls`.
  static TreeNode Coarser(TreeNode a, TreeNode b, CharClass cls);
};

}  // namespace autodetect
