#pragma once

#include <cstdint>
#include <string_view>

/// \file char_class.h
/// Character classification over the ASCII alphabet Σ used by the
/// generalization tree (paper Fig. 3). Non-ASCII bytes are treated as
/// symbols, which keeps the tree total over arbitrary input.

namespace autodetect {

/// Base character classes — the four subtrees directly relevant to
/// generalization decisions. (Letters split further into upper/lower in the
/// tree itself.)
enum class CharClass : uint8_t {
  kUpper = 0,   ///< 'A'..'Z'
  kLower = 1,   ///< 'a'..'z'
  kDigit = 2,   ///< '0'..'9'
  kSymbol = 3,  ///< everything else (punctuation, space, non-ASCII)
};

inline CharClass ClassifyChar(char c) {
  if (c >= 'A' && c <= 'Z') return CharClass::kUpper;
  if (c >= 'a' && c <= 'z') return CharClass::kLower;
  if (c >= '0' && c <= '9') return CharClass::kDigit;
  return CharClass::kSymbol;
}

inline std::string_view CharClassName(CharClass c) {
  switch (c) {
    case CharClass::kUpper:
      return "upper";
    case CharClass::kLower:
      return "lower";
    case CharClass::kDigit:
      return "digit";
    case CharClass::kSymbol:
      return "symbol";
  }
  return "?";
}

constexpr int kNumCharClasses = 4;

}  // namespace autodetect
