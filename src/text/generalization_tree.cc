#include "text/generalization_tree.h"

#include "common/logging.h"

namespace autodetect {

std::string_view TreeNodeToken(TreeNode node) {
  switch (node) {
    case TreeNode::kLeaf:
      return "";
    case TreeNode::kUpper:
      return "\\U";
    case TreeNode::kLower:
      return "\\l";
    case TreeNode::kLetter:
      return "\\L";
    case TreeNode::kDigit:
      return "\\D";
    case TreeNode::kSymbol:
      return "\\S";
    case TreeNode::kAny:
      return "\\A";
  }
  return "?";
}

const std::vector<TreeNode>& GeneralizationTree::ChainFor(CharClass cls) {
  static const std::vector<TreeNode> kUpperChain = {TreeNode::kLeaf, TreeNode::kUpper,
                                                    TreeNode::kLetter, TreeNode::kAny};
  static const std::vector<TreeNode> kLowerChain = {TreeNode::kLeaf, TreeNode::kLower,
                                                    TreeNode::kLetter, TreeNode::kAny};
  static const std::vector<TreeNode> kDigitChain = {TreeNode::kLeaf, TreeNode::kDigit,
                                                    TreeNode::kAny};
  static const std::vector<TreeNode> kSymbolChain = {TreeNode::kLeaf, TreeNode::kSymbol,
                                                     TreeNode::kAny};
  switch (cls) {
    case CharClass::kUpper:
      return kUpperChain;
    case CharClass::kLower:
      return kLowerChain;
    case CharClass::kDigit:
      return kDigitChain;
    case CharClass::kSymbol:
      return kSymbolChain;
  }
  AD_LOG(Fatal) << "unreachable char class";
  return kSymbolChain;
}

bool GeneralizationTree::IsValidFor(TreeNode node, CharClass cls) {
  for (TreeNode n : ChainFor(cls)) {
    if (n == node) return true;
  }
  return false;
}

int GeneralizationTree::Depth(TreeNode node, CharClass cls) {
  const auto& chain = ChainFor(cls);
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] == node) {
      // chain is specific->root; depth counts from root.
      return static_cast<int>(chain.size() - 1 - i);
    }
  }
  AD_LOG(Fatal) << "node not on chain for class " << CharClassName(cls);
  return -1;
}

TreeNode GeneralizationTree::Coarser(TreeNode a, TreeNode b, CharClass cls) {
  return Depth(a, cls) <= Depth(b, cls) ? a : b;
}

}  // namespace autodetect
