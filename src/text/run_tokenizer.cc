#include "text/run_tokenizer.h"

#include <atomic>
#include <cstring>

#include "common/cpu.h"
#include "common/hash.h"
#include "common/logging.h"

#if AUTODETECT_X86_SIMD
#include <immintrin.h>
#endif

namespace autodetect {

namespace {

uint8_t TokenizeScalarImpl(const char* data, size_t n, std::vector<ClassRun>* out) {
  uint8_t mask = 0;
  size_t i = 0;
  while (i < n) {
    char c = data[i];
    size_t j = i + 1;
    while (j < n && data[j] == c) ++j;
    uint8_t cls = static_cast<uint8_t>(ClassifyChar(c));
    mask |= static_cast<uint8_t>(1u << cls);
    out->push_back(ClassRun{c, cls, static_cast<uint32_t>(j - i)});
    i = j;
  }
  return mask;
}

#if AUTODETECT_X86_SIMD

/// The SIMD tiers classify 16/32 bytes with two pshufb nibble lookups whose
/// AND is non-zero exactly on the ASCII letter/digit ranges. Each high
/// nibble that contains letters or digits owns one bit, and the low-nibble
/// LUT re-asserts the bits whose range covers that low nibble:
///   hi=3 -> 0x01 ('0'-'9': lo<=9)    hi=4 -> 0x02 ('A'-'O': lo>=1)
///   hi=5 -> 0x08 ('P'-'Z': lo<=0xA)  hi=6 -> 0x04 ('a'-'o': lo>=1)
///   hi=7 -> 0x10 ('p'-'z': lo<=0xA)  else    0    (symbol, incl. >=0x80)
/// so m & 0x01 = digit, m & 0x0A = upper, m & 0x14 = lower, m == 0 = symbol.
/// lo_lut[l] = (l<=9 ? 0x01 : 0) | (l>=1 ? 0x06 : 0) | (l<=0xA ? 0x18 : 0).
/// The class byte is then 3 - 1*digit - 2*lower - 3*upper, matching
/// CharClass{kUpper=0, kLower=1, kDigit=2, kSymbol=3}.

__attribute__((target("ssse3"))) inline __m128i ClassifyVec16(__m128i v) {
  const __m128i hi_lut =
      _mm_setr_epi8(0, 0, 0, 0x01, 0x02, 0x08, 0x04, 0x10, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m128i lo_lut =
      _mm_setr_epi8(0x19, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F,
                    0x1E, 0x06, 0x06, 0x06, 0x06, 0x06);
  const __m128i nibble = _mm_set1_epi8(0x0F);
  __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nibble);
  __m128i lo = _mm_and_si128(v, nibble);
  __m128i m = _mm_and_si128(_mm_shuffle_epi8(hi_lut, hi),
                            _mm_shuffle_epi8(lo_lut, lo));
  const __m128i zero = _mm_setzero_si128();
  __m128i digit = _mm_cmpgt_epi8(_mm_and_si128(m, _mm_set1_epi8(0x01)), zero);
  __m128i upper = _mm_cmpgt_epi8(_mm_and_si128(m, _mm_set1_epi8(0x0A)), zero);
  __m128i lower = _mm_cmpgt_epi8(_mm_and_si128(m, _mm_set1_epi8(0x14)), zero);
  __m128i cls = _mm_set1_epi8(3);
  cls = _mm_sub_epi8(cls, _mm_and_si128(digit, _mm_set1_epi8(1)));
  cls = _mm_sub_epi8(cls, _mm_and_si128(lower, _mm_set1_epi8(2)));
  cls = _mm_sub_epi8(cls, _mm_and_si128(upper, _mm_set1_epi8(3)));
  return cls;
}

__attribute__((target("ssse3")))
uint8_t TokenizeSsse3(const char* data, size_t n, std::vector<ClassRun>* out) {
  if (n == 0) return 0;
  char cur_ch = data[0];
  uint8_t cur_cls = static_cast<uint8_t>(ClassifyChar(cur_ch));
  uint8_t mask = static_cast<uint8_t>(1u << cur_cls);
  size_t run_start = 0;
  size_t i = 1;
  alignas(16) uint8_t cls_buf[16];
  // Boundary b in the block starting at i means data[i+b] != data[i+b-1];
  // one unaligned load shifted back a byte gives all 16 comparisons at once.
  // Blocks inside a long run have no boundaries and cost only cmp+movemask.
  while (i + 16 <= n) {
    __m128i curr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i - 1));
    uint32_t neq =
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(curr, prev))) ^
        0xFFFFu;
    if (neq != 0) {
      _mm_store_si128(reinterpret_cast<__m128i*>(cls_buf), ClassifyVec16(curr));
      do {
        unsigned b = static_cast<unsigned>(__builtin_ctz(neq));
        neq &= neq - 1;
        size_t p = i + b;
        out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(p - run_start)});
        cur_ch = data[p];
        cur_cls = cls_buf[b];
        mask |= static_cast<uint8_t>(1u << cur_cls);
        run_start = p;
      } while (neq != 0);
    }
    i += 16;
  }
  if (i < n) {
    // Tail: replay the same comparison from a zero-padded copy (including
    // the preceding byte) and trim the boundary mask to the live lanes.
    const size_t r = n - i;
    alignas(16) unsigned char buf[32];
    std::memset(buf, 0, sizeof(buf));
    std::memcpy(buf, data + i - 1, r + 1);
    __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    __m128i curr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 1));
    uint32_t neq =
        (static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(curr, prev))) ^
         0xFFFFu) &
        ((1u << r) - 1u);
    if (neq != 0) {
      _mm_store_si128(reinterpret_cast<__m128i*>(cls_buf), ClassifyVec16(curr));
      do {
        unsigned b = static_cast<unsigned>(__builtin_ctz(neq));
        neq &= neq - 1;
        size_t p = i + b;
        out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(p - run_start)});
        cur_ch = data[p];
        cur_cls = cls_buf[b];
        mask |= static_cast<uint8_t>(1u << cur_cls);
        run_start = p;
      } while (neq != 0);
    }
  }
  out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(n - run_start)});
  return mask;
}

__attribute__((target("avx2"))) inline __m256i ClassifyVec32(__m256i v) {
  // Same LUTs as ClassifyVec16, duplicated per 128-bit lane because
  // vpshufb shuffles within lanes.
  const __m256i hi_lut = _mm256_setr_epi8(
      0, 0, 0, 0x01, 0x02, 0x08, 0x04, 0x10, 0, 0, 0, 0, 0, 0, 0, 0,
      0, 0, 0, 0x01, 0x02, 0x08, 0x04, 0x10, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m256i lo_lut = _mm256_setr_epi8(
      0x19, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1E, 0x06,
      0x06, 0x06, 0x06, 0x06, 0x19, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F,
      0x1F, 0x1F, 0x1E, 0x06, 0x06, 0x06, 0x06, 0x06);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
  __m256i lo = _mm256_and_si256(v, nibble);
  __m256i m = _mm256_and_si256(_mm256_shuffle_epi8(hi_lut, hi),
                               _mm256_shuffle_epi8(lo_lut, lo));
  const __m256i zero = _mm256_setzero_si256();
  __m256i digit = _mm256_cmpgt_epi8(_mm256_and_si256(m, _mm256_set1_epi8(0x01)), zero);
  __m256i upper = _mm256_cmpgt_epi8(_mm256_and_si256(m, _mm256_set1_epi8(0x0A)), zero);
  __m256i lower = _mm256_cmpgt_epi8(_mm256_and_si256(m, _mm256_set1_epi8(0x14)), zero);
  __m256i cls = _mm256_set1_epi8(3);
  cls = _mm256_sub_epi8(cls, _mm256_and_si256(digit, _mm256_set1_epi8(1)));
  cls = _mm256_sub_epi8(cls, _mm256_and_si256(lower, _mm256_set1_epi8(2)));
  cls = _mm256_sub_epi8(cls, _mm256_and_si256(upper, _mm256_set1_epi8(3)));
  return cls;
}

__attribute__((target("avx2")))
uint8_t TokenizeAvx2(const char* data, size_t n, std::vector<ClassRun>* out) {
  if (n == 0) return 0;
  char cur_ch = data[0];
  uint8_t cur_cls = static_cast<uint8_t>(ClassifyChar(cur_ch));
  uint8_t mask = static_cast<uint8_t>(1u << cur_cls);
  size_t run_start = 0;
  size_t i = 1;
  alignas(32) uint8_t cls_buf[32];
  while (i + 32 <= n) {
    __m256i curr = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i prev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i - 1));
    uint32_t neq =
        static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(curr, prev))) ^
        0xFFFFFFFFu;
    if (neq != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(cls_buf), ClassifyVec32(curr));
      do {
        unsigned b = static_cast<unsigned>(__builtin_ctz(neq));
        neq &= neq - 1;
        size_t p = i + b;
        out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(p - run_start)});
        cur_ch = data[p];
        cur_cls = cls_buf[b];
        mask |= static_cast<uint8_t>(1u << cur_cls);
        run_start = p;
      } while (neq != 0);
    }
    i += 32;
  }
  if (i < n) {
    const size_t r = n - i;
    alignas(32) unsigned char buf[64];
    std::memset(buf, 0, sizeof(buf));
    std::memcpy(buf, data + i - 1, r + 1);
    __m256i prev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf));
    __m256i curr = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf + 1));
    uint32_t neq =
        (static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(curr, prev))) ^
         0xFFFFFFFFu) &
        ((r < 32 ? (1u << r) : 0u) - 1u);
    if (neq != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(cls_buf), ClassifyVec32(curr));
      do {
        unsigned b = static_cast<unsigned>(__builtin_ctz(neq));
        neq &= neq - 1;
        size_t p = i + b;
        out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(p - run_start)});
        cur_ch = data[p];
        cur_cls = cls_buf[b];
        mask |= static_cast<uint8_t>(1u << cur_cls);
        run_start = p;
      } while (neq != 0);
    }
  }
  out->push_back(ClassRun{cur_ch, cur_cls, static_cast<uint32_t>(n - run_start)});
  return mask;
}

#endif  // AUTODETECT_X86_SIMD

std::atomic<SimdTier>& TierSlot() {
  static std::atomic<SimdTier> tier{MaxSupportedSimdTier()};
  return tier;
}

}  // namespace

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSSSE3:
      return "ssse3";
    case SimdTier::kAVX2:
      return "avx2";
  }
  return "?";
}

SimdTier MaxSupportedSimdTier() {
#if AUTODETECT_X86_SIMD
  const CpuFeatures& f = DetectCpuFeatures();
  if (f.avx2) return SimdTier::kAVX2;
  if (f.ssse3) return SimdTier::kSSSE3;
#endif
  return SimdTier::kScalar;
}

SimdTier ActiveSimdTier() {
  return TierSlot().load(std::memory_order_relaxed);
}

bool SetSimdTier(SimdTier tier) {
  if (static_cast<uint8_t>(tier) > static_cast<uint8_t>(MaxSupportedSimdTier())) {
    return false;
  }
  TierSlot().store(tier, std::memory_order_relaxed);
  return true;
}

uint8_t TokenizeRuns(std::string_view value, const GeneralizeOptions& options,
                     std::vector<ClassRun>* out) {
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  out->clear();
#if AUTODETECT_X86_SIMD
  // Sub-block values never reach a vector main loop; the scalar loop beats
  // the padded-tail setup there, so route them past the dispatch.
  if (value.size() > 16) {
    switch (ActiveSimdTier()) {
      case SimdTier::kAVX2:
        return TokenizeAvx2(value.data(), value.size(), out);
      case SimdTier::kSSSE3:
        return TokenizeSsse3(value.data(), value.size(), out);
      case SimdTier::kScalar:
        break;
    }
  }
#endif
  return TokenizeScalarImpl(value.data(), value.size(), out);
}

uint8_t TokenizeRunsScalar(std::string_view value, const GeneralizeOptions& options,
                           std::vector<ClassRun>* out) {
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  out->clear();
  return TokenizeScalarImpl(value.data(), value.size(), out);
}

namespace {

/// The O(#runs) derivation core: merge adjacent runs whose classes map to
/// the same node under `targets`, hashing each merged segment exactly the
/// way GeneralizeToKey renders it. Leaf segments never span runs: adjacent
/// runs differ in character by construction, and leaf runs only merge on
/// equal characters.
uint64_t HashRuns(RunSpan runs, const TreeNode* targets, bool collapse) {
  Fnv1aHasher hasher;
  char digits[20];
  const size_t n = runs.size();
  size_t i = 0;
  while (i < n) {
    TreeNode node = targets[runs[i].cls];
    uint64_t count = runs[i].count;
    size_t j = i + 1;
    if (node == TreeNode::kLeaf) {
      char c = runs[i].ch;
      if (c == '\\' || c == '[' || c == ']' || c == '+') hasher.Byte('\\');
      hasher.Byte(static_cast<unsigned char>(c));
    } else {
      while (j < n && targets[runs[j].cls] == node) {
        count += runs[j].count;
        ++j;
      }
      hasher.Str(TreeNodeToken(node));
    }
    if (count > 1) {
      if (collapse) {
        hasher.Byte('+');
      } else {
        hasher.Byte('[');
        int len = 0;
        uint64_t v = count;
        while (v > 0) {
          digits[len++] = static_cast<char>('0' + v % 10);
          v /= 10;
        }
        for (int k = len - 1; k >= 0; --k) {
          hasher.Byte(static_cast<unsigned char>(digits[k]));
        }
        hasher.Byte(']');
      }
    }
    i = j;
  }
  return hasher.h;
}

}  // namespace

uint64_t GeneralizeRunsToKey(RunSpan runs, const GeneralizationLanguage& lang,
                             bool collapse_run_lengths) {
  TreeNode targets[kNumCharClasses];
  for (int c = 0; c < kNumCharClasses; ++c) {
    targets[c] = lang.TargetFor(static_cast<CharClass>(c));
  }
  return HashRuns(runs, targets, collapse_run_lengths);
}

void TokenizedValues::Add(std::string_view value, const GeneralizeOptions& options) {
  masks_.push_back(TokenizeRuns(value, options, &scratch_));
  runs_.insert(runs_.end(), scratch_.begin(), scratch_.end());
  offsets_.push_back(static_cast<uint32_t>(runs_.size()));
}

MultiGeneralizer::MultiGeneralizer(std::vector<GeneralizationLanguage> langs,
                                   GeneralizeOptions options)
    : langs_(std::move(langs)), options_(options) {
  AD_CHECK(langs_.size() <= (1u << 16)) << "too many languages";
  for (uint8_t mask = 0; mask < (1u << kNumCharClasses); ++mask) {
    auto& groups = groups_by_mask_[mask];
    for (size_t li = 0; li < langs_.size(); ++li) {
      std::array<TreeNode, kNumCharClasses> targets;
      for (int c = 0; c < kNumCharClasses; ++c) {
        // Classes absent from the mask cannot influence the key; pin them to
        // kLeaf so languages differing only there share one group.
        targets[c] = (mask >> c) & 1
                         ? langs_[li].TargetFor(static_cast<CharClass>(c))
                         : TreeNode::kLeaf;
      }
      Group* group = nullptr;
      for (auto& g : groups) {
        if (g.targets == targets) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(Group{targets, {}});
        group = &groups.back();
      }
      group->members.push_back(static_cast<uint16_t>(li));
    }
  }
}

MultiGeneralizer MultiGeneralizer::ForIds(const std::vector<int>& lang_ids,
                                          GeneralizeOptions options) {
  const auto& all = LanguageSpace::All();
  std::vector<GeneralizationLanguage> langs;
  langs.reserve(lang_ids.size());
  for (int id : lang_ids) {
    AD_CHECK(id >= 0 && id < static_cast<int>(all.size())) << "bad language id";
    langs.push_back(all[static_cast<size_t>(id)]);
  }
  return MultiGeneralizer(std::move(langs), options);
}

void MultiGeneralizer::KeysFor(RunSpan runs, uint8_t class_mask,
                               uint64_t* out_keys) const {
  for (const Group& g : groups_by_mask_[class_mask & 0xf]) {
    uint64_t key = HashRuns(runs, g.targets.data(), options_.collapse_run_lengths);
    for (uint16_t m : g.members) out_keys[m] = key;
  }
}

void MultiGeneralizer::KeysForValue(std::string_view value, uint64_t* out_keys) const {
  std::vector<ClassRun> runs;
  uint8_t mask = TokenizeRuns(value, options_, &runs);
  KeysFor(RunSpan(runs), mask, out_keys);
}

void MultiGeneralizeToKeys(std::string_view value, const std::vector<int>& lang_ids,
                           const GeneralizeOptions& options, uint64_t* out_keys) {
  MultiGeneralizer::ForIds(lang_ids, options).KeysForValue(value, out_keys);
}

}  // namespace autodetect
