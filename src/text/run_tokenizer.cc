#include "text/run_tokenizer.h"

#include "common/hash.h"
#include "common/logging.h"

namespace autodetect {

uint8_t TokenizeRuns(std::string_view value, const GeneralizeOptions& options,
                     std::vector<ClassRun>* out) {
  if (value.size() > options.max_value_length) {
    value = value.substr(0, options.max_value_length);
  }
  out->clear();
  uint8_t mask = 0;
  size_t i = 0;
  while (i < value.size()) {
    char c = value[i];
    size_t j = i + 1;
    while (j < value.size() && value[j] == c) ++j;
    uint8_t cls = static_cast<uint8_t>(ClassifyChar(c));
    mask |= static_cast<uint8_t>(1u << cls);
    out->push_back(ClassRun{c, cls, static_cast<uint32_t>(j - i)});
    i = j;
  }
  return mask;
}

namespace {

/// The O(#runs) derivation core: merge adjacent runs whose classes map to
/// the same node under `targets`, hashing each merged segment exactly the
/// way GeneralizeToKey renders it. Leaf segments never span runs: adjacent
/// runs differ in character by construction, and leaf runs only merge on
/// equal characters.
uint64_t HashRuns(RunSpan runs, const TreeNode* targets, bool collapse) {
  Fnv1aHasher hasher;
  char digits[20];
  const size_t n = runs.size();
  size_t i = 0;
  while (i < n) {
    TreeNode node = targets[runs[i].cls];
    uint64_t count = runs[i].count;
    size_t j = i + 1;
    if (node == TreeNode::kLeaf) {
      char c = runs[i].ch;
      if (c == '\\' || c == '[' || c == ']' || c == '+') hasher.Byte('\\');
      hasher.Byte(static_cast<unsigned char>(c));
    } else {
      while (j < n && targets[runs[j].cls] == node) {
        count += runs[j].count;
        ++j;
      }
      hasher.Str(TreeNodeToken(node));
    }
    if (count > 1) {
      if (collapse) {
        hasher.Byte('+');
      } else {
        hasher.Byte('[');
        int len = 0;
        uint64_t v = count;
        while (v > 0) {
          digits[len++] = static_cast<char>('0' + v % 10);
          v /= 10;
        }
        for (int k = len - 1; k >= 0; --k) {
          hasher.Byte(static_cast<unsigned char>(digits[k]));
        }
        hasher.Byte(']');
      }
    }
    i = j;
  }
  return hasher.h;
}

}  // namespace

uint64_t GeneralizeRunsToKey(RunSpan runs, const GeneralizationLanguage& lang,
                             bool collapse_run_lengths) {
  TreeNode targets[kNumCharClasses];
  for (int c = 0; c < kNumCharClasses; ++c) {
    targets[c] = lang.TargetFor(static_cast<CharClass>(c));
  }
  return HashRuns(runs, targets, collapse_run_lengths);
}

void TokenizedValues::Add(std::string_view value, const GeneralizeOptions& options) {
  masks_.push_back(TokenizeRuns(value, options, &scratch_));
  runs_.insert(runs_.end(), scratch_.begin(), scratch_.end());
  offsets_.push_back(static_cast<uint32_t>(runs_.size()));
}

MultiGeneralizer::MultiGeneralizer(std::vector<GeneralizationLanguage> langs,
                                   GeneralizeOptions options)
    : langs_(std::move(langs)), options_(options) {
  AD_CHECK(langs_.size() <= (1u << 16)) << "too many languages";
  for (uint8_t mask = 0; mask < (1u << kNumCharClasses); ++mask) {
    auto& groups = groups_by_mask_[mask];
    for (size_t li = 0; li < langs_.size(); ++li) {
      std::array<TreeNode, kNumCharClasses> targets;
      for (int c = 0; c < kNumCharClasses; ++c) {
        // Classes absent from the mask cannot influence the key; pin them to
        // kLeaf so languages differing only there share one group.
        targets[c] = (mask >> c) & 1
                         ? langs_[li].TargetFor(static_cast<CharClass>(c))
                         : TreeNode::kLeaf;
      }
      Group* group = nullptr;
      for (auto& g : groups) {
        if (g.targets == targets) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(Group{targets, {}});
        group = &groups.back();
      }
      group->members.push_back(static_cast<uint16_t>(li));
    }
  }
}

MultiGeneralizer MultiGeneralizer::ForIds(const std::vector<int>& lang_ids,
                                          GeneralizeOptions options) {
  const auto& all = LanguageSpace::All();
  std::vector<GeneralizationLanguage> langs;
  langs.reserve(lang_ids.size());
  for (int id : lang_ids) {
    AD_CHECK(id >= 0 && id < static_cast<int>(all.size())) << "bad language id";
    langs.push_back(all[static_cast<size_t>(id)]);
  }
  return MultiGeneralizer(std::move(langs), options);
}

void MultiGeneralizer::KeysFor(RunSpan runs, uint8_t class_mask,
                               uint64_t* out_keys) const {
  for (const Group& g : groups_by_mask_[class_mask & 0xf]) {
    uint64_t key = HashRuns(runs, g.targets.data(), options_.collapse_run_lengths);
    for (uint16_t m : g.members) out_keys[m] = key;
  }
}

void MultiGeneralizer::KeysForValue(std::string_view value, uint64_t* out_keys) const {
  std::vector<ClassRun> runs;
  uint8_t mask = TokenizeRuns(value, options_, &runs);
  KeysFor(RunSpan(runs), mask, out_keys);
}

void MultiGeneralizeToKeys(std::string_view value, const std::vector<int>& lang_ids,
                           const GeneralizeOptions& options, uint64_t* out_keys) {
  MultiGeneralizer::ForIds(lang_ids, options).KeysForValue(value, out_keys);
}

}  // namespace autodetect
