#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "text/language.h"
#include "text/pattern.h"

/// \file run_tokenizer.h
/// Shared-tokenization generalization kernel. Every language in
/// LanguageSpace::All() is a coarsening of the same leaf-level tokenization
/// (maximal runs of identical characters), so a value needs to be scanned
/// only ONCE: tokenize it into char-class runs, then derive each language's
/// pattern key from the run list in O(#runs) by merging adjacent runs whose
/// classes map to the same tree node under that language. Keys are
/// bit-identical to GeneralizeToKey (property-tested), so models and
/// calibrated thresholds are unchanged — only throughput differs.
///
/// Two further exploits on top of tokenize-once:
///  * a per-language class→node table turns the per-character lang.Map()
///    of the naive path into one array lookup per run;
///  * languages that agree on every char class PRESENT IN the value produce
///    the same key, so MultiGeneralizer groups languages by their projection
///    onto the value's class mask and hashes once per group. A digits+symbols
///    value (dates, numbers, phones…) needs 9 hashes for all 144 languages.

namespace autodetect {

/// One maximal run of identical characters — the leaf-level refinement every
/// generalization language coarsens.
struct ClassRun {
  char ch = 0;        ///< the literal character of the run
  uint8_t cls = 0;    ///< static_cast<uint8_t>(ClassifyChar(ch))
  uint32_t count = 0; ///< run length, >= 1

  bool operator==(const ClassRun&) const = default;
};

using RunSpan = std::span<const ClassRun>;

/// The tokenizer implementation tiers, ordered weakest to widest. Dispatch
/// picks the widest tier the build and the host CPU both support; tests and
/// the --no-simd escape hatch can pin a weaker one. Every tier produces
/// byte-identical run lists (fuzz-verified against the scalar reference).
enum class SimdTier : uint8_t {
  kScalar = 0,  ///< one byte at a time — the reference implementation
  kSSSE3 = 1,   ///< 16 bytes/iteration: pshufb nibble-LUT classes + movemask
  kAVX2 = 2,    ///< 32 bytes/iteration, same scheme on 256-bit vectors
};

std::string_view SimdTierName(SimdTier tier);

/// Widest tier this build + CPU supports (kScalar under AUTODETECT_NO_SIMD
/// or on non-x86 hosts).
SimdTier MaxSupportedSimdTier();

/// The currently dispatched tier.
SimdTier ActiveSimdTier();

/// \brief Re-pins the dispatched tier. Returns false (and changes nothing)
/// when the tier is not supported here. Thread-safe, but intended for
/// startup/tests — flipping it mid-scan is safe yet pointless.
bool SetSimdTier(SimdTier tier);

/// \brief Tokenizes `value` (truncated to options.max_value_length, exactly
/// like the Generalize* family) into maximal identical-character runs.
/// Clears and fills `*out`; returns the 4-bit mask of char classes present
/// (bit i = CharClass i), which MultiGeneralizer uses for key sharing.
/// Dispatches to the active SIMD tier.
uint8_t TokenizeRuns(std::string_view value, const GeneralizeOptions& options,
                     std::vector<ClassRun>* out);

/// \brief The scalar reference tokenizer, always available regardless of the
/// dispatched tier — the ground truth the SIMD tiers are fuzzed against.
uint8_t TokenizeRunsScalar(std::string_view value, const GeneralizeOptions& options,
                           std::vector<ClassRun>* out);

/// \brief Derives one language's pattern key from a run list. Bit-identical
/// to GeneralizeToKey(value, lang, options) when `runs` came from
/// TokenizeRuns(value, options, ...).
uint64_t GeneralizeRunsToKey(RunSpan runs, const GeneralizationLanguage& lang,
                             bool collapse_run_lengths = false);

/// \brief Arena of tokenized values: run storage for a whole batch of values
/// in two flat vectors (no per-value allocation). Used by the stats builder
/// to tokenize each column batch once and fan the run lists out to the
/// per-language workers.
class TokenizedValues {
 public:
  /// Tokenizes and appends one value.
  void Add(std::string_view value, const GeneralizeOptions& options);

  size_t size() const { return masks_.size(); }
  RunSpan Runs(size_t i) const {
    return RunSpan(runs_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }
  uint8_t ClassMask(size_t i) const { return masks_[i]; }

  void Clear() {
    runs_.clear();
    offsets_.resize(1);
    masks_.clear();
  }

 private:
  std::vector<ClassRun> runs_;
  std::vector<uint32_t> offsets_ = {0};
  std::vector<uint8_t> masks_;
  std::vector<ClassRun> scratch_;
};

/// \brief Derives the pattern keys of one tokenized value under a fixed set
/// of languages, sharing work between languages that are indistinguishable
/// on the value's char classes. Construction precomputes, for every possible
/// class mask, the grouping of the language set by its class→node tables
/// projected onto that mask; KeysFor then hashes once per group.
class MultiGeneralizer {
 public:
  explicit MultiGeneralizer(std::vector<GeneralizationLanguage> langs,
                            GeneralizeOptions options = {});

  /// Languages given by id into LanguageSpace::All().
  static MultiGeneralizer ForIds(const std::vector<int>& lang_ids,
                                 GeneralizeOptions options = {});

  size_t num_languages() const { return langs_.size(); }
  const GeneralizationLanguage& language(size_t i) const { return langs_[i]; }
  const GeneralizeOptions& options() const { return options_; }

  /// \brief Writes one key per language (constructor order) into
  /// `out_keys[0 .. num_languages())`. `class_mask` must be the mask
  /// TokenizeRuns returned for these runs.
  void KeysFor(RunSpan runs, uint8_t class_mask, uint64_t* out_keys) const;

  /// Convenience: tokenize + derive in one call (allocates a scratch run
  /// buffer; hot paths should tokenize once and call KeysFor).
  void KeysForValue(std::string_view value, uint64_t* out_keys) const;

 private:
  /// Languages whose class→node tables agree on every class of one mask.
  struct Group {
    std::array<TreeNode, kNumCharClasses> targets;
    std::vector<uint16_t> members;  ///< indices into langs_
  };

  std::vector<GeneralizationLanguage> langs_;
  GeneralizeOptions options_;
  std::array<std::vector<Group>, 1 << kNumCharClasses> groups_by_mask_;
};

/// \brief One-shot convenience over the kernel: tokenizes `value` once and
/// derives its key under every language of `lang_ids` (ids into
/// LanguageSpace::All()) into `out_keys`. Prefer a long-lived
/// MultiGeneralizer when processing many values.
void MultiGeneralizeToKeys(std::string_view value, const std::vector<int>& lang_ids,
                           const GeneralizeOptions& options, uint64_t* out_keys);

}  // namespace autodetect
