#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file column.h
/// The single-column data model: Auto-Detect consumes tables strictly as
/// bags of columns (paper Sec. 2.1), so a column — a list of cell strings
/// plus provenance/ground-truth metadata — is the core container.

namespace autodetect {

/// Known error classes, mirroring the paper's published examples
/// (Fig. 1, Fig. 2, Table 4 on Wikipedia/Excel data).
enum class ErrorClass : uint8_t {
  kNone = 0,
  kExtraDot,           ///< "1874" -> "1874."  (Fig. 1a, Table 4 rows 3-7)
  kMixedDateFormat,    ///< "2011-01-01" mixed into "2011.01.01" column (Fig. 1b/h)
  kExtraSpace,         ///< leading/trailing/embedded stray space (Fig. 2a)
  kPlaceholder,        ///< "-", "N/A", "TBD" in a data column (Fig. 1d)
  kTruncatedDigits,    ///< "1,875" -> "1,87" (Table 4 row 8)
  kMixedPhoneFormat,   ///< phone rendered in a foreign format (Fig. 2b)
  kNumberAsText,       ///< "123" -> "'123" (Excel number-stored-as-text)
  kUnitMismatch,       ///< "79 kg" mixed into "155 lb" column (Fig. 1c)
  kCaseMangled,        ///< "Seattle" -> "seattle"
  kSeparatorSwap,      ///< "1,234" -> "1.234"
  kForeignValue,       ///< value spliced from an unrelated column (Sec. 4.4)
  kMixedTimeFormat,    ///< "3:45" mixed with "3m 45s" (Fig. 1e)
  kParenthesis,        ///< "(1984)" vs "1984" (Fig. 1f)
};

std::string_view ErrorClassName(ErrorClass e);

/// \brief One table column: cell values plus (for synthetic data) the
/// generating domain and injected-error ground truth.
struct Column {
  std::vector<std::string> values;

  /// Name of the value domain that produced this column; empty for columns
  /// parsed from files.
  std::string domain;

  /// Index of the injected incompatible value, or -1 when clean.
  int32_t dirty_index = -1;
  ErrorClass error_class = ErrorClass::kNone;

  bool dirty() const { return dirty_index >= 0; }
  size_t size() const { return values.size(); }

  /// Ground truth accessor; requires dirty().
  const std::string& dirty_value() const { return values[static_cast<size_t>(dirty_index)]; }
};

/// \brief An in-memory bag of columns with summary accounting.
class Corpus {
 public:
  void Add(Column column) { columns_.push_back(std::move(column)); }
  void Reserve(size_t n) { columns_.reserve(n); }

  const std::vector<Column>& columns() const { return columns_; }
  std::vector<Column>& columns() { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& operator[](size_t i) const { return columns_[i]; }

  size_t CountDirty() const {
    size_t n = 0;
    for (const auto& c : columns_) n += c.dirty() ? 1 : 0;
    return n;
  }

  size_t TotalCells() const {
    size_t n = 0;
    for (const auto& c : columns_) n += c.size();
    return n;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace autodetect
