#include "corpus/corpus_generator.h"

#include "common/logging.h"

namespace autodetect {

namespace {
void SetWeights(CorpusProfile* p, double numeric, double date, double time, double text,
                double code, double contact, double misc) {
  p->category_weights[static_cast<int>(DomainCategory::kNumeric)] = numeric;
  p->category_weights[static_cast<int>(DomainCategory::kDate)] = date;
  p->category_weights[static_cast<int>(DomainCategory::kTime)] = time;
  p->category_weights[static_cast<int>(DomainCategory::kText)] = text;
  p->category_weights[static_cast<int>(DomainCategory::kCode)] = code;
  p->category_weights[static_cast<int>(DomainCategory::kContact)] = contact;
  p->category_weights[static_cast<int>(DomainCategory::kMisc)] = misc;
}
}  // namespace

CorpusProfile CorpusProfile::Web() {
  CorpusProfile p;
  p.name = "WEB";
  SetWeights(&p, 1.0, 0.9, 0.4, 1.0, 0.5, 0.5, 0.5);
  p.dirty_rate = 0.069;  // paper: 93.1% of sampled web columns were clean
  return p;
}

CorpusProfile CorpusProfile::Wiki() {
  CorpusProfile p;
  p.name = "WIKI";
  // Wikipedia tables: heavy on dates, years, scores, names; light on
  // emails/phones/urls.
  SetWeights(&p, 1.0, 1.2, 0.6, 1.2, 0.3, 0.1, 0.8);
  p.dirty_rate = 0.022;  // paper: 97.8% clean
  return p;
}

CorpusProfile CorpusProfile::PubXls() {
  CorpusProfile p;
  p.name = "Pub-XLS";
  SetWeights(&p, 1.6, 0.8, 0.4, 0.8, 0.6, 0.4, 0.4);
  p.dirty_rate = 0.05;
  return p;
}

CorpusProfile CorpusProfile::EntXls() {
  CorpusProfile p;
  p.name = "Ent-XLS";
  SetWeights(&p, 2.4, 0.7, 0.3, 0.6, 0.8, 0.4, 0.3);
  p.dirty_rate = 0.03;
  return p;
}

GeneratedColumnSource::GeneratedColumnSource(GeneratorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  AD_CHECK(options_.num_columns > 0);
  AD_CHECK(options_.profile.min_rows >= 2);
  AD_CHECK(options_.profile.min_rows <= options_.profile.max_rows);
  SampleDomainTable();
}

void GeneratedColumnSource::SampleDomainTable() {
  cdf_.clear();
  total_weight_ = 0;
  for (const ValueDomain* d : DomainRegistry::Global().all()) {
    double w =
        options_.profile.category_weights[static_cast<int>(d->category())] *
        d->base_weight();
    if (w <= 0) continue;
    total_weight_ += w;
    cdf_.emplace_back(total_weight_, d);
  }
  AD_CHECK(!cdf_.empty());
}

bool GeneratedColumnSource::Next(Column* out) {
  if (produced_ >= options_.num_columns) return false;
  // Every column gets its own generator forked from the master stream, so a
  // column's content depends only on (seed, index).
  Pcg32 col_rng = rng_.Fork();
  ++produced_;

  double x = col_rng.NextDouble() * total_weight_;
  const ValueDomain* domain = cdf_.back().second;
  for (const auto& [cum, d] : cdf_) {
    if (x <= cum) {
      domain = d;
      break;
    }
  }

  size_t rows = static_cast<size_t>(
      col_rng.Uniform(static_cast<int64_t>(options_.profile.min_rows),
                      static_cast<int64_t>(options_.profile.max_rows)));

  out->values = domain->GenerateColumn(rows, &col_rng);
  out->domain = domain->name();
  out->dirty_index = -1;
  out->error_class = ErrorClass::kNone;

  // Feed the foreign-value donor pool before possibly dirtying this column.
  if (foreign_pool_.size() < 512) {
    foreign_pool_.push_back(out->values[col_rng.Below(static_cast<uint32_t>(rows))]);
  } else if (col_rng.Chance(0.05)) {
    foreign_pool_[col_rng.Below(512)] =
        out->values[col_rng.Below(static_cast<uint32_t>(rows))];
  }

  if (options_.inject_errors && col_rng.Chance(options_.profile.dirty_rate)) {
    injector_.Inject(out, foreign_pool_, &col_rng);
  }
  return true;
}

void GeneratedColumnSource::Reset() {
  rng_ = Pcg32(options_.seed);
  produced_ = 0;
  foreign_pool_.clear();
  SampleDomainTable();
}

Corpus GenerateCorpus(const GeneratorOptions& options) {
  GeneratedColumnSource source(options);
  Corpus corpus;
  corpus.Reserve(options.num_columns);
  Column c;
  while (source.Next(&c)) corpus.Add(std::move(c));
  return corpus;
}

}  // namespace autodetect
