#include "corpus/error_injector.h"

#include <algorithm>

#include "common/string_util.h"
#include "corpus/value_domains.h"

namespace autodetect {

std::string_view ErrorClassName(ErrorClass e) {
  switch (e) {
    case ErrorClass::kNone:
      return "none";
    case ErrorClass::kExtraDot:
      return "extra_dot";
    case ErrorClass::kMixedDateFormat:
      return "mixed_date_format";
    case ErrorClass::kExtraSpace:
      return "extra_space";
    case ErrorClass::kPlaceholder:
      return "placeholder";
    case ErrorClass::kTruncatedDigits:
      return "truncated_digits";
    case ErrorClass::kMixedPhoneFormat:
      return "mixed_phone_format";
    case ErrorClass::kNumberAsText:
      return "number_as_text";
    case ErrorClass::kUnitMismatch:
      return "unit_mismatch";
    case ErrorClass::kCaseMangled:
      return "case_mangled";
    case ErrorClass::kSeparatorSwap:
      return "separator_swap";
    case ErrorClass::kForeignValue:
      return "foreign_value";
    case ErrorClass::kMixedTimeFormat:
      return "mixed_time_format";
    case ErrorClass::kParenthesis:
      return "parenthesis";
  }
  return "?";
}

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Looks like "dddd<sep>dd<sep>dd" or "dd<sep>dd<sep>dddd" with a single
/// separator character.
bool LooksLikeSeparatedDate(const std::string& v, char* sep_out) {
  int digits = 0;
  char sep = 0;
  int seps = 0;
  for (char c : v) {
    if (IsDigit(c)) {
      ++digits;
    } else if (c == '-' || c == '/' || c == '.') {
      if (sep == 0) sep = c;
      if (c != sep) return false;
      ++seps;
    } else {
      return false;
    }
  }
  if (seps != 2 || digits < 6 || digits > 8) return false;
  *sep_out = sep;
  return true;
}

bool LooksLikePhone(const std::string& v) {
  int digits = 0;
  for (char c : v) {
    if (IsDigit(c)) ++digits;
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) return false;
  }
  if (digits != 10 && digits != 11) return false;
  return v.find('-') != std::string::npos || v.find('(') != std::string::npos ||
         v.find('.') != std::string::npos || v.find(' ') != std::string::npos;
}

bool LooksLikeClockTime(const std::string& v) {
  size_t colon = v.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= v.size()) return false;
  for (char c : v) {
    if (!IsDigit(c) && c != ':') return false;
  }
  return true;
}

bool EndsWithUnit(const std::string& v, std::string* unit_out) {
  static const std::vector<std::string> kUnits = {"kg", "lb", "km", "mi",
                                                  "cm", "ft", "m"};
  for (const auto& u : kUnits) {
    if (EndsWith(v, u)) {
      size_t prefix = v.size() - u.size();
      // Unit must follow a digit or a space after a digit.
      if (prefix == 0) continue;
      char before = v[prefix - 1];
      if (IsDigit(before) || before == ' ' || before == '.') {
        *unit_out = u;
        return true;
      }
    }
  }
  return false;
}

bool HasLetters(const std::string& v) {
  for (char c : v) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) return true;
  }
  return false;
}

int CountDigits(const std::string& v) {
  int n = 0;
  for (char c : v) n += IsDigit(c) ? 1 : 0;
  return n;
}

}  // namespace

Result<std::string> ApplyErrorClass(ErrorClass error_class, const std::string& value,
                                    Pcg32* rng) {
  switch (error_class) {
    case ErrorClass::kExtraDot: {
      if (value.empty() || !IsDigit(value.back())) {
        return Status::Invalid("extra_dot needs trailing digit");
      }
      return value + ".";
    }
    case ErrorClass::kMixedDateFormat: {
      char sep;
      if (!LooksLikeSeparatedDate(value, &sep)) {
        return Status::Invalid("not a separated date");
      }
      static const char kSeps[] = {'-', '/', '.'};
      char replacement;
      do {
        replacement = kSeps[rng->Below(3)];
      } while (replacement == sep);
      std::string out = value;
      std::replace(out.begin(), out.end(), sep, replacement);
      return out;
    }
    case ErrorClass::kExtraSpace: {
      if (value.empty()) return Status::Invalid("empty value");
      std::string out = value;
      switch (out.size() > 1 ? rng->Below(3) : rng->Below(2)) {
        case 0:
          out.insert(out.begin(), ' ');
          break;
        case 1:
          out.push_back(' ');
          break;
        default:
          out.insert(out.begin() + 1 + rng->Below(static_cast<uint32_t>(out.size() - 1)),
                     ' ');
          break;
      }
      return out;
    }
    case ErrorClass::kPlaceholder: {
      static const std::vector<std::string> kPlaceholders = {"-", "N/A", "TBD", "?",
                                                             "--", "n/a"};
      // A placeholder injected into a placeholder-like column is not an error.
      if (value.size() <= 3 && !HasLetters(value) && CountDigits(value) == 0) {
        return Status::Invalid("column already placeholder-like");
      }
      return rng->Pick(kPlaceholders);
    }
    case ErrorClass::kTruncatedDigits: {
      if (CountDigits(value) < 3 || !IsDigit(value.back())) {
        return Status::Invalid("needs >=3 digits and trailing digit");
      }
      return value.substr(0, value.size() - 1);
    }
    case ErrorClass::kMixedPhoneFormat: {
      if (!LooksLikePhone(value)) return Status::Invalid("not a phone");
      std::string digits;
      for (char c : value) {
        if (IsDigit(c)) digits.push_back(c);
      }
      if (digits.size() == 11 && digits[0] == '1') digits = digits.substr(1);
      if (digits.size() != 10) return Status::Invalid("not 10 phone digits");
      // Re-render in a format that produces a different string.
      for (int attempt = 0; attempt < 8; ++attempt) {
        std::string out = valuegen::RenderPhone(
            digits, static_cast<int>(rng->Below(valuegen::kNumPhoneFormats)));
        if (out != value) return out;
      }
      return Status::Invalid("could not change format");
    }
    case ErrorClass::kNumberAsText: {
      if (value.empty() || CountDigits(value) != static_cast<int>(value.size())) {
        return Status::Invalid("not a plain number");
      }
      return rng->Chance(0.5) ? "'" + value : "\"" + value + "\"";
    }
    case ErrorClass::kUnitMismatch: {
      std::string unit;
      if (!EndsWithUnit(value, &unit)) return Status::Invalid("no unit suffix");
      static const std::vector<std::pair<std::string, std::string>> kSwaps = {
          {"kg", "lb"}, {"lb", "kg"}, {"km", "mi"}, {"mi", "km"},
          {"cm", "in"}, {"ft", "m"},  {"m", "ft"}};
      for (const auto& [from, to] : kSwaps) {
        if (unit == from) {
          return value.substr(0, value.size() - from.size()) + to;
        }
      }
      return Status::Invalid("no swap for unit");
    }
    case ErrorClass::kCaseMangled: {
      if (value.empty() || !(value[0] >= 'A' && value[0] <= 'Z')) {
        return Status::Invalid("needs leading capital");
      }
      std::string out = value;
      out[0] = static_cast<char>(out[0] - 'A' + 'a');
      return out;
    }
    case ErrorClass::kSeparatorSwap: {
      if (value.find(',') == std::string::npos || HasLetters(value)) {
        return Status::Invalid("no comma separator");
      }
      std::string out = value;
      for (char& c : out) {
        if (c == ',') {
          c = '.';
        } else if (c == '.') {
          c = ',';
        }
      }
      return out;
    }
    case ErrorClass::kMixedTimeFormat: {
      if (!LooksLikeClockTime(value)) return Status::Invalid("not a clock time");
      std::string out = value;
      if (rng->Chance(0.5)) {
        std::replace(out.begin(), out.end(), ':', '.');
      } else {
        size_t colon = out.find(':');
        out = out.substr(0, colon) + "m " + out.substr(colon + 1) + "s";
      }
      return out;
    }
    case ErrorClass::kParenthesis: {
      if (value.empty() || value[0] == '(') return Status::Invalid("already wrapped");
      return "(" + value + ")";
    }
    case ErrorClass::kForeignValue:
      return Status::Invalid("foreign value needs a donor pool");
    case ErrorClass::kNone:
      return Status::Invalid("kNone is not injectable");
  }
  return Status::Invalid("unknown error class");
}

std::vector<ErrorClass> ApplicableErrorClasses(const std::string& value) {
  static const ErrorClass kSyntacticClasses[] = {
      ErrorClass::kExtraDot,        ErrorClass::kMixedDateFormat,
      ErrorClass::kExtraSpace,      ErrorClass::kPlaceholder,
      ErrorClass::kTruncatedDigits, ErrorClass::kMixedPhoneFormat,
      ErrorClass::kNumberAsText,    ErrorClass::kUnitMismatch,
      ErrorClass::kCaseMangled,     ErrorClass::kSeparatorSwap,
      ErrorClass::kMixedTimeFormat, ErrorClass::kParenthesis,
  };
  std::vector<ErrorClass> out;
  Pcg32 probe(7);  // deterministic precondition probing
  for (ErrorClass e : kSyntacticClasses) {
    if (ApplyErrorClass(e, value, &probe).ok()) out.push_back(e);
  }
  return out;
}

bool ErrorInjector::Inject(Column* column, const std::vector<std::string>& foreign_pool,
                           Pcg32* rng) const {
  if (column->values.empty()) return false;
  // Pick a victim cell, then an applicable class.
  for (int attempt = 0; attempt < 6; ++attempt) {
    uint32_t idx = rng->Below(static_cast<uint32_t>(column->values.size()));
    const std::string& victim = column->values[idx];

    bool try_foreign = !foreign_pool.empty() && rng->Chance(options_.foreign_value_weight);
    if (try_foreign) {
      const std::string& donor = rng->Pick(foreign_pool);
      if (donor != victim) {
        column->values[idx] = donor;
        column->dirty_index = static_cast<int32_t>(idx);
        column->error_class = ErrorClass::kForeignValue;
        return true;
      }
      continue;
    }

    std::vector<ErrorClass> applicable = ApplicableErrorClasses(victim);
    if (applicable.empty()) continue;
    ErrorClass chosen = rng->Pick(applicable);
    auto mutated = ApplyErrorClass(chosen, victim, rng);
    if (!mutated.ok()) continue;
    if (*mutated == victim) continue;
    column->values[idx] = *mutated;
    column->dirty_index = static_cast<int32_t>(idx);
    column->error_class = chosen;
    return true;
  }
  return false;
}

}  // namespace autodetect
