#include "corpus/value_domains.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace autodetect {

std::string_view DomainCategoryName(DomainCategory c) {
  switch (c) {
    case DomainCategory::kNumeric:
      return "numeric";
    case DomainCategory::kDate:
      return "date";
    case DomainCategory::kTime:
      return "time";
    case DomainCategory::kText:
      return "text";
    case DomainCategory::kCode:
      return "code";
    case DomainCategory::kContact:
      return "contact";
    case DomainCategory::kMisc:
      return "misc";
  }
  return "?";
}

std::vector<std::string> ValueDomain::GenerateColumn(size_t n, Pcg32* rng) const {
  auto sampler = MakeColumnSampler(rng);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(sampler(rng));
  return out;
}

namespace valuegen {

std::string PadNumber(int64_t v, int width) {
  return PadLeft(std::to_string(v), static_cast<size_t>(width), '0');
}

std::string FormatInt(int64_t v, bool separators) {
  return separators ? WithThousandSeparators(v) : std::to_string(v);
}

std::string FormatFixed(double v, int decimals) {
  return StrFormat("%.*f", decimals, v);
}

const std::vector<std::string>& MonthNamesFull() {
  static const std::vector<std::string> kMonths = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December"};
  return kMonths;
}

const std::vector<std::string>& MonthNamesAbbrev() {
  static const std::vector<std::string> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                   "May", "Jun", "Jul", "Aug",
                                                   "Sep", "Oct", "Nov", "Dec"};
  return kMonths;
}

const std::vector<std::string>& FirstNames() {
  // Name lengths are spread 3-8 with several names per length, so every
  // (first length, last length) pattern combination is well covered in the
  // corpus statistics.
  static const std::vector<std::string> kNames = {
      "James", "Mary",    "Robert", "Patricia", "John",   "Jennifer", "Michael",
      "Linda", "David",   "Sarah",  "William",  "Jessica", "Richard", "Karen",
      "Thomas", "Nancy",  "Carlos", "Sofia",    "Wei",    "Yuki",     "Priya",
      "Ahmed", "Fatima",  "Ivan",   "Elena",    "Pierre", "Marie",    "Hans",
      "Ingrid", "Pedro",  "Ian",    "Lee",      "Ana",    "Max",      "Eva",
      "Sam",   "Kim",     "Bo",     "Al"};
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Smith",   "Johnson", "Williams", "Brown",    "Jones",    "Garcia",
      "Miller",  "Davis",   "Martinez", "Lopez",    "Wilson",   "Anderson",
      "Taylor",  "Thomas",  "Moore",    "Jackson",  "Lee",      "Chen",
      "Wang",    "Kumar",   "Singh",    "Tanaka",   "Mueller",  "Rossi",
      "Ivanov",  "Kowalski", "Nguyen",  "Kim",      "Park",     "Silva"};
  return kNames;
}

const std::vector<std::string>& CityNames() {
  // Includes multi-word and punctuated names on purpose: real place-name
  // columns mix "Seattle" with "New York" and "St. Louis", and that benign
  // local diversity is precisely what defeats local outlier detectors
  // while global co-occurrence statistics shrug it off (paper Sec. 1).
  static const std::vector<std::string> kCities = {
      "Seattle",   "London",    "Paris",     "Tokyo",    "Berlin",   "Madrid",
      "Rome",      "Vienna",    "Prague",    "Dublin",   "Oslo",     "Helsinki",
      "Warsaw",    "Lisbon",    "Athens",    "Budapest", "Brussels", "Amsterdam",
      "Stockholm", "Copenhagen", "Toronto",  "Chicago",  "Boston",   "Denver",
      "Austin",    "Portland",  "Houston",   "Phoenix",  "Atlanta",  "Miami",
      "New York",  "Los Angeles", "San Francisco", "St. Louis", "New Orleans",
      "Salt Lake City", "Rio de Janeiro", "Buenos Aires", "Cape Town",
      "Hong Kong"};
  return kCities;
}

const std::vector<std::string>& CommonWords() {
  // Length spread is deliberate but *bounded* (3, 5, 6 or 8 chars): real
  // text columns mix short and long tokens — that in-column diversity
  // teaches Auto-Detect that a length mismatch alone is not an error — but
  // the pattern space must stay coverable by a reduced-scale corpus (see
  // DESIGN.md), or every long phrase becomes a statistically unseen
  // pattern.
  static const std::vector<std::string> kWords = {
      "sea",    "sky",    "oak",    "inn",    "fox",    "bay",
      "river",  "tower",  "ridge",  "manor",  "plaza",  "grove",
      "bridge", "museum", "temple", "church", "school", "harbor",
      "mountain", "hospital", "fortress", "aquaduct", "pavilion", "monument"};
  return kWords;
}

int DaysInMonth(int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  AD_DCHECK(month >= 1 && month <= 12);
  return kDays[month - 1];
}

std::string RenderPhone(const std::string& digits10, int format) {
  AD_DCHECK(digits10.size() == 10);
  std::string a = digits10.substr(0, 3), b = digits10.substr(3, 3),
              c = digits10.substr(6, 4);
  switch (format) {
    case 0:
      return "(" + a + ") " + b + "-" + c;
    case 1:
      return a + "-" + b + "-" + c;
    case 2:
      return a + "." + b + "." + c;
    case 3:
      return "+1 " + a + " " + b + " " + c;
    default:
      AD_LOG(Fatal) << "bad phone format " << format;
      return "";
  }
}

}  // namespace valuegen

namespace {

using valuegen::FormatFixed;
using valuegen::FormatInt;
using valuegen::PadNumber;

using Sampler = std::function<std::string(Pcg32*)>;
using SamplerFactory = std::function<Sampler(Pcg32*)>;

/// Concrete domain defined by a factory lambda.
class LambdaDomain final : public ValueDomain {
 public:
  LambdaDomain(std::string name, DomainCategory category, double base_weight,
               SamplerFactory factory)
      : ValueDomain(std::move(name), category, base_weight),
        factory_(std::move(factory)) {}

  Sampler MakeColumnSampler(Pcg32* rng) const override { return factory_(rng); }

 private:
  SamplerFactory factory_;
};

std::string RandomYear(Pcg32* rng) {
  return std::to_string(rng->Uniform(1850, 2030));
}

/// Log-uniform positive integer with `min_digits`..`max_digits` decimal
/// digits: digit count uniform, then value uniform within that width. Real
/// count/population/amount columns mix magnitudes like this — the property
/// that makes "100" and "1,000,000" genuinely co-occur in tables (paper
/// Sec. 1, Col-1 discussion).
int64_t LogUniformInt(Pcg32* rng, int min_digits, int max_digits) {
  int digits = static_cast<int>(rng->Uniform(min_digits, max_digits));
  int64_t lo = 1;
  for (int i = 1; i < digits; ++i) lo *= 10;
  int64_t hi = lo * 10 - 1;
  if (digits == 1) lo = 0;
  return rng->Uniform(lo, hi);
}

struct Ymd {
  int y, m, d;
};

Ymd RandomDate(Pcg32* rng) {
  int y = static_cast<int>(rng->Uniform(1900, 2025));
  int m = static_cast<int>(rng->Uniform(1, 12));
  int d = static_cast<int>(rng->Uniform(1, valuegen::DaysInMonth(m)));
  return {y, m, d};
}

std::string RandomUpperWord(Pcg32* rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) s.push_back(static_cast<char>('A' + rng->Below(26)));
  return s;
}

void AddDomain(std::vector<std::unique_ptr<ValueDomain>>* out, std::string name,
               DomainCategory cat, double weight, SamplerFactory factory) {
  out->push_back(std::make_unique<LambdaDomain>(std::move(name), cat, weight,
                                                std::move(factory)));
}

std::vector<std::unique_ptr<ValueDomain>> BuildDomains() {
  std::vector<std::unique_ptr<ValueDomain>> d;

  // ---------------------------------------------------------------- numeric
  // Small integers of mixed width (counts, ranks, goals).
  AddDomain(&d, "int_small", DomainCategory::kNumeric, 1.5, [](Pcg32* rng) -> Sampler {
    int max_digits = static_cast<int>(rng->Uniform(2, 3));
    return [max_digits](Pcg32* r) {
      return std::to_string(LogUniformInt(r, 1, max_digits));
    };
  });

  // The paper's Col-1: mixed magnitudes where values >= 1000 get thousand
  // separators and smaller ones don't. Found in 2.2M real web columns.
  AddDomain(&d, "int_mixed_separators", DomainCategory::kNumeric, 1.2,
            [](Pcg32* rng) -> Sampler {
              int max_digits = static_cast<int>(rng->Uniform(4, 7));
              return [max_digits](Pcg32* r) {
                int64_t v = LogUniformInt(r, 1, max_digits);
                return FormatInt(v, /*separators=*/v >= 1000);
              };
            });

  // Amount columns, consistently separator-formatted, magnitudes mixed
  // ("1,234,567" next to "4,521").
  AddDomain(&d, "int_separated", DomainCategory::kNumeric, 0.8,
            [](Pcg32* rng) -> Sampler {
              int max_digits = static_cast<int>(rng->Uniform(5, 9));
              return [max_digits](Pcg32* r) {
                return FormatInt(LogUniformInt(r, 4, max_digits), true);
              };
            });

  // Plain unseparated integers across magnitudes (ids, raw exports).
  AddDomain(&d, "int_plain_large", DomainCategory::kNumeric, 0.8,
            [](Pcg32* rng) -> Sampler {
              int max_digits = static_cast<int>(rng->Uniform(5, 8));
              return [max_digits](Pcg32* r) {
                return std::to_string(LogUniformInt(r, 1, max_digits));
              };
            });

  // Mixed-magnitude counts (populations, attendances) — wide in-column
  // length variety with no separators at all.
  AddDomain(&d, "count_stat", DomainCategory::kNumeric, 1.0, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) { return std::to_string(LogUniformInt(r, 1, 6)); };
  });

  // The paper's Col-2: mostly integers with occasional floats.
  AddDomain(&d, "int_with_floats", DomainCategory::kNumeric, 1.0,
            [](Pcg32* rng) -> Sampler {
              int decimals = static_cast<int>(rng->Uniform(1, 2));
              double float_rate = 0.05 + rng->NextDouble() * 0.3;
              return [decimals, float_rate](Pcg32* r) {
                if (r->Chance(float_rate)) {
                  return FormatFixed(r->NextDouble() * 100, decimals);
                }
                return std::to_string(LogUniformInt(r, 1, 3));
              };
            });

  // Fixed-precision decimals with mixed integer-part width.
  AddDomain(&d, "decimal_fixed", DomainCategory::kNumeric, 1.2, [](Pcg32* rng) -> Sampler {
    int decimals = static_cast<int>(rng->Uniform(1, 4));
    int max_digits = static_cast<int>(rng->Uniform(2, 4));
    return [decimals, max_digits](Pcg32* r) {
      double v = static_cast<double>(LogUniformInt(r, 1, max_digits)) + r->NextDouble();
      return FormatFixed(v, decimals);
    };
  });

  // Percentages; per-column choice of integer vs one-decimal, with/without %.
  AddDomain(&d, "percent", DomainCategory::kNumeric, 0.7, [](Pcg32* rng) -> Sampler {
    int decimals = rng->Chance(0.5) ? 0 : 1;
    bool sign = rng->Chance(0.8);
    return [decimals, sign](Pcg32* r) {
      std::string s = FormatFixed(r->NextDouble() * 100, decimals);
      if (sign) s += "%";
      return s;
    };
  });

  // Currency: one symbol+layout per column.
  AddDomain(&d, "currency", DomainCategory::kNumeric, 0.9, [](Pcg32* rng) -> Sampler {
    std::string symbol = rng->Pick(std::vector<std::string>{"$", "USD ", "EUR ", "£"});
    bool cents = rng->Chance(0.6);
    bool separators = rng->Chance(0.7);
    return [symbol, cents, separators](Pcg32* r) {
      int64_t dollars = LogUniformInt(r, 1, 5);
      std::string s = symbol + FormatInt(dollars, separators && dollars >= 1000);
      if (cents) s += StrFormat(".%02d", static_cast<int>(r->Below(100)));
      return s;
    };
  });

  // Signed deltas ("+1.5" / "-2.0").
  AddDomain(&d, "signed_delta", DomainCategory::kNumeric, 0.5, [](Pcg32* rng) -> Sampler {
    int decimals = static_cast<int>(rng->Uniform(0, 2));
    return [decimals](Pcg32* r) {
      double v = (r->NextDouble() - 0.5) * 20;
      std::string s = FormatFixed(std::fabs(v), decimals);
      return (v < 0 ? "-" : "+") + s;
    };
  });

  // Scientific notation.
  AddDomain(&d, "scientific", DomainCategory::kNumeric, 0.3, [](Pcg32* rng) -> Sampler {
    bool upper_e = rng->Chance(0.5);
    return [upper_e](Pcg32* r) {
      return StrFormat("%.2f%s%+03d", 1.0 + r->NextDouble() * 9.0, upper_e ? "E" : "e",
                       static_cast<int>(r->Uniform(-12, 12)));
    };
  });

  // Plain years.
  AddDomain(&d, "year", DomainCategory::kNumeric, 1.3, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) { return RandomYear(r); };
  });

  // Rank/position column: 1..n ascending-ish.
  AddDomain(&d, "rank", DomainCategory::kNumeric, 0.8, [](Pcg32*) -> Sampler {
    auto counter = std::make_shared<int>(0);
    return [counter](Pcg32*) { return std::to_string(++*counter); };
  });

  // ------------------------------------------------------------------ dates
  auto add_sep_date = [&](std::string name, double weight, std::string sep,
                          bool ymd_order) {
    std::string sep_copy = sep;
    AddDomain(&d, std::move(name), DomainCategory::kDate, weight,
              [sep_copy, ymd_order](Pcg32*) -> Sampler {
                return [sep_copy, ymd_order](Pcg32* r) {
                  Ymd t = RandomDate(r);
                  if (ymd_order) {
                    return std::to_string(t.y) + sep_copy + PadNumber(t.m, 2) +
                           sep_copy + PadNumber(t.d, 2);
                  }
                  return PadNumber(t.m, 2) + sep_copy + PadNumber(t.d, 2) + sep_copy +
                         std::to_string(t.y);
                };
              });
  };
  add_sep_date("date_iso", 1.5, "-", true);        // 2011-01-02
  add_sep_date("date_slash_ymd", 0.8, "/", true);  // 2011/01/02
  add_sep_date("date_dot_ymd", 0.5, ".", true);    // 2011.01.02
  add_sep_date("date_us", 1.0, "/", false);        // 01/02/2011
  add_sep_date("date_dot_dmy", 0.5, ".", false);   // 01.02.2011 (rendered mdY)

  // "July 1, 1983" / "Jul 1, 1983" — per-column abbrev choice.
  AddDomain(&d, "date_long", DomainCategory::kDate, 1.0, [](Pcg32* rng) -> Sampler {
    bool abbrev = rng->Chance(0.4);
    return [abbrev](Pcg32* r) {
      Ymd t = RandomDate(r);
      const auto& months =
          abbrev ? valuegen::MonthNamesAbbrev() : valuegen::MonthNamesFull();
      return months[static_cast<size_t>(t.m - 1)] + " " + std::to_string(t.d) + ", " +
             std::to_string(t.y);
    };
  });

  // "01-Jul-1983".
  AddDomain(&d, "date_dmy_abbrev", DomainCategory::kDate, 0.6, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      Ymd t = RandomDate(r);
      return PadNumber(t.d, 2) + "-" +
             valuegen::MonthNamesAbbrev()[static_cast<size_t>(t.m - 1)] + "-" +
             std::to_string(t.y);
    };
  });

  // Month names only.
  AddDomain(&d, "month_name", DomainCategory::kDate, 0.6, [](Pcg32* rng) -> Sampler {
    bool abbrev = rng->Chance(0.3);
    return [abbrev](Pcg32* r) {
      const auto& months =
          abbrev ? valuegen::MonthNamesAbbrev() : valuegen::MonthNamesFull();
      return r->Pick(months);
    };
  });

  // Month-day ("July-01" / "July 1") — the v4 of paper Example 2.
  AddDomain(&d, "month_day", DomainCategory::kDate, 0.5, [](Pcg32* rng) -> Sampler {
    bool dash = rng->Chance(0.5);
    bool abbrev = rng->Chance(0.3);
    return [dash, abbrev](Pcg32* r) {
      Ymd t = RandomDate(r);
      const auto& months =
          abbrev ? valuegen::MonthNamesAbbrev() : valuegen::MonthNamesFull();
      const std::string& m = months[static_cast<size_t>(t.m - 1)];
      return dash ? m + "-" + PadNumber(t.d, 2) : m + " " + std::to_string(t.d);
    };
  });

  // Year-month ("2014-01").
  AddDomain(&d, "year_month", DomainCategory::kDate, 0.5, [](Pcg32* rng) -> Sampler {
    std::string sep = rng->Pick(std::vector<std::string>{"-", "/"});
    return [sep](Pcg32* r) {
      Ymd t = RandomDate(r);
      return std::to_string(t.y) + sep + PadNumber(t.m, 2);
    };
  });

  // ------------------------------------------------------------------ times
  AddDomain(&d, "time_hm", DomainCategory::kTime, 0.8, [](Pcg32* rng) -> Sampler {
    bool seconds = rng->Chance(0.4);
    return [seconds](Pcg32* r) {
      std::string s = PadNumber(r->Uniform(0, 23), 2) + ":" +
                      PadNumber(r->Uniform(0, 59), 2);
      if (seconds) s += ":" + PadNumber(r->Uniform(0, 59), 2);
      return s;
    };
  });

  // Song lengths "3:45" (Fig. 1e).
  AddDomain(&d, "song_length", DomainCategory::kTime, 0.7, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return std::to_string(r->Uniform(1, 12)) + ":" + PadNumber(r->Uniform(0, 59), 2);
    };
  });

  // Durations "1h 23m".
  AddDomain(&d, "duration_hm", DomainCategory::kTime, 0.4, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return std::to_string(r->Uniform(0, 12)) + "h " + std::to_string(r->Uniform(0, 59)) +
             "m";
    };
  });

  // ------------------------------------------------------------------- text
  AddDomain(&d, "person_name", DomainCategory::kText, 1.3, [](Pcg32* rng) -> Sampler {
    bool last_first = rng->Chance(0.3);
    return [last_first](Pcg32* r) {
      const std::string& first = r->Pick(valuegen::FirstNames());
      const std::string& last = r->Pick(valuegen::LastNames());
      // Benign real-world irregularity: mononyms and middle initials
      // appear inside otherwise two-word name columns. (Both are
      // pattern-stable families; hyphenated double surnames would explode
      // the pattern space beyond what a reduced-scale corpus can cover.)
      // The column's name ordering is respected by every variant —
      // mixing "Last, First" with "First M. Last" in one column would be a
      // real format inconsistency, not benign diversity.
      if (r->Chance(0.06)) return first;  // mononym
      // Middle initials only in First-Last columns; the "Last, First M."
      // family is rare in real data and too pattern-sparse for a
      // reduced-scale corpus to learn as compatible.
      if (!last_first && r->Chance(0.08)) {
        char initial = static_cast<char>('A' + r->Below(26));
        return first + " " + std::string(1, initial) + ". " + last;
      }
      return last_first ? last + ", " + first : first + " " + last;
    };
  });

  AddDomain(&d, "city", DomainCategory::kText, 1.0, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) { return r->Pick(valuegen::CityNames()); };
  });

  AddDomain(&d, "capitalized_word", DomainCategory::kText, 0.9, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      std::string w = r->Pick(valuegen::CommonWords());
      w[0] = static_cast<char>(w[0] - 'a' + 'A');
      return w;
    };
  });

  // Multi-word titles of varying length (1-3 words) — naturally diverse
  // but compatible.
  AddDomain(&d, "title_text", DomainCategory::kText, 1.1, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      int words = static_cast<int>(r->Uniform(1, 3));
      std::string s;
      for (int i = 0; i < words; ++i) {
        if (i) s += " ";
        std::string w = r->Pick(valuegen::CommonWords());
        if (i == 0) w[0] = static_cast<char>(w[0] - 'a' + 'A');
        s += w;
      }
      return s;
    };
  });

  // Free-form notes/labels: letters, digits and light punctuation mixed,
  // lengths from 2 to ~30 chars in one column (remarks columns, captions).
  AddDomain(&d, "freeform_note", DomainCategory::kText, 0.4, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      switch (r->Below(5)) {
        case 0:
          return r->Pick(valuegen::CommonWords());
        case 1: {
          std::string w = r->Pick(valuegen::CommonWords());
          w[0] = static_cast<char>(w[0] - 'a' + 'A');
          return w + " " + std::to_string(r->Uniform(1, 999));
        }
        case 2:
          return std::to_string(r->Uniform(1, 9999));
        case 3: {
          std::string w = r->Pick(valuegen::CommonWords());
          return w + ", " + r->Pick(valuegen::CommonWords());
        }
        default: {
          std::string w = r->Pick(valuegen::CityNames());
          return w + " (" + std::to_string(r->Uniform(1950, 2025)) + ")";
        }
      }
    };
  });

  AddDomain(&d, "lower_word", DomainCategory::kText, 0.5, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) { return r->Pick(valuegen::CommonWords()); };
  });

  AddDomain(&d, "abbreviation", DomainCategory::kText, 0.6, [](Pcg32* rng) -> Sampler {
    int len = static_cast<int>(rng->Uniform(2, 4));
    return [len](Pcg32* r) { return RandomUpperWord(r, len); };
  });

  // ------------------------------------------------------------------- code
  // Per-column code template like "AB-1234".
  AddDomain(&d, "code_template", DomainCategory::kCode, 1.0, [](Pcg32* rng) -> Sampler {
    int letters = static_cast<int>(rng->Uniform(1, 3));
    int digits = static_cast<int>(rng->Uniform(2, 5));
    std::string sep = rng->Pick(std::vector<std::string>{"-", "", "_", "/"});
    return [letters, digits, sep](Pcg32* r) {
      std::string s = RandomUpperWord(r, letters) + sep;
      for (int i = 0; i < digits; ++i) s.push_back(static_cast<char>('0' + r->Below(10)));
      return s;
    };
  });

  // Hex-ish ids with a fixed per-column template (digit and letter
  // positions fixed, like structured serials): random interleavings would
  // give nearly every value its own digit/letter pattern — a combinatorial
  // space no reduced-scale corpus can cover.
  AddDomain(&d, "hex_id", DomainCategory::kCode, 0.4, [](Pcg32* rng) -> Sampler {
    int len = static_cast<int>(rng->Uniform(4, 10));
    std::string kind;  // 'd' = hex digit 0-9, 'l' = hex letter a-f
    for (int i = 0; i < len; ++i) kind.push_back(rng->Chance(0.6) ? 'd' : 'l');
    return [kind](Pcg32* r) {
      std::string s;
      for (char k : kind) {
        s.push_back(k == 'd' ? static_cast<char>('0' + r->Below(10))
                             : static_cast<char>('a' + r->Below(6)));
      }
      return s;
    };
  });

  // ISBN-13.
  AddDomain(&d, "isbn", DomainCategory::kCode, 0.3, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return StrFormat("978-%d-%03d-%05d-%d", static_cast<int>(r->Below(10)),
                       static_cast<int>(r->Below(1000)),
                       static_cast<int>(r->Below(100000)),
                       static_cast<int>(r->Below(10)));
    };
  });

  // --------------------------------------------------------------- contact
  AddDomain(&d, "phone_us", DomainCategory::kContact, 1.0, [](Pcg32* rng) -> Sampler {
    int format = static_cast<int>(rng->Below(valuegen::kNumPhoneFormats));
    return [format](Pcg32* r) {
      std::string digits;
      digits += std::to_string(r->Uniform(2, 9));
      for (int i = 0; i < 9; ++i) digits.push_back(static_cast<char>('0' + r->Below(10)));
      return valuegen::RenderPhone(digits, format);
    };
  });

  // Emails with one user-name style per column (directory exports are
  // format-uniform; free-style addresses would explode the pattern space).
  AddDomain(&d, "email", DomainCategory::kContact, 0.8, [](Pcg32* rng) -> Sampler {
    std::string host = rng->Pick(std::vector<std::string>{
        "example.com", "mail.org", "corp.net", "uni.edu"});
    bool with_last = rng->Chance(0.5);
    bool with_digits = rng->Chance(0.3);
    return [host, with_last, with_digits](Pcg32* r) {
      std::string user = ToLowerAscii(r->Pick(valuegen::FirstNames()));
      if (with_last) user += "." + ToLowerAscii(r->Pick(valuegen::LastNames()));
      if (with_digits) user += std::to_string(r->Below(100));
      return user + "@" + host;
    };
  });

  AddDomain(&d, "ip_address", DomainCategory::kContact, 0.5, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return StrFormat("%d.%d.%d.%d", static_cast<int>(r->Below(256)),
                       static_cast<int>(r->Below(256)), static_cast<int>(r->Below(256)),
                       static_cast<int>(r->Below(256)));
    };
  });

  AddDomain(&d, "url", DomainCategory::kContact, 0.6, [](Pcg32* rng) -> Sampler {
    bool https = rng->Chance(0.7);
    return [https](Pcg32* r) {
      std::string s = https ? "https://" : "http://";
      s += "www." + r->Pick(valuegen::CommonWords()) + ".com";
      if (r->Chance(0.5)) s += "/" + r->Pick(valuegen::CommonWords());
      return s;
    };
  });

  AddDomain(&d, "zip_code", DomainCategory::kContact, 0.5, [](Pcg32* rng) -> Sampler {
    bool plus4 = rng->Chance(0.2);
    return [plus4](Pcg32* r) {
      std::string s = PadNumber(r->Uniform(501, 99950), 5);
      if (plus4) s += "-" + PadNumber(r->Below(10000), 4);
      return s;
    };
  });

  // ------------------------------------------------------------------ misc
  // Match scores "3-2" / "3–2"; per-column separator (Fig. 1g).
  AddDomain(&d, "score", DomainCategory::kMisc, 0.8, [](Pcg32* rng) -> Sampler {
    std::string sep = rng->Pick(std::vector<std::string>{"-", ":"});
    return [sep](Pcg32* r) {
      std::string s =
          std::to_string(r->Below(12)) + sep + std::to_string(r->Below(12));
      if (r->Chance(0.08)) s += " (OT)";  // overtime marker, benign
      return s;
    };
  });

  // Measurements with one per-column unit (Fig. 1c).
  AddDomain(&d, "measurement", DomainCategory::kMisc, 0.9, [](Pcg32* rng) -> Sampler {
    std::string unit =
        rng->Pick(std::vector<std::string>{"kg", "lb", "km", "mi", "cm", "m", "ft"});
    bool space = rng->Chance(0.7);
    int decimals = static_cast<int>(rng->Uniform(0, 1));
    return [unit, space, decimals](Pcg32* r) {
      // Occasional precision flips (integer in a decimal column and vice
      // versa) are benign and common in real measurement columns.
      bool dec = r->Chance(0.15) ? !decimals : static_cast<bool>(decimals);
      std::string num = dec ? FormatFixed(r->NextDouble() * 200, 1)
                            : std::to_string(r->Uniform(1, 200));
      return num + (space ? " " : "") + unit;
    };
  });

  // Booleans; one vocabulary per column.
  AddDomain(&d, "boolean", DomainCategory::kMisc, 0.7, [](Pcg32* rng) -> Sampler {
    auto vocab = rng->Pick(std::vector<std::pair<std::string, std::string>>{
        {"Yes", "No"}, {"TRUE", "FALSE"}, {"Y", "N"}, {"yes", "no"}});
    return [vocab](Pcg32* r) {
      if (r->Chance(0.04)) return std::string("Unknown");  // benign third state
      return r->Chance(0.5) ? vocab.first : vocab.second;
    };
  });

  // Ordinals "1st", "2nd", ...
  AddDomain(&d, "ordinal", DomainCategory::kMisc, 0.4, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      int v = static_cast<int>(r->Uniform(1, 99));
      const char* suffix = "th";
      if (v % 100 < 11 || v % 100 > 13) {
        if (v % 10 == 1) suffix = "st";
        if (v % 10 == 2) suffix = "nd";
        if (v % 10 == 3) suffix = "rd";
      }
      return std::to_string(v) + suffix;
    };
  });

  // Parenthesized years "(1984)" (Fig. 1f).
  AddDomain(&d, "paren_year", DomainCategory::kMisc, 0.3, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) { return "(" + RandomYear(r) + ")"; };
  });

  // Coordinates "47.61, -122.33".
  AddDomain(&d, "coordinate", DomainCategory::kMisc, 0.3, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return StrFormat("%.2f, %.2f", r->NextDouble() * 180 - 90,
                       r->NextDouble() * 360 - 180);
    };
  });

  // All-placeholder columns ("N/A" everywhere): real tables do contain
  // them, and their existence gives placeholder tokens nonzero marginal
  // counts without teaching that they belong next to data values.
  AddDomain(&d, "placeholder_column", DomainCategory::kMisc, 0.2,
            [](Pcg32* rng) -> Sampler {
              std::string token = rng->Pick(
                  std::vector<std::string>{"-", "N/A", "n/a", "TBD", "?", "--"});
              return [token](Pcg32* r) {
                // Occasionally a second placeholder variant in the column.
                if (r->Chance(0.1)) return std::string("-");
                return token;
              };
            });

  // Fractions "3/4".
  AddDomain(&d, "fraction", DomainCategory::kMisc, 0.3, [](Pcg32*) -> Sampler {
    return [](Pcg32* r) {
      return std::to_string(r->Uniform(1, 9)) + "/" + std::to_string(r->Uniform(2, 16));
    };
  });

  return d;
}

}  // namespace

const DomainRegistry& DomainRegistry::Global() {
  static const DomainRegistry* kRegistry = new DomainRegistry();
  return *kRegistry;
}

DomainRegistry::DomainRegistry() : domains_(BuildDomains()) {
  views_.reserve(domains_.size());
  for (const auto& d : domains_) views_.push_back(d.get());
}

const ValueDomain* DomainRegistry::ByName(std::string_view name) const {
  for (const auto* d : views_) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

std::vector<const ValueDomain*> DomainRegistry::ByCategory(DomainCategory c) const {
  std::vector<const ValueDomain*> out;
  for (const auto* d : views_) {
    if (d->category() == c) out.push_back(d);
  }
  return out;
}

}  // namespace autodetect
