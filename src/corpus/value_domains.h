#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

/// \file value_domains.h
/// The synthetic value-domain catalogue that stands in for the paper's web
/// table corpus (see DESIGN.md, "Substitutions"). Each domain generates
/// *internally compatible* columns: it first fixes per-column format choices
/// (date separator, currency symbol, phone layout, decimal precision, ...)
/// and then samples values under those choices. Cross-format mixtures that
/// are genuinely compatible in the wild — integers with and without
/// thousand separators, integers with occasional floats, varying-width
/// numbers — are produced *within* single domains, because that intra-column
/// co-occurrence is exactly the signal Auto-Detect learns from.

namespace autodetect {

enum class DomainCategory : uint8_t {
  kNumeric = 0,
  kDate,
  kTime,
  kText,
  kCode,
  kContact,
  kMisc,
};

constexpr int kNumDomainCategories = 7;

std::string_view DomainCategoryName(DomainCategory c);

/// \brief A family of columns sharing one semantic type.
class ValueDomain {
 public:
  /// \param base_weight relative prevalence of the domain within its
  /// category (e.g. ISO dates are more common than dotted dates).
  ValueDomain(std::string name, DomainCategory category, double base_weight)
      : name_(std::move(name)), category_(category), base_weight_(base_weight) {}
  virtual ~ValueDomain() = default;

  const std::string& name() const { return name_; }
  DomainCategory category() const { return category_; }
  double base_weight() const { return base_weight_; }

  /// \brief Binds per-column format choices and returns a sampler producing
  /// one value at a time, all mutually compatible.
  virtual std::function<std::string(Pcg32*)> MakeColumnSampler(Pcg32* rng) const = 0;

  /// \brief Generates an internally compatible column of `n` values.
  std::vector<std::string> GenerateColumn(size_t n, Pcg32* rng) const;

 private:
  std::string name_;
  DomainCategory category_;
  double base_weight_;
};

/// \brief Global, immutable registry of all built-in domains.
class DomainRegistry {
 public:
  static const DomainRegistry& Global();

  const std::vector<const ValueDomain*>& all() const { return views_; }

  /// nullptr when unknown.
  const ValueDomain* ByName(std::string_view name) const;

  /// Domains belonging to one category.
  std::vector<const ValueDomain*> ByCategory(DomainCategory c) const;

 private:
  DomainRegistry();
  std::vector<std::unique_ptr<ValueDomain>> domains_;
  std::vector<const ValueDomain*> views_;
};

/// Shared formatting helpers (also used by the error injector to re-render
/// values in conflicting formats).
namespace valuegen {

/// Zero-pads `v` to `width` digits.
std::string PadNumber(int64_t v, int width);

/// Formats with US thousand separators iff `separators`.
std::string FormatInt(int64_t v, bool separators);

/// Fixed-point decimal with `decimals` fractional digits.
std::string FormatFixed(double v, int decimals);

const std::vector<std::string>& MonthNamesFull();
const std::vector<std::string>& MonthNamesAbbrev();
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& CityNames();
const std::vector<std::string>& CommonWords();

int DaysInMonth(int month);

/// Renders phone digits (10 digits, "4255550123") in one of the known US
/// phone layouts; `format` in [0, kNumPhoneFormats).
constexpr int kNumPhoneFormats = 4;
std::string RenderPhone(const std::string& digits10, int format);

}  // namespace valuegen
}  // namespace autodetect
