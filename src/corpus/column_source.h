#pragma once

#include <cstddef>

#include "corpus/column.h"

/// \file column_source.h
/// Streaming access to columns. The statistics builder consumes a
/// ColumnSource so that large training corpora can be generated on the fly
/// without ever materializing all columns in memory — the reproduction's
/// answer to the paper's 350M-column scale.

namespace autodetect {

class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  /// Produces the next column into `*out`; returns false at end of stream.
  virtual bool Next(Column* out) = 0;

  /// Restarts the stream from the beginning (sources are replayable so
  /// multi-pass training — stats, then distant supervision — works).
  virtual void Reset() = 0;

  /// Total number of columns this source will yield, if known; 0 if not.
  virtual size_t SizeHint() const { return 0; }
};

/// \brief Adapts an in-memory Corpus to the streaming interface.
class CorpusSource : public ColumnSource {
 public:
  explicit CorpusSource(const Corpus* corpus) : corpus_(corpus) {}

  bool Next(Column* out) override {
    if (pos_ >= corpus_->size()) return false;
    *out = (*corpus_)[pos_++];
    return true;
  }

  void Reset() override { pos_ = 0; }
  size_t SizeHint() const override { return corpus_->size(); }

 private:
  const Corpus* corpus_;
  size_t pos_ = 0;
};

}  // namespace autodetect
