#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "corpus/column.h"

/// \file error_injector.h
/// Injects single-cell errors drawn from the paper's published error
/// taxonomy (Fig. 1, Fig. 2, Table 4) into clean synthetic columns. Errors
/// are syntactic transformations of one victim value, so the resulting
/// column contains exactly one incompatible cell with known position —
/// giving construction-time ground truth in place of the paper's human
/// labeling.

namespace autodetect {

/// \brief Applies the transformation of one error class to `value`.
/// Fails with Invalid when the class's precondition does not hold (e.g.
/// kExtraDot on a value that does not end in a digit).
Result<std::string> ApplyErrorClass(ErrorClass error_class, const std::string& value,
                                    Pcg32* rng);

/// \brief Error classes whose preconditions hold for `value`.
/// kForeignValue is excluded (it needs a second column, see Inject).
std::vector<ErrorClass> ApplicableErrorClasses(const std::string& value);

class ErrorInjector {
 public:
  struct Options {
    /// Probability mass given to kForeignValue vs the syntactic classes.
    double foreign_value_weight = 0.25;
  };

  ErrorInjector() = default;
  explicit ErrorInjector(Options options) : options_(options) {}

  /// \brief Mutates one cell of `*column` into an incompatible variant and
  /// records ground truth. `foreign_pool` supplies values for
  /// kForeignValue injections (values from other columns); may be empty.
  /// Returns false when no error class applies to any cell (column left
  /// clean).
  bool Inject(Column* column, const std::vector<std::string>& foreign_pool,
              Pcg32* rng) const;

 private:
  Options options_ = Options();
};

}  // namespace autodetect
