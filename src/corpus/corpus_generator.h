#pragma once

#include <map>
#include <string>

#include "common/random.h"
#include "corpus/column.h"
#include "corpus/column_source.h"
#include "corpus/error_injector.h"
#include "corpus/value_domains.h"

/// \file corpus_generator.h
/// Deterministic synthesis of the five table corpora of paper Table 3
/// (WEB, WIKI, Pub-XLS, Ent-XLS, CSV) as domain-weight profiles over the
/// value-domain catalogue. The same seed always yields the same corpus.

namespace autodetect {

/// \brief Weighting and shape of one corpus flavour.
struct CorpusProfile {
  std::string name;
  /// Relative weight per domain category (domains inside a category are
  /// further weighted by their base_weight).
  double category_weights[kNumDomainCategories] = {1, 1, 1, 1, 1, 1, 1};
  /// Fraction of columns receiving one injected error. The paper measured
  /// 6.9% dirty columns in WEB and 2.2% in WIKI (Sec. 2.1).
  double dirty_rate = 0.0;
  /// Uniform row-count range per column.
  size_t min_rows = 5;
  size_t max_rows = 40;

  /// WEB: broad mix, slightly dirtier (93.1% clean in the paper).
  static CorpusProfile Web();
  /// WIKI: like WEB but cleaner (97.8% clean) and lighter on contact data.
  static CorpusProfile Wiki();
  /// Pub-XLS: public spreadsheets; numeric-leaning mix.
  static CorpusProfile PubXls();
  /// Ent-XLS: enterprise spreadsheets; strongly numeric (paper Sec. 4.4
  /// explains dBoost's showing there by the many numeric columns).
  static CorpusProfile EntXls();
};

struct GeneratorOptions {
  CorpusProfile profile = CorpusProfile::Web();
  uint64_t seed = 42;
  size_t num_columns = 10000;
  /// When true (default), columns are dirtied at profile.dirty_rate with
  /// ground truth recorded; when false all columns are clean.
  bool inject_errors = true;
};

/// \brief Streaming generator: yields columns one at a time; replayable.
class GeneratedColumnSource : public ColumnSource {
 public:
  explicit GeneratedColumnSource(GeneratorOptions options);

  bool Next(Column* out) override;
  void Reset() override;
  size_t SizeHint() const override { return options_.num_columns; }

  const GeneratorOptions& options() const { return options_; }

 private:
  void SampleDomainTable();

  GeneratorOptions options_;
  ErrorInjector injector_;
  Pcg32 rng_;
  size_t produced_ = 0;
  /// Cumulative-weight table for domain sampling.
  std::vector<std::pair<double, const ValueDomain*>> cdf_;
  double total_weight_ = 0;
  /// Recent values kept as donors for kForeignValue injections.
  std::vector<std::string> foreign_pool_;
};

/// \brief Materializes a whole corpus in memory.
Corpus GenerateCorpus(const GeneratorOptions& options);

}  // namespace autodetect
