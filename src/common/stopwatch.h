#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// Wall-clock timing for the benchmark harness and Table 5 latency numbers.

namespace autodetect {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autodetect
