#pragma once

#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Error propagation without exceptions, following the Arrow/RocksDB idiom.
/// Functions that can fail return `Status` (or `Result<T>`, see result.h);
/// callers check `ok()` or use the AD_RETURN_NOT_OK / AD_ASSIGN_OR_RETURN
/// macros to propagate failures.

namespace autodetect {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kCapacityExceeded = 7,
  kCorruption = 8,
  kInternal = 9,
  kResourceExhausted = 10,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus a message.
///
/// `Status` is cheap to move and to copy in the OK case (a single pointer).
/// Error construction allocates; the hot paths of the library only touch
/// `ok()` which is a null check.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other) : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) { other.state_ = nullptr; }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  /// Constructs a non-OK status with the given code and message.
  Status(StatusCode code, std::string msg) : state_(new State{code, std::move(msg)}) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// \brief Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Returns this status with "<context>: " prepended to the message
  /// (same code); OK stays OK. For layering location onto low-level errors
  /// as they propagate ("loading model.bin: Corruption: ...").
  Status WithContext(std::string_view context) const {
    if (ok()) return Status();
    return Status(code(), std::string(context) + ": " + message());
  }

  bool operator==(const Status& other) const {
    if (ok() || other.ok()) return ok() == other.ok();
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  State* state_;
};

}  // namespace autodetect

/// Propagates a non-OK Status out of the enclosing function.
#define AD_RETURN_NOT_OK(expr)                      \
  do {                                              \
    ::autodetect::Status _ad_status = (expr);       \
    if (!_ad_status.ok()) return _ad_status;        \
  } while (false)
