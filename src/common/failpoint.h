#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file failpoint.h
/// Compile-time-zero-cost fault injection for chaos testing. A failpoint is
/// a named site in production code —
///
///   if (AD_FAILPOINT("io.read.short")) { /* inject the failure */ }
///
/// — that tests arm by name (via the API or the AD_FAILPOINTS environment
/// variable) with a trigger: always, probabilistic, fire-once, first-N, or
/// skip-M-then-fire. Armed sites let the resilience suite deterministically
/// reproduce the failures that matter for serving — short reads, checksum
/// corruption, failed model reloads, slow workers — without root privileges,
/// fault-injecting filesystems, or sleeps-and-hope races.
///
/// Cost model: the default build compiles failpoints OUT. AD_FAILPOINT(name)
/// expands to the literal `false`, so the injection branch is dead code, the
/// site name never reaches the binary, and hot loops pay nothing — not even
/// a load. tools/run_tier1.sh verifies this with a symbol check on the
/// default build. Chaos builds (-DAUTODETECT_FAILPOINTS=ON, or
/// FAILPOINTS=on tools/run_tier1.sh) compile the sites in; an unarmed site
/// then costs one mutex-guarded map probe — acceptable for test builds,
/// which is the only place this configuration exists.
///
/// Activation grammar (API spec string or AD_FAILPOINTS env entries joined
/// with ';'):
///   name=on         fire every evaluation
///   name=once       fire exactly once
///   name=3x         fire the first 3 evaluations
///   name=p0.25      fire each evaluation with probability 0.25
///   name=skip2      skip the first 2 evaluations, then fire always
///   name=skip2*once skip the first 2 evaluations, then fire once
/// Probability draws use a per-failpoint PCG32 seeded from the site name, so
/// a given spec fires on the same evaluation sequence run after run.

namespace autodetect {

#ifdef AUTODETECT_FAILPOINTS
inline constexpr bool kFailpointsEnabled = true;
/// Evaluates to true when the named failpoint is armed and its trigger
/// fires. Usable in any boolean context; the injected branch must be the
/// failure behaviour (short read, error return, sleep, ...).
#define AD_FAILPOINT(name) (::autodetect::failpoint::Fire(name))
#else
inline constexpr bool kFailpointsEnabled = false;
/// Compiled out: literal false, no symbol, no string, no evaluation.
#define AD_FAILPOINT(name) (false)
#endif

namespace failpoint {

/// Trigger for one armed failpoint. Defaults fire on every evaluation.
struct FailpointSpec {
  double probability = 1.0;  ///< chance of firing once past `skip`
  int64_t max_hits = -1;     ///< total fires allowed; -1 = unlimited
  int64_t skip = 0;          ///< evaluations to ignore before arming
};

/// Point-in-time counters for one failpoint (armed or historical).
struct FailpointStats {
  uint64_t evaluations = 0;  ///< times the site was reached while armed
  uint64_t hits = 0;         ///< times it actually fired
};

#ifdef AUTODETECT_FAILPOINTS

/// \brief Arms `name` with `spec`. Re-arming resets the counters.
void Enable(std::string_view name, FailpointSpec spec = {});

/// \brief Arms `name` from a grammar string ("on", "once", "3x", "p0.25",
/// "skip2", "skip2*once"). Invalid specs are an error.
Status EnableFromString(std::string_view name, std::string_view spec);

/// \brief Disarms `name`. Counters are retained for Stats() until re-armed.
void Disable(std::string_view name);

/// \brief Disarms everything and drops all counters (test teardown).
void DisableAll();

/// \brief Counters for `name` (zeros if never armed).
FailpointStats Stats(std::string_view name);

/// \brief Names of currently armed failpoints, sorted (the catalog check).
std::vector<std::string> Armed();

/// \brief The AD_FAILPOINT hook: true iff `name` is armed and its trigger
/// fires. Thread-safe. On first call, arms everything named in the
/// AD_FAILPOINTS environment variable ("a=once;b=p0.5").
bool Fire(std::string_view name);

#else

// Compiled-out stubs: tests and tools can call the API unconditionally; the
// calls collapse to no-ops with no out-of-line symbols (which the tier-1
// symbol check relies on).
inline void Enable(std::string_view, FailpointSpec = {}) {}
inline Status EnableFromString(std::string_view, std::string_view) {
  return Status::NotImplemented("failpoints compiled out");
}
inline void Disable(std::string_view) {}
inline void DisableAll() {}
inline FailpointStats Stats(std::string_view) { return {}; }
inline std::vector<std::string> Armed() { return {}; }
inline bool Fire(std::string_view) { return false; }

#endif  // AUTODETECT_FAILPOINTS

/// RAII arm/disarm for tests: arms in the constructor, disarms in the
/// destructor, so a failing assertion cannot leak an armed site into the
/// next test case. No-op when failpoints are compiled out.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, FailpointSpec spec = {})
      : name_(std::move(name)) {
    Enable(name_, spec);
  }
  ~ScopedFailpoint() { Disable(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace autodetect
