#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file random.h
/// Deterministic pseudo-random number generation (PCG32). Everything in this
/// repository that involves randomness — corpus synthesis, error injection,
/// distant supervision sampling — takes an explicit seed so that builds,
/// tests and benchmark tables are exactly reproducible run to run.

namespace autodetect {

/// \brief PCG32 generator (O'Neill, pcg-random.org): 64-bit state, 32-bit
/// output, period 2^64. Small, fast, and statistically strong enough for
/// workload synthesis.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound). Uses Lemire's unbiased method.
  uint32_t Below(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Approximately normal variate (Irwin–Hall sum of 12 uniforms).
  double NextGaussian();

  /// Zipf-distributed rank in [0, n) with exponent s (s > 0). Linear-time
  /// table-free sampling via rejection; adequate for n up to ~1e6.
  uint32_t NextZipf(uint32_t n, double s);

  /// Picks one element uniformly from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(static_cast<uint32_t>(v.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Below(static_cast<uint32_t>(i))]);
    }
  }

  /// Derives an independent child generator; used to give every synthetic
  /// column its own stream so corpora are stable under reordering.
  Pcg32 Fork() { return Pcg32(NextU64(), NextU64() | 1u); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace autodetect
