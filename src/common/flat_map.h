#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/result.h"

/// \file flat_map.h
/// Open-addressing u64→u64 hash map for the statistics dictionaries. The
/// pattern-count hot loop is dominated by random-access increments into
/// std::unordered_map, whose node allocations and pointer chases are the
/// wrong shape for that workload. This map stores key/value pairs inline in
/// one power-of-two array with linear probing — one cache line per lookup in
/// the common case, no per-entry allocation. It is tombstone-free: the
/// statistics never erase individual keys (CompressToSketch drops the whole
/// dictionary), so no erase operation is offered and probe chains never
/// degrade.

namespace autodetect {

/// Key 0 is the empty-slot sentinel internally; it is still a valid user key
/// (pattern keys are FNV/mix outputs, so 0 is possible in principle) and is
/// handled in a dedicated side slot.
class FlatMap64 {
 public:
  /// One probe-array entry. 16 bytes, trivially copyable — the frozen model
  /// format stores these verbatim, so the layout is part of the ADMODEL2
  /// on-disk contract.
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
  };
  static_assert(sizeof(Slot) == 16);

  class FrozenView;

  FlatMap64() = default;

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Backing-array bytes actually resident — the size(L) input of the
  /// selection knapsack.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  /// \brief Ensures capacity for `n` entries without rehashing. Call before
  /// bulk insertion (merge, deserialize) to avoid rehash storms.
  void Reserve(size_t n) {
    size_t needed = RequiredCapacity(n);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// \brief Find-or-insert; inserted values start at 0 (counts increment
  /// through this reference).
  uint64_t& operator[](uint64_t key) {
    if (key == 0) {
      has_zero_ = true;
      return zero_value_;
    }
    if (RequiredCapacity(size_ + 1) > slots_.size()) {
      Rehash(RequiredCapacity(size_ + 1));
    }
    size_t i = ProbeStart(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        ++size_;
        return s.value;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const uint64_t* Find(uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Value for `key`, or `fallback` if absent.
  uint64_t GetOr(uint64_t key, uint64_t fallback = 0) const {
    const uint64_t* v = Find(key);
    return v == nullptr ? fallback : *v;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// \brief Adds every (key, value) pair of `other` into this map, summing
  /// values on overlapping keys (the shard-merge operation of the statistics
  /// builder). Reserves for the no-overlap worst case up front, so at most
  /// one rehash occurs.
  void MergeAdd(const FlatMap64& other) {
    Reserve(size() + other.size());
    other.ForEach([this](uint64_t key, uint64_t value) { (*this)[key] += value; });
  }

  /// Drops all entries and releases the backing array.
  void Clear() {
    std::vector<Slot>().swap(slots_);
    size_ = 0;
    has_zero_ = false;
    zero_value_ = 0;
  }

  /// \brief Drops all entries but keeps the backing array for reuse — the
  /// per-column reset of the value interner, where Clear()'s deallocation
  /// would buy a malloc/free pair per column.
  void Reset() {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
    has_zero_ = false;
    zero_value_ = 0;
  }

  /// Visits every (key, value) pair. Order is the probe-array order: stable
  /// for a fixed insertion sequence, unspecified otherwise.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(static_cast<uint64_t>(0), zero_value_);
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

  /// Frozen blob size in bytes (always a multiple of 8).
  size_t FrozenBytes() const { return kFrozenHeaderWords * 8 + slots_.size() * sizeof(Slot); }

  /// \brief Appends the frozen representation to `out`: a 4-word header
  /// (size, has_zero, zero_value, capacity) followed by the probe array
  /// verbatim. The caller is responsible for placing the blob at an 8-byte
  /// aligned offset; FrozenView::FromBytes rejects misaligned input.
  void AppendFrozen(std::string* out) const {
    uint64_t header[kFrozenHeaderWords] = {size_, has_zero_ ? 1u : 0u, zero_value_,
                                           slots_.size()};
    out->append(reinterpret_cast<const char*>(header), sizeof(header));
    if (!slots_.empty()) {
      out->append(reinterpret_cast<const char*>(slots_.data()),
                  slots_.size() * sizeof(Slot));
    }
  }

 private:
  static constexpr size_t kFrozenHeaderWords = 4;
  static constexpr size_t kMinCapacity = 16;

  /// Smallest power-of-two capacity keeping load factor <= 0.75 for n keys.
  static size_t RequiredCapacity(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    return cap;
  }

  size_t ProbeStart(uint64_t key) const {
    return static_cast<size_t>(Mix64(key)) & (slots_.size() - 1);
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = static_cast<size_t>(Mix64(s.key)) & (new_capacity - 1);
      while (slots_[i].key != 0) i = (i + 1) & (new_capacity - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;  ///< non-zero keys stored in slots_
  bool has_zero_ = false;
  uint64_t zero_value_ = 0;
};

/// \brief Read-only view over a frozen FlatMap64 blob — typically bytes
/// inside a memory-mapped ADMODEL2 section. Probing runs directly against
/// the stored array: no deserialization, no allocation, pages fault in
/// lazily as keys are looked up. The view does not own the bytes; whoever
/// produced them (the mapped file) must outlive it.
class FlatMap64::FrozenView {
 public:
  FrozenView() = default;

  /// \brief Validates and adopts a frozen blob at `data` (which must be
  /// 8-byte aligned). Consumes exactly FrozenSize(capacity) bytes from the
  /// front of [data, data + len); trailing bytes are the caller's problem.
  /// Fails with Corruption on misalignment, a non-power-of-two capacity, or
  /// an implausible size, and with IOError when `len` is too short.
  static Result<FrozenView> FromBytes(const void* data, size_t len) {
    constexpr size_t kHeader = kFrozenHeaderWords * 8;
    if (reinterpret_cast<uintptr_t>(data) % 8 != 0) {
      return Status::Corruption("frozen map blob is not 8-byte aligned");
    }
    if (len < kHeader) {
      return Status::IOError("truncated frozen map: header needs 32 bytes, got " +
                             std::to_string(len));
    }
    uint64_t header[kFrozenHeaderWords];
    std::memcpy(header, data, sizeof(header));
    FrozenView view;
    view.size_ = static_cast<size_t>(header[0]);
    view.has_zero_ = header[1] != 0;
    view.zero_value_ = header[2];
    const uint64_t capacity = header[3];
    if (header[1] > 1) {
      return Status::Corruption("frozen map header: has_zero flag out of range");
    }
    if (capacity != 0 && (capacity & (capacity - 1)) != 0) {
      return Status::Corruption("frozen map capacity is not a power of two");
    }
    if (view.size_ > capacity) {
      return Status::Corruption("frozen map size exceeds capacity");
    }
    const uint64_t body = capacity * sizeof(Slot);
    if (len - kHeader < body) {
      return Status::IOError("truncated frozen map: slot array needs " +
                             std::to_string(body) + " bytes, got " +
                             std::to_string(len - kHeader));
    }
    view.capacity_ = static_cast<size_t>(capacity);
    view.slots_ = capacity == 0
                      ? nullptr
                      : reinterpret_cast<const Slot*>(
                            static_cast<const uint8_t*>(data) + kHeader);
    return view;
  }

  /// Total bytes the blob occupies (header + slot array).
  size_t bytes() const { return kFrozenHeaderWords * 8 + capacity_ * sizeof(Slot); }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return capacity_; }

  const uint64_t* Find(uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (capacity_ == 0) return nullptr;
    size_t i = static_cast<size_t>(Mix64(key)) & (capacity_ - 1);
    // Bounded by capacity_ probes: a corrupt blob with a full slot array and
    // no match must not spin forever.
    for (size_t probes = 0; probes < capacity_; ++probes) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & (capacity_ - 1);
    }
    return nullptr;
  }

  uint64_t GetOr(uint64_t key, uint64_t fallback = 0) const {
    const uint64_t* v = Find(key);
    return v == nullptr ? fallback : *v;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(static_cast<uint64_t>(0), zero_value_);
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].key != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// \brief Re-emits the frozen blob (header + slot array) so a mapped model
  /// can be re-serialized without thawing.
  void AppendTo(std::string* out) const {
    uint64_t header[kFrozenHeaderWords] = {size_, has_zero_ ? 1u : 0u, zero_value_,
                                           capacity_};
    out->append(reinterpret_cast<const char*>(header), sizeof(header));
    if (capacity_ != 0) {
      out->append(reinterpret_cast<const char*>(slots_), capacity_ * sizeof(Slot));
    }
  }

  /// Rebuilds an owning FlatMap64 with the same contents (used when a frozen
  /// model must be mutated, e.g. merged into a new training run).
  FlatMap64 Thaw() const {
    FlatMap64 map;
    map.Reserve(size());
    ForEach([&map](uint64_t key, uint64_t value) { map[key] = value; });
    return map;
  }

 private:
  const Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
  uint64_t zero_value_ = 0;
};

}  // namespace autodetect
