#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"

/// \file flat_map.h
/// Open-addressing u64→u64 hash map for the statistics dictionaries. The
/// pattern-count hot loop is dominated by random-access increments into
/// std::unordered_map, whose node allocations and pointer chases are the
/// wrong shape for that workload. This map stores key/value pairs inline in
/// one power-of-two array with linear probing — one cache line per lookup in
/// the common case, no per-entry allocation. It is tombstone-free: the
/// statistics never erase individual keys (CompressToSketch drops the whole
/// dictionary), so no erase operation is offered and probe chains never
/// degrade.

namespace autodetect {

/// Key 0 is the empty-slot sentinel internally; it is still a valid user key
/// (pattern keys are FNV/mix outputs, so 0 is possible in principle) and is
/// handled in a dedicated side slot.
class FlatMap64 {
 public:
  FlatMap64() = default;

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Backing-array bytes actually resident — the size(L) input of the
  /// selection knapsack.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  /// \brief Ensures capacity for `n` entries without rehashing. Call before
  /// bulk insertion (merge, deserialize) to avoid rehash storms.
  void Reserve(size_t n) {
    size_t needed = RequiredCapacity(n);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// \brief Find-or-insert; inserted values start at 0 (counts increment
  /// through this reference).
  uint64_t& operator[](uint64_t key) {
    if (key == 0) {
      has_zero_ = true;
      return zero_value_;
    }
    if (RequiredCapacity(size_ + 1) > slots_.size()) {
      Rehash(RequiredCapacity(size_ + 1));
    }
    size_t i = ProbeStart(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        ++size_;
        return s.value;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const uint64_t* Find(uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Value for `key`, or `fallback` if absent.
  uint64_t GetOr(uint64_t key, uint64_t fallback = 0) const {
    const uint64_t* v = Find(key);
    return v == nullptr ? fallback : *v;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// \brief Adds every (key, value) pair of `other` into this map, summing
  /// values on overlapping keys (the shard-merge operation of the statistics
  /// builder). Reserves for the no-overlap worst case up front, so at most
  /// one rehash occurs.
  void MergeAdd(const FlatMap64& other) {
    Reserve(size() + other.size());
    other.ForEach([this](uint64_t key, uint64_t value) { (*this)[key] += value; });
  }

  /// Drops all entries and releases the backing array.
  void Clear() {
    std::vector<Slot>().swap(slots_);
    size_ = 0;
    has_zero_ = false;
    zero_value_ = 0;
  }

  /// Visits every (key, value) pair. Order is the probe-array order: stable
  /// for a fixed insertion sequence, unspecified otherwise.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(static_cast<uint64_t>(0), zero_value_);
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
  };

  static constexpr size_t kMinCapacity = 16;

  /// Smallest power-of-two capacity keeping load factor <= 0.75 for n keys.
  static size_t RequiredCapacity(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    return cap;
  }

  size_t ProbeStart(uint64_t key) const {
    return static_cast<size_t>(Mix64(key)) & (slots_.size() - 1);
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = static_cast<size_t>(Mix64(s.key)) & (new_capacity - 1);
      while (slots_[i].key != 0) i = (i + 1) & (new_capacity - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;  ///< non-zero keys stored in slots_
  bool has_zero_ = false;
  uint64_t zero_value_ = 0;
};

}  // namespace autodetect
