#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/result.h"

/// \file flat_map.h
/// Open-addressing u64→u64 hash map for the statistics dictionaries. The
/// pattern-count hot loop is dominated by random-access increments into
/// std::unordered_map, whose node allocations and pointer chases are the
/// wrong shape for that workload. This map stores key/value pairs inline in
/// one power-of-two array with linear probing — one cache line per lookup in
/// the common case, no per-entry allocation. It is tombstone-free: the
/// statistics never erase individual keys (CompressToSketch drops the whole
/// dictionary), so no erase operation is offered and probe chains never
/// degrade.

namespace autodetect {

/// Key 0 is the empty-slot sentinel internally; it is still a valid user key
/// (pattern keys are FNV/mix outputs, so 0 is possible in principle) and is
/// handled in a dedicated side slot.
class FlatMap64 {
 public:
  /// One probe-array entry. 16 bytes, trivially copyable — the frozen model
  /// format stores these verbatim, so the layout is part of the ADMODEL2
  /// on-disk contract.
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
  };
  static_assert(sizeof(Slot) == 16);

  class FrozenView;

  FlatMap64() = default;

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Backing-array bytes actually resident — the size(L) input of the
  /// selection knapsack.
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  /// \brief Ensures capacity for `n` entries without rehashing. Call before
  /// bulk insertion (merge, deserialize) to avoid rehash storms.
  void Reserve(size_t n) {
    if (hash_deferred_) EnsureHashed();
    size_t needed = RequiredCapacity(n);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// \brief Find-or-insert; inserted values start at 0 (counts increment
  /// through this reference).
  uint64_t& operator[](uint64_t key) {
    if (hash_deferred_) EnsureHashed();
    // The returned reference may be written through, so any cached sorted
    // copy of the entries can go stale — drop it unconditionally.
    if (has_sorted_) DropSortedCache();
    if (key == 0) {
      has_zero_ = true;
      return zero_value_;
    }
    if (RequiredCapacity(size_ + 1) > slots_.size()) {
      Rehash(RequiredCapacity(size_ + 1));
    }
    size_t i = ProbeStart(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        ++size_;
        canonical_ = false;  // a new key invalidates the canonical layout
        return s.value;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  const uint64_t* Find(uint64_t key) const {
    AD_CHECK(!hash_deferred_);  // call EnsureHashed() before point queries
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (slots_.empty()) return nullptr;
    size_t i = ProbeStart(key);
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  /// Value for `key`, or `fallback` if absent.
  uint64_t GetOr(uint64_t key, uint64_t fallback = 0) const {
    const uint64_t* v = Find(key);
    return v == nullptr ? fallback : *v;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// \brief Adds every (key, value) pair of `other` into this map, summing
  /// values on overlapping keys (the shard-merge operation of the statistics
  /// builder). Growth is left to the insert path: it only triggers on keys
  /// actually new to this map (amortized one rehash), so folding a small
  /// delta whose keys mostly overlap neither copies the big map nor
  /// invalidates its canonical layout.
  void MergeAdd(const FlatMap64& other) {
    other.ForEach([this](uint64_t key, uint64_t value) { (*this)[key] += value; });
  }

  /// \brief Rebuilds the probe array into the *canonical* layout: the layout
  /// produced by reserving capacity for exactly the current entries and
  /// inserting the non-zero keys in ascending order. Linear-probing layout is
  /// otherwise a function of insertion/growth history, so two maps with equal
  /// contents can freeze to different bytes; after Canonicalize the frozen
  /// blob (and ForEach order) is a pure function of the content. This is the
  /// determinism contract behind shard merging: any merge order canonicalizes
  /// to bit-identical statistics.
  void Canonicalize() {
    if (canonical_) return;  // layout already a pure function of content
    std::vector<Slot> pairs;
    pairs.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.key != 0) pairs.push_back(s);
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Slot& a, const Slot& b) { return a.key < b.key; });
    std::vector<Slot>().swap(slots_);
    if (!pairs.empty()) {
      const size_t cap = RequiredCapacity(pairs.size());
      slots_.assign(cap, Slot{});
      for (const Slot& s : pairs) {
        size_t i = static_cast<size_t>(Mix64(s.key)) & (cap - 1);
        while (slots_[i].key != 0) i = (i + 1) & (cap - 1);
        slots_[i] = s;
      }
    }
    canonical_ = true;
  }

  /// \brief Builds a map directly in the canonical layout from entries in
  /// strictly ascending key order (key 0, if present, first — i.e. sorted).
  /// This is the fast deserialization path: the serialized statistics wire
  /// contract emits entries sorted, so loading skips the collect-and-sort
  /// rebuild that Canonicalize() would otherwise pay. The sorted vector is
  /// retained as a cache (see sorted_cache()) so a later serialization or
  /// sorted merge skips the collect-and-sort as well. Order violations or
  /// duplicates fail closed with Corruption.
  ///
  /// With `defer_hash` the probe array itself is not built: the map carries
  /// only the sorted entries (plus size bookkeeping) until EnsureHashed().
  /// This is the shard-reduction profile — deserialized statistics that are
  /// merged and re-serialized but never probed skip the hash build, which
  /// dominates deserialization cost. Point queries on a deferred map fail a
  /// hard check rather than silently missing.
  static Result<FlatMap64> FromSorted(std::vector<Slot>&& pairs,
                                      bool defer_hash = false) {
    uint64_t prev = 0;
    const size_t start = (!pairs.empty() && pairs[0].key == 0) ? 1 : 0;
    for (size_t idx = start; idx < pairs.size(); ++idx) {
      if (pairs[idx].key == 0 || (idx > start && pairs[idx].key <= prev)) {
        return Status::Corruption(
            "map entries are not in strictly ascending key order");
      }
      prev = pairs[idx].key;
    }
    return FromSortedUnchecked(std::move(pairs), defer_hash);
  }

  static Result<FlatMap64> FromSorted(const Slot* pairs, size_t n) {
    return FromSorted(std::vector<Slot>(pairs, pairs + n));
  }

  /// \brief Materializes the probe array of a hash-deferred map (no-op
  /// otherwise). The sorted cache is dropped afterwards: once point queries
  /// begin the cache has served its merge/serialize purpose, and keeping
  /// both representations would double the footprint.
  void EnsureHashed() {
    if (!hash_deferred_) return;
    hash_deferred_ = false;
    const size_t start = has_zero_ ? 1 : 0;
    const size_t m = sorted_.size() - start;
    if (m > 0) {
      const size_t cap = RequiredCapacity(m);
      slots_.assign(cap, Slot{});
      for (size_t idx = start; idx < sorted_.size(); ++idx) {
        const Slot& s = sorted_[idx];
        size_t i = static_cast<size_t>(Mix64(s.key)) & (cap - 1);
        while (slots_[i].key != 0) i = (i + 1) & (cap - 1);
        slots_[i] = s;
      }
    }
    DropSortedCache();
  }

  bool hash_deferred() const { return hash_deferred_; }

  /// \brief Merges two maps into a new canonical map, summing values on
  /// overlapping keys. Runs as a sorted merge-join over both maps'
  /// ascending-order entries (from the cache when available) followed by one
  /// canonical rebuild — for large maps this is substantially cheaper than
  /// MergeAdd + Canonicalize, which pays a hash probe per entry and then a
  /// full collect-sort-reinsert pass over the merged result.
  static FlatMap64 MergeSorted(const FlatMap64& a, const FlatMap64& b) {
    std::vector<Slot> local_a, local_b;
    const std::vector<Slot>* sa = a.sorted_cache();
    if (sa == nullptr) {
      local_a = a.CollectSorted();
      sa = &local_a;
    }
    const std::vector<Slot>* sb = b.sorted_cache();
    if (sb == nullptr) {
      local_b = b.CollectSorted();
      sb = &local_b;
    }
    std::vector<Slot> merged;
    merged.reserve(sa->size() + sb->size());
    size_t i = 0, j = 0;
    while (i < sa->size() && j < sb->size()) {
      const Slot& x = (*sa)[i];
      const Slot& y = (*sb)[j];
      if (x.key < y.key) {
        merged.push_back(x);
        ++i;
      } else if (y.key < x.key) {
        merged.push_back(y);
        ++j;
      } else {
        merged.push_back(Slot{x.key, x.value + y.value});
        ++i;
        ++j;
      }
    }
    merged.insert(merged.end(), sa->begin() + i, sa->end());
    merged.insert(merged.end(), sb->begin() + j, sb->end());
    // The merged map stays hash-deferred: reducers fold many shards, and
    // only the final fold's consumer (if it queries at all) pays the build.
    return FromSortedUnchecked(std::move(merged), /*defer_hash=*/true);
  }

  /// Entries in ascending key order (zero key, if present, first). Collected
  /// from the probe array and sorted on every call; use sorted_cache() to
  /// check for a precomputed copy first.
  std::vector<Slot> CollectSorted() const {
    std::vector<Slot> pairs;
    pairs.reserve(size());
    ForEach([&pairs](uint64_t k, uint64_t v) { pairs.push_back(Slot{k, v}); });
    std::sort(pairs.begin(), pairs.end(),
              [](const Slot& a, const Slot& b) { return a.key < b.key; });
    return pairs;
  }

  /// \brief Cached ascending-order entry array, or nullptr. Present on maps
  /// built by FromSorted / MergeSorted that have not been mutated since;
  /// invalidated by any operator[] access (the reference may be written
  /// through). Lets serialization and sorted merges skip a collect-and-sort
  /// pass over large dictionaries.
  const std::vector<Slot>* sorted_cache() const {
    return has_sorted_ ? &sorted_ : nullptr;
  }

  /// Drops all entries and releases the backing array.
  void Clear() {
    std::vector<Slot>().swap(slots_);
    size_ = 0;
    has_zero_ = false;
    zero_value_ = 0;
    canonical_ = true;  // the canonical empty map has no backing array
    hash_deferred_ = false;
    if (has_sorted_) DropSortedCache();
  }

  /// \brief Drops all entries but keeps the backing array for reuse — the
  /// per-column reset of the value interner, where Clear()'s deallocation
  /// would buy a malloc/free pair per column.
  void Reset() {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
    has_zero_ = false;
    zero_value_ = 0;
    canonical_ = false;  // canonical empty has zero capacity, this keeps it
    hash_deferred_ = false;
    if (has_sorted_) DropSortedCache();
  }

  /// Visits every (key, value) pair. Order is the probe-array order: stable
  /// for a fixed insertion sequence, unspecified otherwise.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    AD_CHECK(!hash_deferred_);  // call EnsureHashed() before iteration
    if (has_zero_) fn(static_cast<uint64_t>(0), zero_value_);
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

  /// Frozen blob size in bytes (always a multiple of 8).
  size_t FrozenBytes() const { return kFrozenHeaderWords * 8 + slots_.size() * sizeof(Slot); }

  /// \brief Appends the frozen representation to `out`: a 4-word header
  /// (size, has_zero, zero_value, capacity) followed by the probe array
  /// verbatim. The caller is responsible for placing the blob at an 8-byte
  /// aligned offset; FrozenView::FromBytes rejects misaligned input.
  void AppendFrozen(std::string* out) const {
    AD_CHECK(!hash_deferred_);  // freezing stores the probe array verbatim
    uint64_t header[kFrozenHeaderWords] = {size_, has_zero_ ? 1u : 0u, zero_value_,
                                           slots_.size()};
    out->append(reinterpret_cast<const char*>(header), sizeof(header));
    if (!slots_.empty()) {
      out->append(reinterpret_cast<const char*>(slots_.data()),
                  slots_.size() * sizeof(Slot));
    }
  }

 private:
  static constexpr size_t kFrozenHeaderWords = 4;
  static constexpr size_t kMinCapacity = 16;

  /// Canonical build from entries already known to be in strictly ascending
  /// key order (zero key first). The vector is adopted as the sorted cache;
  /// with `defer_hash` the probe array is left for EnsureHashed().
  static FlatMap64 FromSortedUnchecked(std::vector<Slot>&& pairs,
                                       bool defer_hash) {
    FlatMap64 map;
    size_t start = 0;
    if (!pairs.empty() && pairs[0].key == 0) {
      map.has_zero_ = true;
      map.zero_value_ = pairs[0].value;
      start = 1;
    }
    const size_t m = pairs.size() - start;
    map.size_ = m;
    if (m > 0 && !defer_hash) {
      const size_t cap = RequiredCapacity(m);
      map.slots_.assign(cap, Slot{});
      for (size_t idx = start; idx < pairs.size(); ++idx) {
        const Slot& s = pairs[idx];
        size_t i = static_cast<size_t>(Mix64(s.key)) & (cap - 1);
        while (map.slots_[i].key != 0) i = (i + 1) & (cap - 1);
        map.slots_[i] = s;
      }
    }
    map.hash_deferred_ = defer_hash && m > 0;
    map.canonical_ = true;
    map.sorted_ = std::move(pairs);
    map.has_sorted_ = true;
    return map;
  }

  void DropSortedCache() {
    std::vector<Slot>().swap(sorted_);
    has_sorted_ = false;
  }

  /// Smallest power-of-two capacity keeping load factor <= 0.75 for n keys.
  static size_t RequiredCapacity(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;
    return cap;
  }

  size_t ProbeStart(uint64_t key) const {
    return static_cast<size_t>(Mix64(key)) & (slots_.size() - 1);
  }

  void Rehash(size_t new_capacity) {
    canonical_ = false;  // growth changes layout away from the canonical one
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      size_t i = static_cast<size_t>(Mix64(s.key)) & (new_capacity - 1);
      while (slots_[i].key != 0) i = (i + 1) & (new_capacity - 1);
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;  ///< non-zero keys stored in slots_
  bool has_zero_ = false;
  uint64_t zero_value_ = 0;
  /// True when the probe-array layout is known to equal the canonical
  /// rebuild (default-constructed maps are trivially canonical). Lets
  /// Canonicalize() skip the collect-sort-reinsert pass on maps that were
  /// deserialized via FromSorted or already canonicalized.
  bool canonical_ = true;
  /// Ascending-order entry cache (see sorted_cache()). Mirrors the content
  /// exactly while has_sorted_ is set; dropped on any potential mutation.
  std::vector<Slot> sorted_;
  bool has_sorted_ = false;
  /// True while the probe array has not been materialized from sorted_
  /// (FromSorted with defer_hash, or MergeSorted). Point queries and
  /// iteration hard-fail until EnsureHashed().
  bool hash_deferred_ = false;
};

/// \brief Read-only view over a frozen FlatMap64 blob — typically bytes
/// inside a memory-mapped ADMODEL2 section. Probing runs directly against
/// the stored array: no deserialization, no allocation, pages fault in
/// lazily as keys are looked up. The view does not own the bytes; whoever
/// produced them (the mapped file) must outlive it.
class FlatMap64::FrozenView {
 public:
  FrozenView() = default;

  /// \brief Validates and adopts a frozen blob at `data` (which must be
  /// 8-byte aligned). Consumes exactly FrozenSize(capacity) bytes from the
  /// front of [data, data + len); trailing bytes are the caller's problem.
  /// Fails with Corruption on misalignment, a non-power-of-two capacity, or
  /// an implausible size, and with IOError when `len` is too short.
  static Result<FrozenView> FromBytes(const void* data, size_t len) {
    constexpr size_t kHeader = kFrozenHeaderWords * 8;
    if (reinterpret_cast<uintptr_t>(data) % 8 != 0) {
      return Status::Corruption("frozen map blob is not 8-byte aligned");
    }
    if (len < kHeader) {
      return Status::IOError("truncated frozen map: header needs 32 bytes, got " +
                             std::to_string(len));
    }
    uint64_t header[kFrozenHeaderWords];
    std::memcpy(header, data, sizeof(header));
    FrozenView view;
    view.size_ = static_cast<size_t>(header[0]);
    view.has_zero_ = header[1] != 0;
    view.zero_value_ = header[2];
    const uint64_t capacity = header[3];
    if (header[1] > 1) {
      return Status::Corruption("frozen map header: has_zero flag out of range");
    }
    if (capacity != 0 && (capacity & (capacity - 1)) != 0) {
      return Status::Corruption("frozen map capacity is not a power of two");
    }
    if (view.size_ > capacity) {
      return Status::Corruption("frozen map size exceeds capacity");
    }
    const uint64_t body = capacity * sizeof(Slot);
    if (len - kHeader < body) {
      return Status::IOError("truncated frozen map: slot array needs " +
                             std::to_string(body) + " bytes, got " +
                             std::to_string(len - kHeader));
    }
    view.capacity_ = static_cast<size_t>(capacity);
    view.slots_ = capacity == 0
                      ? nullptr
                      : reinterpret_cast<const Slot*>(
                            static_cast<const uint8_t*>(data) + kHeader);
    return view;
  }

  /// Total bytes the blob occupies (header + slot array).
  size_t bytes() const { return kFrozenHeaderWords * 8 + capacity_ * sizeof(Slot); }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return capacity_; }

  const uint64_t* Find(uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (capacity_ == 0) return nullptr;
    size_t i = static_cast<size_t>(Mix64(key)) & (capacity_ - 1);
    // Bounded by capacity_ probes: a corrupt blob with a full slot array and
    // no match must not spin forever.
    for (size_t probes = 0; probes < capacity_; ++probes) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
      i = (i + 1) & (capacity_ - 1);
    }
    return nullptr;
  }

  uint64_t GetOr(uint64_t key, uint64_t fallback = 0) const {
    const uint64_t* v = Find(key);
    return v == nullptr ? fallback : *v;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(static_cast<uint64_t>(0), zero_value_);
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].key != 0) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// \brief Re-emits the frozen blob (header + slot array) so a mapped model
  /// can be re-serialized without thawing.
  void AppendTo(std::string* out) const {
    uint64_t header[kFrozenHeaderWords] = {size_, has_zero_ ? 1u : 0u, zero_value_,
                                           capacity_};
    out->append(reinterpret_cast<const char*>(header), sizeof(header));
    if (capacity_ != 0) {
      out->append(reinterpret_cast<const char*>(slots_), capacity_ * sizeof(Slot));
    }
  }

  /// Rebuilds an owning FlatMap64 with the same contents (used when a frozen
  /// model must be mutated, e.g. merged into a new training run).
  FlatMap64 Thaw() const {
    FlatMap64 map;
    map.Reserve(size());
    ForEach([&map](uint64_t key, uint64_t value) { map[key] = value; });
    return map;
  }

 private:
  const Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
  uint64_t zero_value_ = 0;
};

}  // namespace autodetect
