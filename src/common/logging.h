#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logging plus hard-failure checks (AD_CHECK), in the style
/// of Arrow's util/logging.h. Logging goes to stderr; the level is settable
/// at runtime so tests/benches can silence INFO chatter.

namespace autodetect {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // emits (and aborts for kFatal)

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace autodetect

#define AD_LOG(level)                                                            \
  ::autodetect::internal::LogMessage(::autodetect::LogLevel::k##level, __FILE__, \
                                     __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds:
/// used for programmer errors that must never ship.
#define AD_CHECK(condition)                                             \
  if (!(condition))                                                     \
  AD_LOG(Fatal) << "Check failed: " #condition " "

#define AD_CHECK_OK(expr)                                      \
  do {                                                         \
    ::autodetect::Status _ad_st = (expr);                      \
    AD_CHECK(_ad_st.ok()) << _ad_st.ToString();                \
  } while (false)

#define AD_DCHECK(condition) AD_CHECK(condition)
