#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace autodetect {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace autodetect
