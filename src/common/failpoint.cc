#include "common/failpoint.h"

#ifdef AUTODETECT_FAILPOINTS

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"

namespace autodetect {
namespace failpoint {

namespace {

struct ArmedPoint {
  FailpointSpec spec;
  FailpointStats stats;
  Pcg32 rng{0};
  bool armed = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmedPoint, std::less<>> points;
  bool env_loaded = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // never destroyed: Fire may
  return *registry;                            // race static teardown
}

/// Seeds a point's RNG from its name so probabilistic specs replay the same
/// fire sequence run to run.
Pcg32 RngFor(std::string_view name) {
  Fnv1aHasher hasher;
  for (char c : name) hasher.Byte(static_cast<unsigned char>(c));
  return Pcg32(hasher.h);
}

Result<FailpointSpec> ParseSpec(std::string_view spec) {
  FailpointSpec out;
  // Optional "skipN" prefix, optionally followed by '*' and a trigger.
  if (spec.rfind("skip", 0) == 0) {
    size_t end = 4;
    while (end < spec.size() && spec[end] >= '0' && spec[end] <= '9') ++end;
    if (end == 4) return Status::Invalid("failpoint spec: skip needs a count");
    out.skip = std::strtoll(std::string(spec.substr(4, end - 4)).c_str(), nullptr, 10);
    if (end == spec.size()) return out;  // "skipN": fire always after N
    if (spec[end] != '*') return Status::Invalid("failpoint spec: expected '*' after skipN");
    spec = spec.substr(end + 1);
  }
  if (spec == "on") return out;
  if (spec == "once") {
    out.max_hits = 1;
    return out;
  }
  if (!spec.empty() && spec[0] == 'p') {
    char* end = nullptr;
    std::string body(spec.substr(1));
    double p = std::strtod(body.c_str(), &end);
    if (end == body.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::Invalid("failpoint spec: bad probability '" + body + "'");
    }
    out.probability = p;
    return out;
  }
  if (!spec.empty() && spec.back() == 'x') {
    char* end = nullptr;
    std::string body(spec.substr(0, spec.size() - 1));
    long long n = std::strtoll(body.c_str(), &end, 10);
    if (end == body.c_str() || *end != '\0' || n < 0) {
      return Status::Invalid("failpoint spec: bad count '" + body + "'");
    }
    out.max_hits = n;
    return out;
  }
  return Status::Invalid("failpoint spec: unrecognized trigger '" +
                         std::string(spec) + "'");
}

/// Arms everything named in AD_FAILPOINTS ("a=once;b=p0.5"). Parse errors
/// abort loudly — a chaos run with a typo'd spec silently testing nothing is
/// worse than a crash.
void LoadEnvLocked(Registry& registry) {
  registry.env_loaded = true;
  const char* env = std::getenv("AD_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string_view rest(env);
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view() : rest.substr(semi + 1);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    std::string_view name = entry.substr(0, eq);
    std::string_view spec = eq == std::string_view::npos ? "on" : entry.substr(eq + 1);
    Result<FailpointSpec> parsed = ParseSpec(spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fatal: AD_FAILPOINTS entry '%.*s': %s\n",
                   static_cast<int>(entry.size()), entry.data(),
                   parsed.status().ToString().c_str());
      std::abort();
    }
    ArmedPoint& point = registry.points[std::string(name)];
    point.spec = *parsed;
    point.stats = {};
    point.rng = RngFor(name);
    point.armed = true;
  }
}

}  // namespace

void Enable(std::string_view name, FailpointSpec spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.env_loaded) LoadEnvLocked(registry);
  ArmedPoint& point = registry.points[std::string(name)];
  point.spec = spec;
  point.stats = {};
  point.rng = RngFor(name);
  point.armed = true;
}

Status EnableFromString(std::string_view name, std::string_view spec) {
  AD_ASSIGN_OR_RETURN(FailpointSpec parsed, ParseSpec(spec));
  Enable(name, parsed);
  return Status::OK();
}

void Disable(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) it->second.armed = false;
}

void DisableAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
}

FailpointStats Stats(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? FailpointStats{} : it->second.stats;
}

std::vector<std::string> Armed() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> out;
  for (const auto& [name, point] : registry.points) {
    if (point.armed) out.push_back(name);
  }
  return out;
}

bool Fire(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.env_loaded) LoadEnvLocked(registry);
  auto it = registry.points.find(name);
  if (it == registry.points.end() || !it->second.armed) return false;
  ArmedPoint& point = it->second;
  const uint64_t eval = point.stats.evaluations++;
  if (static_cast<int64_t>(eval) < point.spec.skip) return false;
  if (point.spec.max_hits >= 0 &&
      point.stats.hits >= static_cast<uint64_t>(point.spec.max_hits)) {
    return false;
  }
  if (point.spec.probability < 1.0 && !point.rng.Chance(point.spec.probability)) {
    return false;
  }
  ++point.stats.hits;
  return true;
}

}  // namespace failpoint
}  // namespace autodetect

#endif  // AUTODETECT_FAILPOINTS
