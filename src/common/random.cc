#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace autodetect {

uint32_t Pcg32::Below(uint32_t bound) {
  AD_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < bound) {
    uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      m = static_cast<uint64_t>(NextU32()) * bound;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Pcg32::Uniform(int64_t lo, int64_t hi) {
  AD_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // 64-bit rejection sampling.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

double Pcg32::NextGaussian() {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += NextDouble();
  return sum - 6.0;
}

uint32_t Pcg32::NextZipf(uint32_t n, double s) {
  AD_DCHECK(n > 0);
  AD_DCHECK(s > 0);
  // Rejection-inversion sampling (Hormann & Derflinger) simplified: sample
  // from the continuous pareto-like envelope and reject.
  // For modest n the loop terminates in a handful of iterations.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint32_t>(x) - 1;
    }
  }
}

}  // namespace autodetect
