#pragma once

#include <atomic>
#include <chrono>
#include <memory>

/// \file cancel.h
/// Cooperative cancellation with optional deadlines. A CancelSource owns the
/// cancellation state; the CancelTokens it hands out are cheap copies that
/// workers poll at safe points (between pair-scoring rows, between columns).
/// Cancellation is advisory — nothing is interrupted preemptively — which is
/// exactly what the serving layer needs: a column past its deadline stops at
/// the next poll and returns the findings it already has, instead of
/// blocking the batch (or being torn down mid-scan with live scratch
/// buffers).
///
/// Cost model: a default-constructed token is inert — `active()` is one
/// pointer test and Cancelled() never reads the clock — so request paths
/// with no deadline pay one predictable branch, preserving the engine's
/// throughput contract. An active token costs one relaxed atomic load per
/// poll, plus a steady_clock read only when a deadline was set.

namespace autodetect {

namespace internal {
struct CancelState {
  std::atomic<bool> cancelled{false};  ///< explicit Cancel()
  std::atomic<bool> expired{false};    ///< deadline observed passed (sticky)
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace internal

/// Shared, copyable view of one cancellation scope. Thread-safe.
class CancelToken {
 public:
  /// Inert token: never cancelled, no clock reads, no allocation.
  CancelToken() = default;

  /// True when this token can ever cancel (i.e. it came from a source).
  bool active() const { return state_ != nullptr; }

  /// \brief True once the source was cancelled or the deadline passed.
  /// Sticky: once the deadline is observed expired the flag is set, so
  /// later polls skip the clock read.
  bool Cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->expired.load(std::memory_order_relaxed)) return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->expired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// \brief True when cancellation came from the deadline (vs an explicit
  /// Cancel()). Meaningful only after Cancelled() returned true; an explicit
  /// Cancel() racing an expiring deadline may report either reason.
  bool ExpiredDeadline() const {
    return state_ != nullptr && state_->expired.load(std::memory_order_relaxed);
  }

  /// True when a deadline was attached (Cancelled() may flip on its own).
  bool has_deadline() const { return state_ != nullptr && state_->has_deadline; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::CancelState> state_;
};

/// Owner of one cancellation scope. Typically one per batch: created with
/// the request's deadline, its token copied into every column's request.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// \brief Source whose token auto-cancels `budget` from now.
  static CancelSource WithDeadline(std::chrono::milliseconds budget) {
    CancelSource source;
    source.state_->has_deadline = true;
    source.state_->deadline = std::chrono::steady_clock::now() + budget;
    return source;
  }

  /// \brief Requests cancellation. Idempotent, thread-safe.
  void Cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace autodetect
