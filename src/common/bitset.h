#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file bitset.h
/// A dynamic bitset with the few operations the language-selection greedy
/// needs: set/test, popcount, union-in-place, and "count bits of a that are
/// not in b" (marginal coverage).

namespace autodetect {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  size_t Popcount() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// this |= other. Requires equal size.
  void UnionWith(const DynamicBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// |this & ~other| — how many of this set's bits are new w.r.t. `other`.
  size_t CountNewOver(const DynamicBitset& other) const {
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<size_t>(__builtin_popcountll(words_[i] & ~other.words_[i]));
    }
    return n;
  }

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Raw word access for serialization (word i holds bits [64i, 64i+64)).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs from serialized words; extra words are rejected by the
  /// caller (the word count must match (num_bits+63)/64).
  static DynamicBitset FromWords(size_t num_bits, std::vector<uint64_t> words) {
    DynamicBitset b;
    b.num_bits_ = num_bits;
    b.words_ = std::move(words);
    b.words_.resize((num_bits + 63) / 64, 0);
    return b;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace autodetect
