#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace autodetect {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string PadLeft(std::string_view s, size_t width, char fill) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), fill);
  out += s;
  return out;
}

std::string WithThousandSeparators(int64_t value) {
  bool negative = value < 0;
  uint64_t v = negative ? static_cast<uint64_t>(-(value + 1)) + 1
                        : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    out += digits[i - 1];
    if (++count % 3 == 0 && i > 1) out += ',';
  }
  if (negative) out += '-';
  std::string reversed(out.rbegin(), out.rend());
  return reversed;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, units[u]);
}

}  // namespace autodetect
