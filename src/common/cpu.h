#pragma once

#include <cstdint>
#include <string_view>

/// \file cpu.h
/// Runtime CPU feature detection for the SIMD dispatch in src/text. One
/// binary serves every x86-64 microarchitecture: kernels are compiled per
/// ISA tier behind `__attribute__((target(...)))` and selected once at
/// startup from CPUID, so the build needs no -march flags and never executes
/// an instruction the host cannot retire. Non-x86 builds (and builds with
/// -DAUTODETECT_NO_SIMD) report no features and fall back to the scalar
/// reference paths.

/// True when the toolchain + target can compile the x86 SIMD kernels at all.
/// The kill switch -DAUTODETECT_NO_SIMD forces 0, keeping a pure-scalar
/// binary buildable on any compiler for debugging and for A/B perf runs.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(AUTODETECT_NO_SIMD)
#define AUTODETECT_X86_SIMD 1
#else
#define AUTODETECT_X86_SIMD 0
#endif

namespace autodetect {

/// The ISA features the dispatchers care about, detected once per process.
struct CpuFeatures {
  bool ssse3 = false;  ///< pshufb — the 16-byte nibble-LUT tokenizer tier
  bool avx2 = false;   ///< 32-byte vectors — the widest tokenizer tier
};

/// \brief Cached CPUID probe. Thread-safe (C++ static init); never throws.
inline const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if AUTODETECT_X86_SIMD
    f.ssse3 = __builtin_cpu_supports("ssse3");
    f.avx2 = __builtin_cpu_supports("avx2");
#endif
    return f;
  }();
  return features;
}

}  // namespace autodetect
