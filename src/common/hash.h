#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

/// \file hash.h
/// Hashing primitives: FNV-1a and a 64-bit mix for dictionary keys, plus the
/// pairwise-independent multiply-shift family used by the count-min sketch
/// (the sketch's error bound requires pairwise independence; see
/// Cormode & Muthukrishnan 2005, Sec. 2).

namespace autodetect {

/// \brief FNV-1a over a byte string; stable across platforms and runs (the
/// model file format depends on this stability).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// \brief Incremental FNV-1a: feeding bytes one at a time yields exactly the
/// hash Fnv1a64 computes over the concatenation. The fused generalize+hash
/// paths (pattern.cc, run_tokenizer.cc) rely on this equivalence to stay
/// bit-identical to hashing the canonical pattern rendering.
struct Fnv1aHasher {
  uint64_t h = 14695981039346656037ULL;
  void Byte(unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  void Str(std::string_view s) {
    for (unsigned char c : s) Byte(c);
  }
};

/// \brief Finalization mix from MurmurHash3 / splitmix64.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Order-independent combination of two key hashes, for unordered
/// pattern pairs: Hash({a,b}) == Hash({b,a}).
inline uint64_t CombineUnordered(uint64_t a, uint64_t b) {
  if (a > b) std::swap(a, b);
  return Mix64(a ^ Mix64(b + 0x9e3779b97f4a7c15ULL));
}

/// \brief One member of a pairwise-independent hash family
/// h(x) = ((a*x + b) mod p) mod m with p = 2^61 - 1 (a Mersenne prime).
class PairwiseHash {
 public:
  PairwiseHash() : a_(1), b_(0) {}
  /// \param a multiplier in [1, p); \param b offset in [0, p).
  PairwiseHash(uint64_t a, uint64_t b) : a_(a % kPrime), b_(b % kPrime) {
    if (a_ == 0) a_ = 1;
  }

  /// Hash of x into [0, buckets).
  uint64_t operator()(uint64_t x, uint64_t buckets) const {
    uint64_t r = MulModP(a_, x % kPrime) + b_;
    if (r >= kPrime) r -= kPrime;
    return r % buckets;
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

  static constexpr uint64_t kPrime = (1ULL << 61) - 1;

 private:
  /// (x*y) mod (2^61-1) without overflow, via 128-bit intermediate.
  static uint64_t MulModP(uint64_t x, uint64_t y) {
    __uint128_t z = static_cast<__uint128_t>(x) * y;
    uint64_t lo = static_cast<uint64_t>(z & kPrime);
    uint64_t hi = static_cast<uint64_t>(z >> 61);
    uint64_t r = lo + hi;
    if (r >= kPrime) r -= kPrime;
    return r;
  }

  uint64_t a_;
  uint64_t b_;
};

}  // namespace autodetect
