#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared across subsystems. All functions are pure and
/// allocation is limited to the returned values.

namespace autodetect {

/// \brief Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins parts with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Lower-cases ASCII letters only.
std::string ToLowerAscii(std::string_view s);

/// \brief True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Left-pads with `fill` to at least `width` characters.
std::string PadLeft(std::string_view s, size_t width, char fill);

/// \brief Formats an integer with US thousand separators: 1234567 -> "1,234,567".
std::string WithThousandSeparators(int64_t value);

/// \brief Human-readable byte size ("1.5 MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace autodetect
