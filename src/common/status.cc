#include "common/status.h"

namespace autodetect {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace autodetect
