#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Fixed-size worker pool used by the corpus statistics builder to shard
/// per-language counting across cores. Tasks are void() closures; errors are
/// the tasks' own responsibility (they record into their shard's state).

namespace autodetect {

class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means hardware concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace autodetect
