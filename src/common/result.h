#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

/// \file result.h
/// `Result<T>` holds either a value of type T or a non-OK Status, mirroring
/// arrow::Result. Use AD_ASSIGN_OR_RETURN to unwrap-or-propagate.

namespace autodetect {

template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit, enables `return Status::...;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` if errored.
  T ValueOr(T alternative) && {
    return ok() ? std::move(std::get<T>(repr_)) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace autodetect

#define AD_CONCAT_IMPL(x, y) x##y
#define AD_CONCAT(x, y) AD_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define AD_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto AD_CONCAT(_ad_result_, __LINE__) = (rexpr);                \
  if (!AD_CONCAT(_ad_result_, __LINE__).ok())                     \
    return AD_CONCAT(_ad_result_, __LINE__).status();             \
  lhs = std::move(AD_CONCAT(_ad_result_, __LINE__)).ValueOrDie()
