#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file csv.h
/// Minimal RFC-4180-style CSV reading/writing used by the CSV benchmark
/// (paper Sec. 4.1, the 26-file / 441-column test set) and the example
/// applications. Supports quoted fields with embedded separators, quotes
/// ("" escaping) and newlines; both \n and \r\n row endings.

namespace autodetect {

/// A parsed CSV table: a header row plus data rows (ragged rows are padded
/// with empty strings to the header width).
struct CsvTable {
  std::string name;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return header.size(); }

  /// \brief Extracts column `col` as a vector of cell values.
  std::vector<std::string> Column(size_t col) const;
};

/// \brief Parses CSV text. \param has_header when false, synthesizes
/// "col0".."colN" names and treats every row as data.
Result<CsvTable> ParseCsv(std::string_view text, bool has_header = true);

/// \brief Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true);

/// \brief Serializes a table to CSV text, quoting only where needed.
std::string WriteCsv(const CsvTable& table);

/// \brief Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path);

}  // namespace autodetect
