#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

/// \file mmap_file.h
/// Read-only memory-mapped file with RAII unmap — the substrate of the
/// zero-copy ADMODEL2 model path. Mapping a model file means a client
/// process pays page faults only for the tables it actually probes (the
/// paper's client-side deployment under a memory budget), and N processes
/// loading the same model share one page-cache copy.
///
/// On platforms without mmap — or when the map call fails (e.g. special
/// filesystems) — Open falls back to a buffered read into an owned heap
/// buffer, so callers never branch on platform: data()/size() behave the
/// same either way, only mapped() reports which mode is live.

namespace autodetect {

class MmapFile {
 public:
  /// Access-pattern hints forwarded to madvise (no-ops in fallback mode or
  /// where madvise is unavailable; hints are best-effort by contract).
  enum class Advice {
    kNormal,
    kSequential,  ///< read-ahead aggressively (checksum pass)
    kRandom,      ///< disable read-ahead (point probes into hash tables)
    kWillNeed,    ///< fault pages in eagerly
  };

  /// \brief Maps `path` read-only. An empty file opens successfully with
  /// size() == 0 and data() == nullptr.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when backed by a live mapping; false in buffered-fallback mode.
  bool mapped() const { return map_base_ != nullptr; }

  /// \brief Applies an access-pattern hint to the whole file.
  void Advise(Advice advice) const;
  /// \brief Applies a hint to the byte range [offset, offset + length);
  /// the range is widened to page boundaries internally.
  void Advise(Advice advice, size_t offset, size_t length) const;

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;          ///< non-null only when mmap'ed
  std::vector<uint8_t> fallback_;     ///< owns the bytes in fallback mode
};

}  // namespace autodetect
