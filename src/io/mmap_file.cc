#include "io/mmap_file.h"

#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define AUTODETECT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace autodetect {

namespace {

/// Buffered-read fallback shared by the no-mmap build and mmap failures.
Status ReadWhole(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), static_cast<std::streamsize>(size))) {
    return Status::IOError("short read of " + path);
  }
  return Status::OK();
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  MmapFile file;
#if AUTODETECT_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty file: valid, unmapped, size 0
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base != MAP_FAILED) {
    file.map_base_ = base;
    file.data_ = static_cast<const uint8_t*>(base);
    file.size_ = size;
    return file;
  }
  // Fall through to the buffered path (e.g. filesystems refusing MAP_PRIVATE).
#endif
  AD_RETURN_NOT_OK(ReadWhole(path, &file.fallback_));
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

MmapFile::~MmapFile() {
#if AUTODETECT_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
#endif
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
#if AUTODETECT_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
#endif
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  fallback_ = std::move(other.fallback_);
  if (!fallback_.empty()) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  return *this;
}

void MmapFile::Advise(Advice advice) const { Advise(advice, 0, size_); }

void MmapFile::Advise(Advice advice, size_t offset, size_t length) const {
#if AUTODETECT_HAVE_MMAP
  if (map_base_ == nullptr || length == 0 || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  // Widen to page boundaries: madvise requires a page-aligned start.
  uintptr_t begin = reinterpret_cast<uintptr_t>(data_) + offset;
  uintptr_t aligned = begin & ~(page - 1);
  length += static_cast<size_t>(begin - aligned);
  int flag = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: flag = MADV_NORMAL; break;
    case Advice::kSequential: flag = MADV_SEQUENTIAL; break;
    case Advice::kRandom: flag = MADV_RANDOM; break;
    case Advice::kWillNeed: flag = MADV_WILLNEED; break;
  }
  ::madvise(reinterpret_cast<void*>(aligned), length, flag);  // best-effort
#else
  (void)advice;
  (void)offset;
  (void)length;
#endif
}

}  // namespace autodetect
