#include "io/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define AUTODETECT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace autodetect {

namespace {

/// Buffered-read fallback shared by the no-mmap build and mmap failures.
/// On POSIX this is a raw read(2) retry loop: reads may legitimately come
/// back short (network/FUSE filesystems) or fail with EINTR (a signal
/// landed), and both must resume where they left off instead of erroring.
/// The io.read.short / io.read.eintr failpoints inject exactly those
/// outcomes so the loop stays regression-tested.
#if defined(__unix__) || defined(__APPLE__)
Status ReadWhole(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    size_t want = out->size() - off;
    // Chaos: deliver one byte instead of the full remainder — the loop must
    // carry on from the new offset.
    if (AD_FAILPOINT("io.read.short")) want = 1;
    ssize_t n;
    if (AD_FAILPOINT("io.read.eintr")) {
      // Chaos: behave exactly as read(2) does when a signal interrupts it.
      n = -1;
      errno = EINTR;
    } else {
      n = ::read(fd, out->data() + off, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted before any bytes: retry
      const int err = errno;
      ::close(fd);
      return Status::IOError("read failed for " + path + ": " +
                             std::strerror(err));
    }
    if (n == 0) break;  // premature EOF: file shrank mid-read
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  if (off != out->size()) {
    return Status::IOError("short read of " + path + ": got " +
                           std::to_string(off) + " of " +
                           std::to_string(out->size()) + " bytes");
  }
  return Status::OK();
}
#else
Status ReadWhole(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), static_cast<std::streamsize>(size))) {
    return Status::IOError("short read of " + path);
  }
  return Status::OK();
}
#endif

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  MmapFile file;
#if AUTODETECT_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty file: valid, unmapped, size 0
  }
  // Chaos: pretend mmap refused (as some filesystems do for MAP_PRIVATE) so
  // the buffered fallback is exercised on filesystems where it never fires.
  void* base = AD_FAILPOINT("io.mmap.fallback")
                   ? MAP_FAILED
                   : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base != MAP_FAILED) {
    file.map_base_ = base;
    file.data_ = static_cast<const uint8_t*>(base);
    file.size_ = size;
    return file;
  }
  // Fall through to the buffered path (e.g. filesystems refusing MAP_PRIVATE).
#endif
  AD_RETURN_NOT_OK(ReadWhole(path, &file.fallback_));
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

MmapFile::~MmapFile() {
#if AUTODETECT_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
#endif
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
#if AUTODETECT_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
#endif
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  fallback_ = std::move(other.fallback_);
  if (!fallback_.empty()) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  return *this;
}

void MmapFile::Advise(Advice advice) const { Advise(advice, 0, size_); }

void MmapFile::Advise(Advice advice, size_t offset, size_t length) const {
#if AUTODETECT_HAVE_MMAP
  if (map_base_ == nullptr || length == 0 || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  // Widen to page boundaries: madvise requires a page-aligned start.
  uintptr_t begin = reinterpret_cast<uintptr_t>(data_) + offset;
  uintptr_t aligned = begin & ~(page - 1);
  length += static_cast<size_t>(begin - aligned);
  int flag = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: flag = MADV_NORMAL; break;
    case Advice::kSequential: flag = MADV_SEQUENTIAL; break;
    case Advice::kRandom: flag = MADV_RANDOM; break;
    case Advice::kWillNeed: flag = MADV_WILLNEED; break;
  }
  ::madvise(reinterpret_cast<void*>(aligned), length, flag);  // best-effort
#else
  (void)advice;
  (void)offset;
  (void)length;
#endif
}

}  // namespace autodetect
