#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace autodetect {

std::vector<std::string> CsvTable::Column(size_t col) const {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(col < row.size() ? row[col] : std::string());
  }
  return out;
}

Result<CsvTable> ParseCsv(std::string_view text, bool has_header) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool record_quoted = false;  // distinguishes `""` rows from blank lines
  size_t line = 1;             // 1-based, for error messages
  size_t quote_open_line = 0;  // line where the current quoted field began

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    // A truly blank line (single empty unquoted field) is not a record; a
    // quoted empty row ("") is.
    bool blank = record.size() == 1 && record[0].empty() && !record_quoted;
    if (!blank) records.push_back(std::move(record));
    record.clear();
    record_quoted = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '\n') ++line;
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
          record_quoted = true;
          quote_open_line = line;
        } else {
          field.push_back(c);  // stray quote mid-field: keep literally
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        ++line;
        end_record();
        break;
      case '\n':
        ++line;
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV ends inside a quoted field opened on line " +
                              std::to_string(quote_open_line));
  }
  // Flush a final record without trailing newline.
  if (!field.empty() || field_started || !record.empty()) {
    end_record();
  }

  CsvTable table;
  if (records.empty()) return table;
  size_t start = 0;
  if (has_header) {
    table.header = std::move(records[0]);
    start = 1;
  } else {
    size_t width = 0;
    for (const auto& r : records) width = std::max(width, r.size());
    for (size_t i = 0; i < width; ++i) table.header.push_back("col" + std::to_string(i));
  }
  size_t width = table.header.size();
  for (size_t i = start; i < records.size(); ++i) {
    auto& r = records[i];
    r.resize(std::max(width, r.size()));
    if (r.size() > width) {
      // Grow header for ragged over-wide rows.
      while (table.header.size() < r.size()) {
        table.header.push_back("col" + std::to_string(table.header.size()));
      }
      width = table.header.size();
      for (auto& prev : table.rows) prev.resize(width);
    }
    r.resize(width);
    table.rows.push_back(std::move(r));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("failed reading " + path);
  auto parsed = ParseCsv(ss.str(), has_header);
  if (!parsed.ok()) return parsed.status().WithContext(path);
  parsed->name = path;
  return parsed;
}

namespace {
void AppendCsvField(std::string_view v, std::string* out) {
  bool needs_quote = v.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) {
    out->append(v);
    return;
  }
  out->push_back('"');
  for (char c : v) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}
}  // namespace

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i) out.push_back(',');
    AppendCsvField(table.header[i], &out);
  }
  out.push_back('\n');
  for (const auto& row : table.rows) {
    if (row.size() == 1 && row[0].empty()) {
      // A lone empty field would serialize as a blank line, which readers
      // (including ours) skip; quote it to keep the row.
      out += "\"\"\n";
      continue;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out.push_back(',');
      AppendCsvField(row[i], &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  std::string text = WriteCsv(table);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace autodetect
