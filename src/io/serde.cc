#include "io/serde.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace autodetect {

Status BinaryWriter::status() const {
  if (ok()) return Status::OK();
  if (failed_) {
    return Status::IOError(
        StrFormat("binary write failed at byte offset %zu", failed_at_));
  }
  return Status::IOError("output stream in failed state");
}

void BinaryWriter::WriteU32(uint32_t v) {
  uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  WriteBytes(b, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  WriteBytes(b, 8);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::AlignTo(size_t alignment) {
  static constexpr uint8_t kZeros[64] = {0};
  size_t rem = bytes_written_ & (alignment - 1);
  if (rem == 0) return;
  size_t pad = alignment - rem;
  while (pad > 0 && !failed_) {
    size_t chunk = pad < sizeof(kZeros) ? pad : sizeof(kZeros);
    WriteBytes(kZeros, chunk);
    pad -= chunk;
  }
}

Status BinaryReader::Corrupt(std::string_view msg) const {
  return Status::Corruption(
      StrFormat("%.*s (at byte offset %zu)", static_cast<int>(msg.size()),
                msg.data(), offset_));
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  // Chaos: behave as if the input ended here — exercises every caller's
  // truncated-artifact handling (model load fails closed, registry keeps
  // the old snapshot) without hand-crafting cut files.
  if (AD_FAILPOINT("serde.read.truncate")) {
    return Status::IOError(
        StrFormat("truncated input at byte offset %zu: needed %zu bytes, "
                  "got 0 (failpoint serde.read.truncate)",
                  offset_, n));
  }
  if (in_ == nullptr) {
    // Memory mode: bounds are known up front, so truncation is detected
    // before touching the bytes.
    if (n > mem_size_ - offset_ || offset_ > mem_size_) {
      return Status::IOError(
          StrFormat("truncated input at byte offset %zu: needed %zu bytes, "
                    "got %zu",
                    offset_, n, mem_size_ - offset_));
    }
    std::memcpy(data, mem_ + offset_, n);
    offset_ += n;
    return Status::OK();
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  const size_t got = static_cast<size_t>(in_->gcount());
  if (got != n) {
    if (in_->bad()) {
      return Status::IOError(
          StrFormat("read error at byte offset %zu", offset_ + got));
    }
    return Status::IOError(
        StrFormat("truncated input at byte offset %zu: needed %zu bytes, "
                  "got %zu",
                  offset_, n, got));
  }
  offset_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v;
  AD_RETURN_NOT_OK(ReadBytes(&v, 1));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint8_t b[4];
  AD_RETURN_NOT_OK(ReadBytes(b, 4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint8_t b[8];
  AD_RETURN_NOT_OK(ReadBytes(b, 8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  AD_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> BinaryReader::ReadString(size_t max_len) {
  AD_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > max_len) return Corrupt("string length exceeds limit");
  std::string s(static_cast<size_t>(len), '\0');
  if (len > 0) AD_RETURN_NOT_OK(ReadBytes(s.data(), s.size()));
  return s;
}

}  // namespace autodetect
