#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

/// \file serde.h
/// Little-endian binary (de)serialization for model files. Values are
/// written with explicit widths so files are portable across platforms; all
/// readers validate lengths and report structured errors instead of
/// crashing.
///
/// Error taxonomy (model files get half-copied in the real world, and the
/// two failure shapes need different operator responses):
///  * Truncated input — the stream/buffer ended mid-read. Reported as
///    IOError naming the byte offset and the shortfall ("re-copy the
///    file").
///  * Corrupt section — bytes were present but semantically invalid
///    (implausible length prefix, bad magic, checksum mismatch). Reported
///    as Corruption, with the byte offset where decoding stopped
///    ("regenerate the file").

namespace autodetect {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v) { WriteBytes(&v, 1); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);

  /// \brief Writes `n` raw bytes verbatim (no length prefix). The bulk path
  /// of the frozen-table writer: slot arrays go out with one write instead
  /// of one call per word.
  void WriteRaw(const void* data, size_t n) { WriteBytes(data, n); }

  /// \brief Pads with zero bytes until bytes_written() is a multiple of
  /// `alignment` (which must be a power of two).
  void AlignTo(size_t alignment);

  template <typename T, typename Fn>
  void WriteVector(const std::vector<T>& v, Fn&& write_elem) {
    WriteU64(v.size());
    for (const auto& e : v) write_elem(this, e);
  }

  bool ok() const { return !failed_ && out_->good(); }

  /// Bytes successfully written so far — section offsets in the ADMODEL2
  /// writer are derived from this.
  size_t bytes_written() const { return bytes_written_; }

  /// \brief Structured write state: OK, or an IOError naming the byte offset
  /// of the first failed write (the bool `ok()` told callers only *that*
  /// writing failed, never where).
  Status status() const;

 private:
  void WriteBytes(const void* data, size_t n) {
    if (failed_) return;
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out_->good()) {
      failed_ = true;
      failed_at_ = bytes_written_;
    } else {
      bytes_written_ += n;
    }
  }
  std::ostream* out_;
  size_t bytes_written_ = 0;
  size_t failed_at_ = 0;
  bool failed_ = false;
};

/// Reads the explicit-width little-endian encoding, from either a stream or
/// an in-memory byte range (the zero-copy model path parses mapped sections
/// through the memory mode — same API, no copies, offsets relative to the
/// range start).
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  /// Memory mode over [data, data + size); the reader does not own the bytes.
  BinaryReader(const void* data, size_t size)
      : mem_(static_cast<const uint8_t*>(data)), mem_size_(size) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64() {
    AD_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }
  Result<double> ReadDouble();
  /// \param max_len guards against corrupt length prefixes.
  Result<std::string> ReadString(size_t max_len = 1 << 20);

  /// \brief Reads `n` raw bytes verbatim (no length prefix) — the bulk
  /// counterpart of BinaryWriter::WriteRaw.
  Status ReadRaw(void* data, size_t n) { return ReadBytes(data, n); }

  /// Bytes consumed so far. Deserializers fold this into their own
  /// Corruption messages so a bad section is locatable in the file.
  size_t offset() const { return offset_; }

  /// \brief Returns Corruption with `msg` suffixed by the current byte
  /// offset — the uniform way for deserializers to report semantically
  /// invalid sections.
  Status Corrupt(std::string_view msg) const;

 private:
  Status ReadBytes(void* data, size_t n);
  std::istream* in_ = nullptr;
  const uint8_t* mem_ = nullptr;
  size_t mem_size_ = 0;
  size_t offset_ = 0;
};

}  // namespace autodetect
