#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

/// \file serde.h
/// Little-endian binary (de)serialization for model files. Values are
/// written with explicit widths so files are portable across platforms; all
/// readers validate lengths and report Corruption instead of crashing.

namespace autodetect {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v) { WriteBytes(&v, 1); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);

  template <typename T, typename Fn>
  void WriteVector(const std::vector<T>& v, Fn&& write_elem) {
    WriteU64(v.size());
    for (const auto& e : v) write_elem(this, e);
  }

  bool ok() const { return !failed_ && out_->good(); }

  /// \brief Structured write state: OK, or an IOError naming the byte offset
  /// of the first failed write (the bool `ok()` told callers only *that*
  /// writing failed, never where).
  Status status() const;

 private:
  void WriteBytes(const void* data, size_t n) {
    if (failed_) return;
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out_->good()) {
      failed_ = true;
      failed_at_ = bytes_written_;
    } else {
      bytes_written_ += n;
    }
  }
  std::ostream* out_;
  size_t bytes_written_ = 0;
  size_t failed_at_ = 0;
  bool failed_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64() {
    AD_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }
  Result<double> ReadDouble();
  /// \param max_len guards against corrupt length prefixes.
  Result<std::string> ReadString(size_t max_len = 1 << 20);

 private:
  Status ReadBytes(void* data, size_t n);
  std::istream* in_;
};

}  // namespace autodetect
