#pragma once

#include <cstddef>
#include <string_view>

/// \file lzw.h
/// A small from-scratch LZW compressor used by the CDM baseline. Only the
/// compressed *size* matters for the compression-based dissimilarity
/// measure, so no decompressor is needed; correctness is defined as
/// producing a valid LZW code stream length (monotone-ish in redundancy).

namespace autodetect {

/// \brief Number of bits a variable-width LZW code stream for `data` would
/// occupy (dictionary starts at 256 single-byte entries, grows unbounded,
/// code width grows with dictionary size).
size_t LzwCompressedBits(std::string_view data);

/// \brief Compressed size in whole bytes (bits rounded up).
size_t LzwCompressedBytes(std::string_view data);

}  // namespace autodetect
