#include "baselines/pwheel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "text/language.h"
#include "text/pattern.h"

namespace autodetect {

namespace {

/// Bits to encode one character drawn from a tree-node class.
double ClassBits(TreeNode node) {
  switch (node) {
    case TreeNode::kLeaf:
      return 0.0;  // fixed by the pattern itself
    case TreeNode::kUpper:
    case TreeNode::kLower:
      return 4.70;  // log2(26)
    case TreeNode::kLetter:
      return 5.70;  // log2(52)
    case TreeNode::kDigit:
      return 3.32;  // log2(10)
    case TreeNode::kSymbol:
      return 5.0;   // ~32 common symbols
    case TreeNode::kAny:
      return 6.57;  // log2(95) printable
  }
  return 8.0;
}

/// A candidate structure: its canonical string, and the cost of encoding a
/// covered value with it.
struct Candidate {
  std::string rendering;
  double pattern_bits;
  bool counts;  ///< run lengths fixed by the pattern (true) or encoded per value
  Pattern proto;
};

/// Granularity levels a la Potter's Wheel structure enumeration.
const GeneralizationLanguage& ClassLang() {
  static const GeneralizationLanguage kLang = [] {
    auto r = GeneralizationLanguage::Make(TreeNode::kLetter, TreeNode::kLetter,
                                          TreeNode::kDigit, TreeNode::kLeaf);
    return *r;
  }();
  return kLang;
}

double ValueBitsUnder(const Pattern& pattern, bool counts, size_t value_len) {
  double bits = 0;
  for (const auto& t : pattern.tokens()) {
    bits += ClassBits(t.node) * t.count;
    if (!counts && t.node != TreeNode::kLeaf) bits += 4.0;  // run length
  }
  (void)value_len;
  return bits;
}

}  // namespace

std::vector<Suspicion> PWheelDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);

  // Enumerate candidate structures from the data: per value, the exact
  // class pattern (with run lengths) and the relaxed one (without).
  struct Group {
    double value_bits_exact;
    std::vector<size_t> members;  // indices into distinct
    uint64_t rows = 0;
  };
  std::map<std::string, Group> exact_groups;   // pattern with counts
  std::map<std::string, Group> relaxed_groups; // pattern runs collapsed

  GeneralizeOptions exact_opts;
  GeneralizeOptions relaxed_opts;
  relaxed_opts.collapse_run_lengths = true;

  for (size_t i = 0; i < distinct.size(); ++i) {
    Pattern p = Pattern::Generalize(distinct[i].value, ClassLang(), exact_opts);
    std::string exact = p.ToString();
    auto& ge = exact_groups[exact];
    if (ge.members.empty()) ge.value_bits_exact = ValueBitsUnder(p, true, 0);
    ge.members.push_back(i);
    ge.rows += distinct[i].count;

    Pattern pr = Pattern::Generalize(distinct[i].value, ClassLang(), relaxed_opts);
    std::string relaxed = pr.ToString();
    auto& gr = relaxed_groups[relaxed];
    if (gr.members.empty()) gr.value_bits_exact = 0;  // computed per value below
    gr.members.push_back(i);
    gr.rows += distinct[i].count;
  }

  // MDL structure choice, Potter's Wheel style: consider keeping the top-k
  // most-frequent structures (by row coverage), encode uncovered values as
  // literals, and pick the k minimizing total description length. Exact and
  // relaxed granularities compete in one pool.
  struct Entry {
    const std::string* rendering;
    uint64_t rows;
    std::vector<size_t> members;
    double per_value_bits;  // average cost of one covered value
    double pattern_bits;
  };
  std::vector<Entry> pool;
  for (const auto& [rendering, g] : exact_groups) {
    pool.push_back(Entry{&rendering, g.rows, g.members, g.value_bits_exact,
                         options_.pattern_overhead_bits +
                             options_.literal_bits * rendering.size()});
  }
  for (const auto& [rendering, g] : relaxed_groups) {
    double avg_bits = 0;
    for (size_t i : g.members) {
      Pattern p = Pattern::Generalize(distinct[i].value, ClassLang(), exact_opts);
      avg_bits += ValueBitsUnder(p, false, distinct[i].value.size());
    }
    avg_bits /= static_cast<double>(g.members.size());
    pool.push_back(Entry{&rendering, g.rows, g.members, avg_bits,
                         options_.pattern_overhead_bits +
                             options_.literal_bits * rendering.size()});
  }
  std::sort(pool.begin(), pool.end(),
            [](const Entry& a, const Entry& b) { return a.rows > b.rows; });

  auto literal_bits = [&](size_t i) {
    return options_.literal_bits * (distinct[i].value.size() + 1) *
           distinct[i].count;
  };

  double best_dl = 0;
  std::vector<char> covered_best(distinct.size(), 0);
  // k = 0: everything literal.
  for (size_t i = 0; i < distinct.size(); ++i) best_dl += literal_bits(i);

  std::vector<char> covered(distinct.size(), 0);
  std::vector<double> enc_bits(distinct.size(), 0);  // bits once covered
  double dl_patterns = 0;
  for (size_t k = 0; k < pool.size() && k < 8; ++k) {
    const Entry& e = pool[k];
    // Adding a pattern: pay its bits; newly covered values switch from
    // literal to pattern encoding at this pattern's rate.
    dl_patterns += e.pattern_bits;
    for (size_t i : e.members) {
      if (!covered[i]) {
        covered[i] = 1;
        enc_bits[i] = e.per_value_bits * distinct[i].count;
      }
    }
    double dl = dl_patterns;
    for (size_t i = 0; i < distinct.size(); ++i) {
      dl += covered[i] ? enc_bits[i] : literal_bits(i);
    }
    if (dl < best_dl) {
      best_dl = dl;
      covered_best = covered;
    }
  }

  uint64_t covered_rows = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    if (covered_best[i]) covered_rows += distinct[i].count;
  }
  double confidence = static_cast<double>(covered_rows) /
                      static_cast<double>(values.size());
  if (confidence >= 1.0) return out;

  for (size_t i = 0; i < distinct.size(); ++i) {
    if (!covered_best[i]) {
      out.push_back(Suspicion{distinct[i].first_row, distinct[i].value, confidence});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

std::vector<std::string> PWheelDetector::InferPatterns(
    const std::vector<std::string>& values) const {
  // Reuse RankColumn's grouping logic cheaply: report the class patterns of
  // values it did NOT flag.
  auto suspicions = RankColumn(values);
  std::unordered_map<std::string_view, bool> flagged;
  for (const auto& s : suspicions) flagged[s.value] = true;
  std::vector<std::string> patterns;
  for (const auto& v : values) {
    if (flagged.count(v)) continue;
    std::string p = baseline_util::ClassPattern(v);
    if (std::find(patterns.begin(), patterns.end(), p) == patterns.end()) {
      patterns.push_back(p);
    }
  }
  return patterns;
}

}  // namespace autodetect
