#pragma once

#include <string>
#include <vector>

#include "baselines/baseline.h"

/// \file dboost.h
/// dBoost baseline [Mariet et al., 2016]: type-specific tuple expansion.
/// Every value is expanded into derived fields (numeric value, integer/
/// fraction digit counts, parsed date parts, string length, character-class
/// shape, ...); per-field distributions over the column are then mined for
/// outliers. A value is suspicious when, for a field whose distribution has
/// a dominant mode (>= theta), the value deviates from that mode; numeric
/// fields additionally use a Gaussian sigma test. Defaults follow the
/// paper's reported setting (theta = 0.8, epsilon = 0.05).

namespace autodetect {

class DBoostDetector final : public ErrorDetectorMethod {
 public:
  struct Options {
    double theta = 0.8;    ///< min mode fraction for a categorical field test
    double epsilon = 0.05; ///< max outlier fraction a test may flag
    double sigmas = 3.0;   ///< numeric deviation threshold
  };

  DBoostDetector() = default;
  explicit DBoostDetector(Options options) : options_(options) {}

  std::string_view name() const override { return "dBoost"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

 private:
  Options options_ = Options();
};

}  // namespace autodetect
