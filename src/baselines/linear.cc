#include "baselines/linear.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace autodetect {

namespace {

/// Character-class bitmask per envelope position.
enum ClassBit : uint8_t {
  kBitUpper = 1,
  kBitLower = 2,
  kBitDigit = 4,
  kBitSymbol = 8,
};

uint8_t BitOf(char c) {
  if (c >= 'A' && c <= 'Z') return kBitUpper;
  if (c >= 'a' && c <= 'z') return kBitLower;
  if (c >= '0' && c <= '9') return kBitDigit;
  return kBitSymbol;
}

/// The running envelope: per-position class masks plus a length range.
struct Envelope {
  std::vector<uint8_t> masks;
  size_t min_len = SIZE_MAX;
  size_t max_len = 0;

  /// Dissimilarity of `s` to the envelope = broadening it would force:
  /// new class bits turned on + length-range extension, normalized.
  double Dissimilarity(const std::string& s) const {
    if (max_len == 0 && min_len == SIZE_MAX) return 0.0;  // empty envelope
    double cost = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      uint8_t bit = BitOf(s[i]);
      if (i >= masks.size()) {
        cost += 1.0;  // beyond any seen length
      } else if (!(masks[i] & bit)) {
        cost += 1.0;  // new class at this position
      }
    }
    if (s.size() < min_len) cost += static_cast<double>(min_len - s.size()) * 0.5;
    double denom = static_cast<double>(std::max(s.size(), max_len));
    return denom > 0 ? cost / denom : 0.0;
  }

  void Absorb(const std::string& s) {
    if (s.size() > masks.size()) masks.resize(s.size(), 0);
    for (size_t i = 0; i < s.size(); ++i) masks[i] |= BitOf(s[i]);
    min_len = std::min(min_len, s.size());
    max_len = std::max(max_len, s.size());
  }
};

}  // namespace

std::vector<Suspicion> LinearDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);

  std::vector<std::string> repr;
  repr.reserve(distinct.size());
  for (const auto& d : distinct) {
    repr.push_back(generalize_first() ? baseline_util::ClassPattern(d.value)
                                      : d.value);
  }

  // Two passes, KDD'96 style: build the envelope on the first pass (order
  // sensitivity is reduced by absorbing the most frequent value first),
  // then score each value by the broadening it forces on an envelope built
  // from everything else. We approximate leave-one-out by weighting: a
  // value absorbed only by itself still reports its dissimilarity to the
  // pre-absorption envelope.
  std::vector<size_t> order(distinct.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return distinct[a].count > distinct[b].count;
  });

  Envelope env;
  std::vector<double> dissim(distinct.size(), 0.0);
  for (size_t oi : order) {
    dissim[oi] = env.Dissimilarity(repr[oi]);
    env.Absorb(repr[oi]);
  }

  for (size_t i = 0; i < distinct.size(); ++i) {
    if (dissim[i] > 0) {
      out.push_back(Suspicion{distinct[i].first_row, distinct[i].value, dissim[i]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
