#include "baselines/distance_outliers.h"

#include <algorithm>
#include <cmath>

#include "text/language.h"

namespace autodetect {

namespace {
const GeneralizationLanguage& ClassLang() {
  static const GeneralizationLanguage kLang = [] {
    auto r = GeneralizationLanguage::Make(TreeNode::kLetter, TreeNode::kLetter,
                                          TreeNode::kDigit, TreeNode::kLeaf);
    return *r;
  }();
  return kLang;
}
}  // namespace

PatternDistanceBase::ColumnGeometry PatternDistanceBase::ComputeGeometry(
    const std::vector<std::string>& values) {
  ColumnGeometry g;
  g.distinct = baseline_util::DistinctWithCounts(values);
  const size_t d = g.distinct.size();
  g.patterns.reserve(d);
  for (const auto& v : g.distinct) {
    g.patterns.push_back(Pattern::Generalize(v.value, ClassLang()));
  }
  g.distance.assign(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) {
      double dist = NormalizedPatternDistance(g.patterns[i], g.patterns[j]);
      g.distance[i * d + j] = dist;
      g.distance[j * d + i] = dist;
    }
  }
  return g;
}

std::vector<Suspicion> SvddDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  ColumnGeometry g = ComputeGeometry(values);
  const size_t d = g.distinct.size();
  if (d < 2) return out;

  // 1-center approximation of the minimum describing ball: the row-weighted
  // medoid. Radius chosen to cover ~80% of rows (the SVDD description-cost
  // trade-off; with the small columns typical of tables a higher quantile
  // would swallow the outliers into the ball).
  size_t medoid = 0;
  double best_cost = 1e18;
  for (size_t i = 0; i < d; ++i) {
    double cost = 0;
    for (size_t j = 0; j < d; ++j) cost += g.D(i, j) * g.distinct[j].count;
    if (cost < best_cost) {
      best_cost = cost;
      medoid = i;
    }
  }

  std::vector<std::pair<double, size_t>> by_distance;
  for (size_t i = 0; i < d; ++i) by_distance.emplace_back(g.D(medoid, i), i);
  std::sort(by_distance.begin(), by_distance.end());
  uint64_t total_rows = values.size();
  uint64_t covered = 0;
  double radius = 0;
  for (const auto& [dist, i] : by_distance) {
    if (static_cast<double>(covered) >= 0.8 * static_cast<double>(total_rows)) break;
    radius = dist;
    covered += g.distinct[i].count;
  }

  for (size_t i = 0; i < d; ++i) {
    double beyond = g.D(medoid, i) - radius;
    if (beyond > 1e-9) {
      out.push_back(Suspicion{g.distinct[i].first_row, g.distinct[i].value, beyond});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

std::vector<Suspicion> DbodDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  ColumnGeometry g = ComputeGeometry(values);
  const size_t d = g.distinct.size();
  if (d < 2) return out;

  for (size_t i = 0; i < d; ++i) {
    // Nearest neighbor among other rows; duplicate rows of the same value
    // are distance-0 neighbors, so only distinct values with count 1 can be
    // outliers (as in the original definition over points).
    double nn = 1e18;
    if (g.distinct[i].count > 1) nn = 0.0;
    for (size_t j = 0; j < d && nn > 0; ++j) {
      if (j != i) nn = std::min(nn, g.D(i, j));
    }
    if (nn > threshold_) {
      out.push_back(Suspicion{g.distinct[i].first_row, g.distinct[i].value, nn});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

std::vector<Suspicion> LofDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 4) return out;
  ColumnGeometry g = ComputeGeometry(values);
  const size_t d = g.distinct.size();
  if (d < 3) return out;

  // Expand distinct values by their multiplicity logically: a value with
  // count c contributes c identical points. k-distance over points then
  // reaches into other distinct values only when c <= k.
  const size_t k = k_;
  auto k_distance = [&](size_t i) {
    // Collect distances to all other points (duplicates at distance 0).
    std::vector<std::pair<double, size_t>> dists;  // (distance, point count)
    if (g.distinct[i].count > 1) dists.emplace_back(0.0, g.distinct[i].count - 1);
    for (size_t j = 0; j < d; ++j) {
      if (j != i) dists.emplace_back(g.D(i, j), g.distinct[j].count);
    }
    std::sort(dists.begin(), dists.end());
    size_t seen = 0;
    for (const auto& [dist, c] : dists) {
      seen += c;
      if (seen >= k) return dist;
    }
    return dists.empty() ? 0.0 : dists.back().first;
  };

  std::vector<double> kdist(d);
  for (size_t i = 0; i < d; ++i) kdist[i] = k_distance(i);

  // Local reachability density and LOF over distinct values (row-weighted).
  auto lrd = [&](size_t i) {
    double reach_sum = 0;
    size_t seen = 0;
    std::vector<std::pair<double, size_t>> dists;
    if (g.distinct[i].count > 1) dists.emplace_back(0.0, i);
    for (size_t j = 0; j < d; ++j) {
      if (j != i) dists.emplace_back(g.D(i, j), j);
    }
    std::sort(dists.begin(), dists.end());
    for (const auto& [dist, j] : dists) {
      size_t c = (j == i) ? g.distinct[i].count - 1 : g.distinct[j].count;
      size_t take = std::min(c, k - std::min(k, seen));
      if (take == 0) break;
      reach_sum += static_cast<double>(take) * std::max(dist, kdist[j]);
      seen += take;
      if (seen >= k) break;
    }
    if (seen == 0 || reach_sum <= 1e-12) return 1e6;  // infinitely dense
    return static_cast<double>(seen) / reach_sum;
  };

  std::vector<double> density(d);
  for (size_t i = 0; i < d; ++i) density[i] = lrd(i);

  for (size_t i = 0; i < d; ++i) {
    // LOF = mean neighbor density / own density.
    double neighbor_density = 0;
    size_t seen = 0;
    std::vector<std::pair<double, size_t>> dists;
    if (g.distinct[i].count > 1) dists.emplace_back(0.0, i);
    for (size_t j = 0; j < d; ++j) {
      if (j != i) dists.emplace_back(g.D(i, j), j);
    }
    std::sort(dists.begin(), dists.end());
    for (const auto& [dist, j] : dists) {
      size_t c = (j == i) ? g.distinct[i].count - 1 : g.distinct[j].count;
      size_t take = std::min(c, k - std::min(k, seen));
      if (take == 0) break;
      neighbor_density += static_cast<double>(take) * density[j];
      seen += take;
      if (seen >= k) break;
    }
    if (seen == 0 || density[i] <= 0) continue;
    double lof = (neighbor_density / static_cast<double>(seen)) / density[i];
    if (lof > 1.2) {
      out.push_back(Suspicion{g.distinct[i].first_row, g.distinct[i].value, lof});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
