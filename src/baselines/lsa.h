#pragma once

#include "baselines/baseline.h"

/// \file lsa.h
/// LSA baseline [He, Deng & Xu, 2005]: entropy-based local search. Outliers
/// are the values whose removal most reduces the entropy of the column's
/// pattern distribution; values are removed greedily and ranked by the
/// entropy reduction they yield.

namespace autodetect {

class LsaDetector final : public ErrorDetectorMethod {
 public:
  std::string_view name() const override { return "LSA"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

  /// Max fraction of rows the local search may remove.
  static constexpr double kMaxRemovalFraction = 0.3;
};

}  // namespace autodetect
