#include "baselines/union_method.h"

#include <algorithm>
#include <map>

namespace autodetect {

std::vector<Suspicion> UnionDetector::RankColumn(
    const std::vector<std::string>& values) const {
  // The pooled score rewards agreement: a value's score is dominated by the
  // fraction of constituent methods that flag it at all (the paper's Union
  // takes each method at a comparable precision level; consensus is the
  // label-free analogue), with the best rank-normalized position as a
  // tiebreak. A value flagged by one eccentric method scores low.
  struct Agg {
    Suspicion suspicion;
    size_t votes = 0;
    double best_rank_score = 0;
  };
  std::map<std::string, Agg> pool;
  for (const ErrorDetectorMethod* m : methods_) {
    std::vector<Suspicion> predictions = m->RankColumn(values);
    if (predictions.empty()) continue;
    const double n = static_cast<double>(predictions.size());
    for (size_t r = 0; r < predictions.size(); ++r) {
      double rank_score = 1.0 - static_cast<double>(r) / std::max(1.0, n);
      Agg& agg = pool[predictions[r].value];
      if (agg.votes == 0) agg.suspicion = predictions[r];
      ++agg.votes;
      agg.best_rank_score = std::max(agg.best_rank_score, rank_score);
    }
  }
  std::vector<Suspicion> out;
  out.reserve(pool.size());
  const double denom = static_cast<double>(std::max<size_t>(1, methods_.size()));
  for (auto& [_, agg] : pool) {
    Suspicion s = std::move(agg.suspicion);
    s.score = static_cast<double>(agg.votes) / denom +
              0.001 * agg.best_rank_score;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
