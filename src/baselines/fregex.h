#pragma once

#include <regex>
#include <string>
#include <vector>

#include "baselines/baseline.h"

/// \file fregex.h
/// F-Regex baseline (paper Sec. 4.2): the commercial-system recipe of
/// predefined per-type regexes (Trifacta/Power BI style, Appendix A). A
/// column is assigned the known data type matching the largest fraction of
/// its values; the non-conforming values are flagged, ranked by the
/// conforming fraction (the method's confidence).

namespace autodetect {

/// One built-in data type.
struct RegexType {
  std::string name;
  std::regex pattern;
};

class FRegexDetector final : public ErrorDetectorMethod {
 public:
  FRegexDetector();

  std::string_view name() const override { return "F-Regex"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

  /// The built-in type library (exposed for tests).
  const std::vector<RegexType>& types() const { return types_; }

  /// Minimum conforming fraction for a type to be assigned at all.
  static constexpr double kMinTypeFraction = 0.6;

 private:
  std::vector<RegexType> types_;
};

}  // namespace autodetect
