#pragma once

#include "baselines/baseline.h"

/// \file cdm.h
/// Compression-based dissimilarity measure baseline [Keogh et al., KDD'04]:
/// CDM(x, y) = C(xy) / (C(x) + C(y)) with an off-the-shelf compressor (here
/// a from-scratch LZW). Values are first generalized to class patterns as
/// the paper does; each value is ranked by its average CDM distance to the
/// rest of the column (higher = more dissimilar = more suspicious).

namespace autodetect {

class CdmDetector final : public ErrorDetectorMethod {
 public:
  std::string_view name() const override { return "CDM"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

  /// CDM distance between two raw strings (exposed for tests).
  static double Distance(std::string_view x, std::string_view y);
};

}  // namespace autodetect
