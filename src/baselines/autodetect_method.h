#pragma once

#include "baselines/baseline.h"
#include "detect/detector.h"

/// \file autodetect_method.h
/// Adapter exposing the trained Auto-Detect detector through the common
/// ErrorDetectorMethod interface so the evaluation harness and benches can
/// compare it head-to-head with the baselines.

namespace autodetect {

class AutoDetectMethod final : public ErrorDetectorMethod {
 public:
  /// \param detector not owned; must outlive this adapter.
  explicit AutoDetectMethod(const Detector* detector,
                            std::string_view display_name = "Auto-Detect")
      : detector_(detector), name_(display_name) {}

  std::string_view name() const override { return name_; }

  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override {
    DetectRequest request;
    request.values = values;
    request.context.tag = "baseline";
    ColumnReport report = detector_->Detect(request).column;
    std::vector<Suspicion> out;
    out.reserve(report.cells.size());
    for (const auto& cell : report.cells) {
      // Primary signal is the estimated precision; a small bonus for the
      // number of clashing partners breaks ties among equal-confidence
      // predictions (a value incompatible with 20 others outranks one
      // incompatible with a single other value).
      double degree_bonus =
          0.0005 * (static_cast<double>(cell.incompatible_with) /
                    (static_cast<double>(cell.incompatible_with) + 8.0));
      out.push_back(Suspicion{cell.row, cell.value, cell.confidence + degree_bonus});
    }
    return out;
  }

 private:
  const Detector* detector_;
  std::string_view name_;
};

}  // namespace autodetect
