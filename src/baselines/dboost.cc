#include "baselines/dboost.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>

#include "common/string_util.h"

namespace autodetect {

namespace {

/// The tuple expansion of one value.
struct Expansion {
  // Categorical fields (string-valued).
  std::string shape;          ///< character-class skeleton, run-collapsed
  std::string symbols;        ///< just the symbols, in order
  int length;
  int digit_count;
  int letter_count;
  // Numeric expansion, when the value parses as a number.
  std::optional<double> numeric;
  std::optional<int> fraction_digits;
  // Date expansion, when the value parses as a date.
  std::optional<int> year, month, day;
};

Expansion Expand(const std::string& v) {
  Expansion e;
  e.length = static_cast<int>(v.size());
  e.digit_count = 0;
  e.letter_count = 0;
  char prev_class = 0;
  for (char c : v) {
    char cls;
    if (c >= '0' && c <= '9') {
      cls = 'D';
      ++e.digit_count;
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
      cls = 'L';
      ++e.letter_count;
    } else {
      cls = c;
      e.symbols.push_back(c);
    }
    if (cls != prev_class || (cls != 'D' && cls != 'L')) e.shape.push_back(cls);
    prev_class = cls;
  }

  // Numeric parse (tolerating one thousand-separator style).
  {
    std::string stripped;
    bool ok = !v.empty();
    int dots = 0;
    for (char c : v) {
      if (c == ',') continue;
      if (c == '.') ++dots;
      if (!((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+')) {
        ok = false;
        break;
      }
      stripped.push_back(c);
    }
    if (ok && dots <= 1 && !stripped.empty()) {
      char* end = nullptr;
      double parsed = std::strtod(stripped.c_str(), &end);
      if (end && *end == '\0') {
        e.numeric = parsed;
        size_t dot = stripped.find('.');
        e.fraction_digits =
            dot == std::string::npos ? 0 : static_cast<int>(stripped.size() - dot - 1);
      }
    }
  }

  // Date parse: "dddd<s>dd<s>dd" or "dd<s>dd<s>dddd" with s in {-, /, .}.
  {
    auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
    for (char sep : {'-', '/', '.'}) {
      std::vector<std::string> parts = Split(v, sep);
      if (parts.size() != 3) continue;
      bool all_digits = true;
      for (const auto& p : parts) {
        if (p.empty() || !IsAllDigits(p)) all_digits = false;
      }
      (void)is_digit;
      if (!all_digits) continue;
      int a = std::atoi(parts[0].c_str()), b = std::atoi(parts[1].c_str()),
          c = std::atoi(parts[2].c_str());
      if (parts[0].size() == 4) {
        e.year = a;
        e.month = b;
        e.day = c;
      } else if (parts[2].size() == 4) {
        e.year = c;
        e.month = a;
        e.day = b;
      }
      break;
    }
  }
  return e;
}

}  // namespace

std::vector<Suspicion> DBoostDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  const size_t n = values.size();
  if (n < 4) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);

  std::vector<Expansion> exp;
  exp.reserve(distinct.size());
  for (const auto& d : distinct) exp.push_back(Expand(d.value));

  // score[i] accumulates the strongest deviation seen across fields.
  std::vector<double> score(distinct.size(), 0.0);

  // Categorical field test: if one field value holds >= theta of rows,
  // deviants are outliers (provided they are <= epsilon of rows).
  auto categorical_test = [&](auto field_of, double weight) {
    std::map<std::string, uint64_t> histogram;
    for (size_t i = 0; i < distinct.size(); ++i) {
      histogram[field_of(exp[i])] += distinct[i].count;
    }
    std::string mode;
    uint64_t mode_rows = 0;
    for (const auto& [k, c] : histogram) {
      if (c > mode_rows) {
        mode_rows = c;
        mode = k;
      }
    }
    double mode_fraction = static_cast<double>(mode_rows) / static_cast<double>(n);
    if (mode_fraction < options_.theta) return;
    uint64_t deviant_rows = n - mode_rows;
    if (static_cast<double>(deviant_rows) > options_.epsilon * static_cast<double>(n) &&
        deviant_rows > 1) {
      return;  // too many deviants for a confident test
    }
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (field_of(exp[i]) != mode) {
        score[i] = std::max(score[i], weight * mode_fraction);
      }
    }
  };

  categorical_test([](const Expansion& e) { return e.shape; }, 1.0);
  categorical_test([](const Expansion& e) { return e.symbols; }, 0.95);
  categorical_test(
      [](const Expansion& e) {
        return e.fraction_digits ? std::to_string(*e.fraction_digits) : std::string("x");
      },
      0.9);
  categorical_test(
      [](const Expansion& e) { return std::to_string(e.length); }, 0.6);

  // Numeric sigma test on the parsed values (only when the column is
  // essentially numeric).
  {
    uint64_t numeric_rows = 0;
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (exp[i].numeric) numeric_rows += distinct[i].count;
    }
    if (static_cast<double>(numeric_rows) >= 0.9 * static_cast<double>(n)) {
      double mean = 0, m2 = 0, w = 0;
      for (size_t i = 0; i < distinct.size(); ++i) {
        if (!exp[i].numeric) continue;
        double x = *exp[i].numeric, cw = distinct[i].count;
        w += cw;
        double delta = x - mean;
        mean += delta * cw / w;
        m2 += cw * delta * (x - mean);
      }
      double stddev = w > 1 ? std::sqrt(m2 / (w - 1)) : 0;
      if (stddev > 0) {
        for (size_t i = 0; i < distinct.size(); ++i) {
          if (!exp[i].numeric) continue;
          double z = std::fabs(*exp[i].numeric - mean) / stddev;
          if (z > options_.sigmas) {
            score[i] = std::max(score[i], 0.5 + 0.1 * std::min(z - options_.sigmas, 4.0));
          }
        }
      }
    }
  }

  // Date sub-field plausibility.
  for (size_t i = 0; i < distinct.size(); ++i) {
    if (exp[i].month && (*exp[i].month < 1 || *exp[i].month > 12)) {
      score[i] = std::max(score[i], 0.9);
    }
    if (exp[i].day && (*exp[i].day < 1 || *exp[i].day > 31)) {
      score[i] = std::max(score[i], 0.9);
    }
  }

  for (size_t i = 0; i < distinct.size(); ++i) {
    if (score[i] > 0) {
      out.push_back(Suspicion{distinct[i].first_row, distinct[i].value, score[i]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
