#include "baselines/lsa.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace autodetect {

namespace {

double Entropy(const std::map<std::string, uint64_t>& histogram, uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0;
  for (const auto& [_, c] : histogram) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

std::vector<Suspicion> LsaDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);
  if (distinct.size() < 2) return out;

  std::vector<std::string> patterns;
  patterns.reserve(distinct.size());
  for (const auto& d : distinct) {
    patterns.push_back(baseline_util::ClassPattern(d.value));
  }

  std::map<std::string, uint64_t> histogram;
  uint64_t total = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    histogram[patterns[i]] += distinct[i].count;
    total += distinct[i].count;
  }

  // Greedy local search: repeatedly remove the distinct value whose removal
  // reduces entropy the most, until no removal reduces entropy or the
  // removal budget is spent.
  std::vector<char> removed(distinct.size(), 0);
  uint64_t removed_rows = 0;
  const uint64_t budget =
      static_cast<uint64_t>(kMaxRemovalFraction * static_cast<double>(total));

  while (true) {
    double current = Entropy(histogram, total - removed_rows);
    double best_reduction = 1e-12;
    size_t best = distinct.size();
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (removed[i]) continue;
      if (removed_rows + distinct[i].count > budget) continue;
      auto it = histogram.find(patterns[i]);
      uint64_t before = it->second;
      it->second -= distinct[i].count;
      double h = Entropy(histogram, total - removed_rows - distinct[i].count);
      it->second = before;
      double reduction = current - h;
      if (reduction > best_reduction) {
        best_reduction = reduction;
        best = i;
      }
    }
    if (best == distinct.size()) break;
    removed[best] = 1;
    removed_rows += distinct[best].count;
    histogram[patterns[best]] -= distinct[best].count;
    out.push_back(
        Suspicion{distinct[best].first_row, distinct[best].value, best_reduction});
  }

  // Already in removal order = decreasing contribution; make scores
  // monotone for cross-column ranking by normalizing to the column entropy.
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
