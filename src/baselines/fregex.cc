#include "baselines/fregex.h"

#include <algorithm>

namespace autodetect {

FRegexDetector::FRegexDetector() {
  auto add = [this](const char* name, const char* re) {
    types_.push_back(RegexType{name, std::regex(re, std::regex::optimize)});
  };
  // The ~20-type library mirrors the published Trifacta/Power BI type lists
  // (paper Appendix A): numbers, dates/times, and common entity formats.
  add("integer", R"(^[+-]?\d+$)");
  add("decimal", R"(^[+-]?\d+\.\d+$)");
  add("number_separated", R"(^[+-]?\d{1,3}(,\d{3})+(\.\d+)?$)");
  add("percent", R"(^\d+(\.\d+)?%$)");
  add("currency", R"(^[$£€]\s?\d{1,3}(,?\d{3})*(\.\d{2})?$)");
  add("scientific", R"(^[+-]?\d+(\.\d+)?[eE][+-]?\d+$)");
  add("year", R"(^(1[6-9]|20)\d{2}$)");
  add("date_iso", R"(^\d{4}-\d{2}-\d{2}$)");
  add("date_slash", R"(^\d{1,4}/\d{1,2}/\d{1,4}$)");
  add("date_dotted", R"(^\d{1,4}\.\d{1,2}\.\d{1,4}$)");
  add("date_long", R"(^[A-Z][a-z]+ \d{1,2}, \d{4}$)");
  add("time", R"(^\d{1,2}:\d{2}(:\d{2})?$)");
  add("email", R"(^[\w.+-]+@[\w-]+(\.[\w-]+)+$)");
  add("url", R"(^https?://[\w.-]+(/[\w./-]*)?$)");
  add("ip_address", R"(^(\d{1,3}\.){3}\d{1,3}$)");
  add("phone_us", R"(^(\+1[ .-]?)?(\(\d{3}\)[ ]?|\d{3}[ .-])\d{3}[ .-]\d{4}$)");
  add("zip_code", R"(^\d{5}(-\d{4})?$)");
  add("boolean", R"(^([Yy]es|[Nn]o|TRUE|FALSE|[YN])$)");
  add("word", R"(^[A-Za-z]+$)");
  add("proper_phrase", R"(^[A-Z][a-z]+( [A-Za-z]+)*$)");
}

std::vector<Suspicion> FRegexDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);

  // Pick the type with the largest conforming row fraction.
  const RegexType* best_type = nullptr;
  double best_fraction = 0;
  std::vector<char> best_match;  // per distinct value
  std::vector<char> match(distinct.size());
  for (const auto& type : types_) {
    size_t conforming_rows = 0;
    for (size_t i = 0; i < distinct.size(); ++i) {
      match[i] = std::regex_match(distinct[i].value, type.pattern) ? 1 : 0;
      if (match[i]) conforming_rows += distinct[i].count;
    }
    double fraction = static_cast<double>(conforming_rows) /
                      static_cast<double>(values.size());
    if (fraction > best_fraction) {
      best_fraction = fraction;
      best_type = &type;
      best_match = match;
    }
  }
  if (best_type == nullptr || best_fraction < kMinTypeFraction ||
      best_fraction >= 1.0) {
    return out;  // untyped column, or fully conforming
  }
  for (size_t i = 0; i < distinct.size(); ++i) {
    if (!best_match[i]) {
      out.push_back(
          Suspicion{distinct[i].first_row, distinct[i].value, best_fraction});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
