#pragma once

#include <string>
#include <vector>

#include "baselines/baseline.h"

/// \file linear.h
/// Linear baseline [Arning, Agrawal & Raghavan, KDD'96]: a linear-complexity
/// deviation detector. It scans the column once while maintaining a running
/// regex-like envelope (per-position union of character classes, broadened
/// as values arrive); each value's dissimilarity is the amount of broadening
/// it forces. LinearP is the paper's variant that first generalizes values
/// with the generalization tree, which substantially improves it.

namespace autodetect {

class LinearDetector : public ErrorDetectorMethod {
 public:
  LinearDetector() = default;

  std::string_view name() const override { return "Linear"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

 protected:
  /// When true, values are pre-generalized to class patterns (LinearP).
  virtual bool generalize_first() const { return false; }
};

class LinearPDetector final : public LinearDetector {
 public:
  std::string_view name() const override { return "LinearP"; }

 protected:
  bool generalize_first() const override { return true; }
};

}  // namespace autodetect
