#pragma once

#include <string>
#include <vector>

#include "baselines/baseline.h"

/// \file pwheel.h
/// Potter's Wheel baseline [Raman & Hellerstein, VLDB'01]: infer the column
/// structure by minimum description length over candidate patterns, then
/// flag values the chosen patterns do not cover. This is the flagship
/// "local" method the paper contrasts with — it sees only the input column,
/// so skewed local format mixtures (Col-1/Col-2) mislead it by design.

namespace autodetect {

class PWheelDetector final : public ErrorDetectorMethod {
 public:
  struct Options {
    /// Description-length cost in bits of one literal character.
    double literal_bits = 8.0;
    /// Overhead bits charged per pattern kept in the structure.
    double pattern_overhead_bits = 16.0;
  };

  PWheelDetector() = default;
  explicit PWheelDetector(Options options) : options_(options) {}

  std::string_view name() const override { return "PWheel"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

  /// \brief The inferred MDL-optimal pattern set (exposed for tests).
  std::vector<std::string> InferPatterns(const std::vector<std::string>& values) const;

 private:
  Options options_ = Options();
};

}  // namespace autodetect
