#pragma once

#include <memory>
#include <vector>

#include "baselines/baseline.h"

/// \file union_method.h
/// The "Union" comparison point of paper Sec. 4.2: pools the predictions of
/// all constituent baselines. Each constituent's scores are rank-normalized
/// into [0, 1] within the column; a value's union score is the maximum over
/// constituents, so any single confident method can surface a value.

namespace autodetect {

class UnionDetector final : public ErrorDetectorMethod {
 public:
  /// \param methods constituents; not owned, must outlive the detector.
  explicit UnionDetector(std::vector<const ErrorDetectorMethod*> methods)
      : methods_(std::move(methods)) {}

  std::string_view name() const override { return "Union"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

 private:
  std::vector<const ErrorDetectorMethod*> methods_;
};

}  // namespace autodetect
