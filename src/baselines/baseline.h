#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file baseline.h
/// Common interface for all single-column error-detection methods compared
/// in the paper's evaluation (Sec. 4.2): given one column, return suspected
/// error cells ranked by a confidence score that is comparable across
/// columns (the evaluation pools predictions from many columns and ranks
/// them globally for Precision@K).

namespace autodetect {

/// One suspected-error prediction inside a column.
struct Suspicion {
  uint32_t row = 0;      ///< first row holding the suspicious value
  std::string value;
  /// Higher = more confidently an error. Must be comparable across columns
  /// for a given method.
  double score = 0.0;
};

class ErrorDetectorMethod {
 public:
  virtual ~ErrorDetectorMethod() = default;

  /// Display name used in benches ("PWheel", "dBoost", ...).
  virtual std::string_view name() const = 0;

  /// \brief Ranks suspected error values in `values`, most suspicious
  /// first. May be empty. Implementations must be deterministic.
  virtual std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const = 0;
};

/// Shared helpers for pattern-based baselines.
namespace baseline_util {

/// \brief Class-level generalized pattern with run lengths (the "standard
/// generalization" the paper applies before running LinearP/CDM/LSA/etc.),
/// e.g. "2011-01-01" -> "\D[4]-\D[2]-\D[2]".
std::string ClassPattern(std::string_view value);

/// \brief Distinct values in first-seen order with their occurrence counts
/// and first rows.
struct DistinctValue {
  std::string value;
  uint32_t first_row;
  uint32_t count;
};
std::vector<DistinctValue> DistinctWithCounts(const std::vector<std::string>& values);

}  // namespace baseline_util
}  // namespace autodetect
