#pragma once

#include <vector>

#include "baselines/baseline.h"
#include "text/pattern_distance.h"

/// \file distance_outliers.h
/// The three distance-based outlier baselines of the paper's comparison,
/// all operating on the alignment-style pattern distance of TEGRA
/// (pattern_distance.h):
///
///  * SVDD  [Tax & Duin, 2004] — describe the column by a minimum ball
///    around its patterns; rank by distance beyond the ball.
///  * DBOD  [Knox & Ng, VLDB'98] — distance-based outliers: rank by the
///    distance to the nearest (row-weighted) neighbor.
///  * LOF   [Breunig et al., SIGMOD'00] — local outlier factor: rank by the
///    ratio of a point's density to its neighbors' densities.

namespace autodetect {

/// Shared precomputation: distinct values, their patterns and the pairwise
/// distance matrix.
class PatternDistanceBase : public ErrorDetectorMethod {
 protected:
  struct ColumnGeometry {
    std::vector<baseline_util::DistinctValue> distinct;
    std::vector<Pattern> patterns;
    /// Row-major distinct x distinct normalized distances.
    std::vector<double> distance;
    double D(size_t i, size_t j) const { return distance[i * patterns.size() + j]; }
  };
  static ColumnGeometry ComputeGeometry(const std::vector<std::string>& values);
};

class SvddDetector final : public PatternDistanceBase {
 public:
  std::string_view name() const override { return "SVDD"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;
};

class DbodDetector final : public PatternDistanceBase {
 public:
  /// \param threshold the D of Knox & Ng: min NN-distance to be an outlier.
  explicit DbodDetector(double threshold = 0.3) : threshold_(threshold) {}

  std::string_view name() const override { return "DBOD"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

 private:
  double threshold_;
};

class LofDetector final : public PatternDistanceBase {
 public:
  explicit LofDetector(size_t k = 3) : k_(k) {}

  std::string_view name() const override { return "LOF"; }
  std::vector<Suspicion> RankColumn(
      const std::vector<std::string>& values) const override;

 private:
  size_t k_;
};

}  // namespace autodetect
