#include "baselines/cdm.h"

#include <algorithm>

#include "baselines/lzw.h"

namespace autodetect {

double CdmDetector::Distance(std::string_view x, std::string_view y) {
  size_t cx = LzwCompressedBits(x);
  size_t cy = LzwCompressedBits(y);
  if (cx + cy == 0) return 0.0;
  std::string xy;
  xy.reserve(x.size() + y.size());
  xy.append(x);
  xy.append(y);
  return static_cast<double>(LzwCompressedBits(xy)) / static_cast<double>(cx + cy);
}

std::vector<Suspicion> CdmDetector::RankColumn(
    const std::vector<std::string>& values) const {
  std::vector<Suspicion> out;
  if (values.size() < 3) return out;
  auto distinct = baseline_util::DistinctWithCounts(values);
  if (distinct.size() < 2) return out;

  std::vector<std::string> patterns;
  patterns.reserve(distinct.size());
  for (const auto& d : distinct) {
    patterns.push_back(baseline_util::ClassPattern(d.value));
  }

  // Average row-weighted CDM distance of each distinct value to the others.
  // CDM hovers around ~0.5 for redundant (similar) pairs and approaches 1
  // for unrelated ones; the mean cleanly separates a lone misfit.
  const size_t d = distinct.size();
  std::vector<double> mean_distance(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    double total = 0, weight = 0;
    for (size_t j = 0; j < d; ++j) {
      if (i == j) continue;
      double w = distinct[j].count;
      total += Distance(patterns[i], patterns[j]) * w;
      weight += w;
    }
    mean_distance[i] = weight > 0 ? total / weight : 0.0;
  }

  // Report values whose mean distance clearly exceeds the column's median.
  std::vector<double> sorted = mean_distance;
  std::sort(sorted.begin(), sorted.end());
  double median = sorted[sorted.size() / 2];

  for (size_t i = 0; i < d; ++i) {
    if (mean_distance[i] > median + 0.05) {
      out.push_back(
          Suspicion{distinct[i].first_row, distinct[i].value, mean_distance[i]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suspicion& a, const Suspicion& b) { return a.score > b.score; });
  return out;
}

}  // namespace autodetect
