#include "baselines/baseline.h"

#include <unordered_map>

#include "text/language.h"
#include "text/pattern.h"

namespace autodetect {
namespace baseline_util {

std::string ClassPattern(std::string_view value) {
  // Letters -> \L, digits -> \D, symbols kept at leaves: fine enough to see
  // format structure, coarse enough to merge values of one format.
  static const GeneralizationLanguage kLang = [] {
    auto r = GeneralizationLanguage::Make(TreeNode::kLetter, TreeNode::kLetter,
                                          TreeNode::kDigit, TreeNode::kLeaf);
    return *r;
  }();
  return GeneralizeToString(value, kLang);
}

std::vector<DistinctValue> DistinctWithCounts(const std::vector<std::string>& values) {
  std::vector<DistinctValue> out;
  std::unordered_map<std::string_view, size_t> index;
  for (size_t r = 0; r < values.size(); ++r) {
    auto it = index.find(values[r]);
    if (it == index.end()) {
      index.emplace(values[r], out.size());
      out.push_back(DistinctValue{values[r], static_cast<uint32_t>(r), 1});
    } else {
      ++out[it->second].count;
    }
  }
  return out;
}

}  // namespace baseline_util
}  // namespace autodetect
