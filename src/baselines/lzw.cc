#include "baselines/lzw.h"

#include <string>
#include <unordered_map>

namespace autodetect {

size_t LzwCompressedBits(std::string_view data) {
  if (data.empty()) return 0;
  std::unordered_map<std::string, uint32_t> dict;
  dict.reserve(256 + data.size());
  for (int c = 0; c < 256; ++c) {
    dict.emplace(std::string(1, static_cast<char>(c)), static_cast<uint32_t>(c));
  }
  uint32_t next_code = 256;
  int code_bits = 9;  // 256 entries need 9 bits once we emit any code
  size_t total_bits = 0;

  std::string w;
  for (char c : data) {
    std::string wc = w + c;
    if (dict.count(wc)) {
      w = std::move(wc);
    } else {
      total_bits += static_cast<size_t>(code_bits);
      dict.emplace(std::move(wc), next_code++);
      while ((1u << code_bits) < next_code) ++code_bits;
      w.assign(1, c);
    }
  }
  if (!w.empty()) total_bits += static_cast<size_t>(code_bits);
  return total_bits;
}

size_t LzwCompressedBytes(std::string_view data) {
  return (LzwCompressedBits(data) + 7) / 8;
}

}  // namespace autodetect
