#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

/// \file trace.h
/// RAII stage timing on top of the metrics registry. A StageTimer binds to a
/// pre-resolved Histogram* and records elapsed microseconds on destruction —
/// the hot-path shape (two clock reads per scope, no name lookup). TraceSpan
/// resolves its histogram by name per use — the convenience shape for cold
/// paths like training stages.
///
/// Under AUTODETECT_NO_METRICS both are empty structs: no clock reads, no
/// stores, and the optimizer erases the scope entirely.

namespace autodetect {

#ifndef AUTODETECT_NO_METRICS

/// Times one scope into a pre-resolved histogram (microseconds). Pass null
/// to disable dynamically (e.g. metrics-free test paths).
class StageTimer {
 public:
  explicit StageTimer(Histogram* histogram)
      : histogram_(histogram),
        start_(histogram != nullptr ? Clock::now() : Clock::time_point()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }

  /// \brief Microseconds since construction (also usable mid-scope).
  uint64_t ElapsedMicros() const {
    if (histogram_ == nullptr) return 0;
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     Clock::now() - start_)
                                     .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

/// Times one scope into `registry`'s histogram named `stage` (microseconds),
/// resolving the name at construction. Cold paths only.
class TraceSpan {
 public:
  TraceSpan(MetricsRegistry* registry, const char* stage)
      : timer_(OrDefaultRegistry(registry)->GetHistogram(stage)) {}

  uint64_t ElapsedMicros() const { return timer_.ElapsedMicros(); }

 private:
  StageTimer timer_;
};

#else  // AUTODETECT_NO_METRICS

class StageTimer {
 public:
  explicit StageTimer(Histogram*) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  uint64_t ElapsedMicros() const { return 0; }
};

class TraceSpan {
 public:
  TraceSpan(MetricsRegistry*, const char*) {}
  uint64_t ElapsedMicros() const { return 0; }
};

#endif  // AUTODETECT_NO_METRICS

}  // namespace autodetect
