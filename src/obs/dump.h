#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "obs/metrics.h"

/// \file dump.h
/// Snapshot export to files: one-shot dumps for `--metrics-out` and a
/// background MetricsDumper thread for `--metrics-interval-ms` periodic
/// dumps (each dump atomically replaces the file via rename, so readers
/// never observe a torn snapshot).

namespace autodetect {

enum class MetricsFormat {
  kJson,
  kPrometheus,
};

/// \brief Infers the format from the file extension: ".prom"/".txt" means
/// Prometheus text, everything else JSON.
MetricsFormat MetricsFormatForPath(const std::string& path);

/// \brief Snapshots `registry` and writes it to `path` (write-temp-then-
/// rename, so a concurrent reader sees either the old or the new snapshot).
Status WriteMetricsFile(MetricsRegistry* registry, const std::string& path,
                        MetricsFormat format);
inline Status WriteMetricsFile(MetricsRegistry* registry, const std::string& path) {
  return WriteMetricsFile(registry, path, MetricsFormatForPath(path));
}

/// Background periodic dumper: writes a snapshot of `registry` to `path`
/// every `interval_ms`, plus a final snapshot when stopped/destroyed. The
/// long-running CLI verbs run one of these so an operator can watch a scan
/// or training run converge live.
class MetricsDumper {
 public:
  /// \param registry null means the process default registry.
  MetricsDumper(MetricsRegistry* registry, std::string path, uint64_t interval_ms);
  ~MetricsDumper();

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  /// \brief Stops the thread and writes the final snapshot; idempotent.
  /// Returns the status of the final write.
  Status Stop();

 private:
  MetricsRegistry* registry_;
  std::string path_;
  uint64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace autodetect
