#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/string_util.h"

namespace autodetect {

namespace {

/// Stable small per-thread id used to pick a histogram stripe. Plain
/// round-robin assignment keeps stripe occupancy balanced regardless of how
/// the runtime numbers its threads.
size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % Histogram::kStripes;
}

/// Relaxed atomic min/max update; contention is per-stripe, so the CAS loop
/// almost always succeeds first try.
void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// JSON string escaping for metric names (which are ASCII identifiers in
/// practice, but garbage in should still be valid JSON out).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Shortest-round-trip-ish double rendering: integral values print without
/// a fraction so counters-published-as-gauges stay readable.
std::string JsonDouble(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 11);
  out += "autodetect_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram() {
  for (auto& stripe : stripes_) {
    stripe.buckets = std::vector<std::atomic<uint64_t>>(kNumBuckets);
  }
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // msb >= kSubBucketBits. The top (kSubBucketBits + 1) bits select the
  // octave and the linear sub-bucket within it.
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const size_t sub = static_cast<size_t>(value >> shift) - kSubBuckets;
  return kSubBuckets + static_cast<size_t>(shift) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t shift = (index - kSubBuckets) / kSubBuckets;
  const size_t sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << shift;
}

void Histogram::Record(uint64_t value) {
#ifndef AUTODETECT_NO_METRICS
  Stripe& stripe = stripes_[ThreadStripe()];
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&stripe.min, value);
  AtomicMax(&stripe.max, value);
#else
  (void)value;
#endif
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t min = UINT64_MAX;
  std::vector<uint64_t> merged(kNumBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      merged[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    min = std::min(min, stripe.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, stripe.max.load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (merged[i] == 0) continue;
    snap.count += merged[i];
    snap.buckets.emplace_back(BucketLowerBound(i), merged[i]);
  }
  snap.min = snap.count == 0 ? 0 : min;
  return snap;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i].second;
    if (seen >= rank) {
      // Midpoint between this bucket's lower bound and the next bucket
      // boundary, clamped into the observed range.
      uint64_t lower = buckets[i].first;
      size_t idx = Histogram::BucketIndex(lower);
      uint64_t upper = idx + 1 < Histogram::kNumBuckets
                           ? Histogram::BucketLowerBound(idx + 1) - 1
                           : lower;
      uint64_t mid = lower + (upper - lower) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

// ----------------------------------------------------------------- Registry

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

size_t MetricsRegistry::AddCollector(std::function<void(MetricsRegistry*)> collector) {
  std::lock_guard<std::mutex> lock(collectors_mu_);
  size_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(collector));
  return id;
}

void MetricsRegistry::RemoveCollector(size_t id) {
  std::lock_guard<std::mutex> lock(collectors_mu_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  {
    // Collectors publish component-internal counters (which live behind the
    // component's own locks) into gauges before the capture below. They run
    // under collectors_mu_ so RemoveCollector can guarantee quiescence.
    std::lock_guard<std::mutex> lock(collectors_mu_);
    for (const auto& [id, collect] : collectors_) collect(this);
  }

  // Copy the metric pointers under the lock, read values outside it: reads
  // are relaxed loads and must not serialize against writers.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) histograms.emplace_back(name, h.get());
  }

  MetricsSnapshot snap;
  for (const auto& [name, c] : counters) snap.counters.emplace(name, c->Value());
  for (const auto& [name, g] : gauges) snap.gauges.emplace(name, g->Value());
  for (const auto& [name, h] : histograms) snap.histograms.emplace(name, h->Snapshot());
  return snap;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();  // leaked: safe at exit
  return instance;
}

// ---------------------------------------------------------------- Exporters

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                     JsonEscape(name).c_str(), JsonDouble(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"mean\": %s, \"p50\": %llu, \"p90\": %llu, "
        "\"p99\": %llu, \"buckets\": [",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.min),
        static_cast<unsigned long long>(h.max), JsonDouble(h.Mean()).c_str(),
        static_cast<unsigned long long>(h.ValueAtQuantile(0.50)),
        static_cast<unsigned long long>(h.ValueAtQuantile(0.90)),
        static_cast<unsigned long long>(h.ValueAtQuantile(0.99)));
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      out += StrFormat("%s[%llu, %llu]", i == 0 ? "" : ", ",
                       static_cast<unsigned long long>(h.buckets[i].first),
                       static_cast<unsigned long long>(h.buckets[i].second));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", pname.c_str(), pname.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n%s %s\n", pname.c_str(), pname.c_str(),
                     JsonDouble(value).c_str());
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = PrometheusName(name);
    out += StrFormat("# TYPE %s summary\n", pname.c_str());
    for (double q : {0.5, 0.9, 0.99}) {
      out += StrFormat("%s{quantile=\"%g\"} %llu\n", pname.c_str(), q,
                       static_cast<unsigned long long>(h.ValueAtQuantile(q)));
    }
    out += StrFormat("%s_sum %llu\n%s_count %llu\n", pname.c_str(),
                     static_cast<unsigned long long>(h.sum), pname.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

}  // namespace autodetect
