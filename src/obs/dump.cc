#include "obs/dump.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace autodetect {

MetricsFormat MetricsFormatForPath(const std::string& path) {
  if (EndsWith(path, ".prom") || EndsWith(path, ".txt")) {
    return MetricsFormat::kPrometheus;
  }
  return MetricsFormat::kJson;
}

Status WriteMetricsFile(MetricsRegistry* registry, const std::string& path,
                        MetricsFormat format) {
  registry = OrDefaultRegistry(registry);
  std::string text = format == MetricsFormat::kPrometheus ? registry->ToPrometheus()
                                                          : registry->ToJson();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) return Status::IOError("failed writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

MetricsDumper::MetricsDumper(MetricsRegistry* registry, std::string path,
                             uint64_t interval_ms)
    : registry_(OrDefaultRegistry(registry)),
      path_(std::move(path)),
      interval_ms_(interval_ms == 0 ? 1000 : interval_ms) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;  // final snapshot is written by Stop()
      }
      lock.unlock();
      // Dump errors are not fatal mid-run; the final Stop() write reports.
      (void)WriteMetricsFile(registry_, path_);
      lock.lock();
    }
  });
}

Status MetricsDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::OK();
    stop_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  return WriteMetricsFile(registry_, path_);
}

MetricsDumper::~MetricsDumper() { (void)Stop(); }

}  // namespace autodetect
