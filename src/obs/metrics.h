#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.h
/// Lock-cheap runtime metrics for the whole stack: named counters, gauges
/// and log-bucketed histograms collected in a MetricsRegistry and exported
/// as structured JSON or Prometheus text. Auto-Detect's quality hinges on
/// corpus statistics and calibrated thresholds (paper Eqs. 8/10); the
/// registry makes the runtime behaviour of those knobs — cache hit rates,
/// per-stage latencies, smoothing fallbacks — observable in production
/// instead of only inside ad-hoc benches.
///
/// Cost model (see DESIGN.md §9):
///  * Counter::Add / Gauge::Set are single relaxed atomic operations.
///  * Histogram::Record is two relaxed atomic adds into a per-thread stripe
///    (no locks, no false sharing across stripes in the common case).
///  * Registration (Get*) takes a mutex and allocates — resolve metric
///    pointers once at construction time, never on hot paths.
///  * Snapshot/ToJson take the registry mutex briefly to copy the metric
///    list, then read each metric with relaxed loads; safe concurrently
///    with writers (values may lag by an operation or two, never tear).
///
/// Compile-out: building with -DAUTODETECT_NO_METRICS turns every mutation
/// (Add/Set/Record and the RAII timers in trace.h) into a no-op — no clock
/// reads, no atomic traffic — while the registry and exporters still compile
/// and produce (all-zero) snapshots, so call sites need no #ifdefs.

namespace autodetect {

#ifdef AUTODETECT_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotonically increasing event count. A single cache line of relaxed
/// atomic traffic; batch per-item increments into one Add per column/batch
/// on hot paths (see detector.cc for the idiom).
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef AUTODETECT_NO_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, hit rate, resident entries). Doubles so
/// collectors can publish ratios; integral levels up to 2^53 are exact.
class Gauge {
 public:
  void Set(double v) {
#ifndef AUTODETECT_NO_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(double delta) {
#ifndef AUTODETECT_NO_METRICS
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram at one instant; buckets are merged across
/// the per-thread stripes. `buckets` is sparse: (lower_bound, count) pairs
/// for non-empty buckets only, ascending by bound.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0
  uint64_t max = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  /// \brief Value at quantile q in [0, 1], resolved to the midpoint of the
  /// containing bucket (<= 1/16 relative error by construction). 0 when
  /// empty.
  uint64_t ValueAtQuantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed log-bucketed latency/size histogram, mergeable across threads.
///
/// Bucketing: values below 2^kSubBucketBits are exact; above, each power-of-
/// two octave is split into 2^kSubBucketBits linear sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 1/16 of its
/// magnitude (HdrHistogram-style, coarse). The bucket array is fixed at
/// compile time — Record never allocates.
///
/// Concurrency: recordings go into one of kStripes stripes chosen by a
/// per-thread id, so concurrent workers touch disjoint cache lines; Snapshot
/// merges the stripes with relaxed loads.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;  // 16
  /// Buckets 0..15 are exact; octaves for bit widths 5..64 contribute 16
  /// sub-buckets each.
  static constexpr size_t kNumBuckets = kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;
  static constexpr size_t kStripes = 8;

  Histogram();

  void Record(uint64_t value);

  /// \brief Merged view across all stripes.
  HistogramSnapshot Snapshot() const;

  /// \brief Index of the bucket holding `value` (exposed for tests).
  static size_t BucketIndex(uint64_t value);
  /// \brief Smallest value mapping to bucket `index` (exposed for tests).
  static uint64_t BucketLowerBound(size_t index);

 private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<uint64_t>> buckets;  // kNumBuckets
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };
  Stripe stripes_[kStripes];
};

/// A full registry snapshot, ready for serialization. Maps are ordered so
/// output is deterministic given deterministic values.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// \brief Structured JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
  /// buckets: [[lower, count], ...]}}}.
  std::string ToJson() const;
  /// \brief Prometheus text exposition format; dots in names become
  /// underscores and histograms export as summaries (quantile series plus
  /// _sum/_count).
  std::string ToPrometheus() const;
};

/// Named metric registry. Get* registers on first use and returns a pointer
/// that stays valid for the registry's lifetime; callers resolve once and
/// keep the pointer. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// \brief Registers a callback run at the start of every Snapshot(), for
  /// components whose counters live behind their own locks (e.g. the pair
  /// cache publishes hit/miss gauges this way). Collectors may call Get* on
  /// this registry but must not call Snapshot or Add/RemoveCollector.
  /// Returns an id for RemoveCollector.
  size_t AddCollector(std::function<void(MetricsRegistry*)> collector);

  /// \brief Unregisters a collector. Blocks until any in-flight Snapshot has
  /// finished running collectors, so a component may safely free the state
  /// its collector captured right after this returns.
  void RemoveCollector(size_t id);

  /// \brief Runs collectors, then captures every registered metric.
  MetricsSnapshot Snapshot();

  std::string ToJson() { return Snapshot().ToJson(); }
  std::string ToPrometheus() { return Snapshot().ToPrometheus(); }

  /// \brief Process-wide default registry (never destroyed). Components take
  /// a `MetricsRegistry*` option defaulting to null == this.
  static MetricsRegistry* Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::mutex collectors_mu_;
  std::map<size_t, std::function<void(MetricsRegistry*)>> collectors_;
  size_t next_collector_id_ = 0;
};

/// \brief `registry` if non-null, else the process default. The idiom for
/// options structs: `MetricsRegistry* metrics = nullptr` means "default".
inline MetricsRegistry* OrDefaultRegistry(MetricsRegistry* registry) {
  return registry != nullptr ? registry : MetricsRegistry::Default();
}

}  // namespace autodetect
