#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/testcase.h"

/// \file csv_benchmark.h
/// The CSV test set of paper Sec. 4.1: 26 spreadsheet files with known
/// quality issues, 441 labeled test columns in total. Here the files are
/// synthesized once into a directory (Wikipedia-flavoured tables with
/// injector-based errors at a high rate, since the paper's files were
/// selected *because* they are dirty), then parsed back through the CSV
/// reader so the full file path is exercised. Ground truth is kept in a
/// labels.csv sidecar.

namespace autodetect {

struct CsvBenchmarkOptions {
  std::string directory = "csv_benchmark";
  size_t num_files = 26;
  size_t total_columns = 441;
  /// Fraction of columns carrying an injected error.
  double dirty_fraction = 0.5;
  uint64_t seed = 26441;
};

/// \brief Creates the benchmark files if absent, then loads them as test
/// cases (parsing through ReadCsvFile).
Result<std::vector<TestCase>> BuildCsvBenchmark(const CsvBenchmarkOptions& options);

}  // namespace autodetect
