#include "eval/csv_benchmark.h"

#include <filesystem>
#include <map>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "corpus/corpus_generator.h"
#include "corpus/error_injector.h"
#include "io/csv.h"

namespace autodetect {

namespace fs = std::filesystem;

namespace {

Status GenerateFiles(const CsvBenchmarkOptions& options) {
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) return Status::IOError("cannot create " + options.directory);

  Pcg32 rng(options.seed);
  GeneratorOptions gen;
  gen.profile = CorpusProfile::Wiki();
  gen.num_columns = options.total_columns * 3 + 64;
  gen.inject_errors = false;
  gen.seed = options.seed ^ 0xc5f;
  GeneratedColumnSource source(gen);
  ErrorInjector injector;
  std::vector<std::string> foreign_pool;

  // Labels sidecar: file,column_index,dirty_row,dirty_value,error_class.
  CsvTable labels;
  labels.header = {"file", "column", "dirty_row", "dirty_value", "error_class"};

  size_t columns_left = options.total_columns;
  for (size_t f = 0; f < options.num_files; ++f) {
    size_t files_left = options.num_files - f;
    size_t cols_here;
    if (files_left == 1) {
      cols_here = columns_left;  // the last file absorbs the remainder
    } else {
      cols_here = std::max<size_t>(
          1, std::min(columns_left - (files_left - 1),
                      static_cast<size_t>(rng.Uniform(
                          3, static_cast<int64_t>(std::max<size_t>(
                                 4, columns_left / files_left + 4))))));
    }
    columns_left -= cols_here;

    // All columns of a file share one row count.
    size_t rows = static_cast<size_t>(rng.Uniform(12, 48));
    std::vector<std::vector<std::string>> cols;
    std::string file_name = StrFormat("table_%02zu.csv", f + 1);

    for (size_t c = 0; c < cols_here; ++c) {
      Column column;
      // Pull until a column with enough rows arrives, then trim/pad.
      while (true) {
        if (!source.Next(&column)) return Status::Internal("column source exhausted");
        if (column.values.size() >= 4) break;
      }
      auto& v = column.values;
      while (v.size() < rows) v.push_back(v[v.size() % std::max<size_t>(1, v.size())]);
      v.resize(rows);
      for (const auto& val : v) {
        if (foreign_pool.size() < 256) foreign_pool.push_back(val);
      }

      if (rng.Chance(options.dirty_fraction)) {
        Pcg32 col_rng = rng.Fork();
        if (injector.Inject(&column, foreign_pool, &col_rng)) {
          labels.rows.push_back({file_name, std::to_string(c),
                                 std::to_string(column.dirty_index),
                                 column.dirty_value(),
                                 std::string(ErrorClassName(column.error_class))});
        }
      }
      cols.push_back(column.values);
    }

    CsvTable table;
    table.name = file_name;
    for (size_t c = 0; c < cols.size(); ++c) table.header.push_back("col" + std::to_string(c));
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      row.reserve(cols.size());
      for (const auto& col : cols) row.push_back(col[r]);
      table.rows.push_back(std::move(row));
    }
    AD_RETURN_NOT_OK(WriteCsvFile(table, options.directory + "/" + file_name));
  }
  AD_RETURN_NOT_OK(WriteCsvFile(labels, options.directory + "/labels.csv"));
  return Status::OK();
}

}  // namespace

Result<std::vector<TestCase>> BuildCsvBenchmark(const CsvBenchmarkOptions& options) {
  const std::string labels_path = options.directory + "/labels.csv";
  if (!fs::exists(labels_path)) {
    AD_RETURN_NOT_OK(GenerateFiles(options));
  }

  AD_ASSIGN_OR_RETURN(CsvTable labels, ReadCsvFile(labels_path));
  // (file, column) -> (dirty_row, dirty_value, class)
  std::map<std::pair<std::string, size_t>, std::pair<int32_t, std::string>> truth;
  for (const auto& row : labels.rows) {
    if (row.size() < 5) continue;
    truth[{row[0], static_cast<size_t>(std::stoul(row[1]))}] = {
        static_cast<int32_t>(std::stol(row[2])), row[3]};
  }

  std::vector<TestCase> cases;
  for (size_t f = 1; f <= options.num_files; ++f) {
    std::string file_name = StrFormat("table_%02zu.csv", f);
    std::string path = options.directory + "/" + file_name;
    if (!fs::exists(path)) continue;
    AD_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TestCase tc;
      tc.values = table.Column(c);
      auto it = truth.find({file_name, c});
      if (it != truth.end()) {
        tc.dirty = true;
        tc.dirty_index = it->second.first;
        tc.dirty_value = it->second.second;
      }
      tc.domain = file_name;
      cases.push_back(std::move(tc));
    }
  }
  if (cases.empty()) return Status::NotFound("no CSV benchmark columns found");
  return cases;
}

}  // namespace autodetect
