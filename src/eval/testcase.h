#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "corpus/column_source.h"
#include "corpus/corpus_generator.h"
#include "stats/language_stats.h"

/// \file testcase.h
/// Test-set construction for the paper's two evaluation protocols:
///
///  * Auto-eval (Sec. 4.4): a "dirty" test column is a clean column C2 with
///    one value v_d spliced in from a different column C1, where v_d is
///    verified incompatible with C2 under crude-G statistics. Dirty cases
///    are mixed with clean columns at dirty:clean ratios 1:1 / 1:5 / 1:10.
///
///  * Realistic labeled sets (stand-in for the paper's manual labeling of
///    WIKI/CSV results): clean columns dirtied by the error-injector's
///    taxonomy of real error classes (Fig. 1/2, Table 4), with
///    construction-time ground truth.

namespace autodetect {

struct TestCase {
  std::vector<std::string> values;
  bool dirty = false;
  /// Ground truth when dirty.
  int32_t dirty_index = -1;
  std::string dirty_value;
  ErrorClass error_class = ErrorClass::kNone;
  std::string domain;  ///< generating domain of the host column
};

struct SpliceTestOptions {
  size_t num_dirty = 1000;
  size_t clean_per_dirty = 1;  ///< 1, 5 or 10 (the paper's ratios)
  /// v_d must score below this against every value of C2 under crude-G
  /// statistics (unsmoothed), ensuring the splice is genuinely
  /// incompatible (mirrors Appendix F's manual tuning).
  double incompatible_threshold = -0.5;
  size_t max_column_values = 40;
  uint64_t seed = 99;
};

/// \brief Builds an auto-eval test set by streaming `source` (clean columns)
/// and splicing foreign values. `crude_stats` must be statistics for
/// LanguageSpace::CrudeG() over a training corpus.
Result<std::vector<TestCase>> GenerateSpliceTestSet(ColumnSource* source,
                                                    const LanguageStats& crude_stats,
                                                    const SpliceTestOptions& options);

struct RealisticTestOptions {
  size_t num_dirty = 500;
  size_t num_clean = 1500;
  uint64_t seed = 4242;
};

/// \brief Builds a realistic labeled test set from `profile` columns with
/// injector-based errors.
std::vector<TestCase> GenerateRealisticTestSet(const CorpusProfile& profile,
                                               const RealisticTestOptions& options);

}  // namespace autodetect
