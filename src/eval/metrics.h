#pragma once

#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "eval/testcase.h"

/// \file metrics.h
/// Precision@K evaluation (paper Sec. 4.3/4.4): each method contributes its
/// single most confident prediction per test column; predictions are pooled
/// across columns, ranked by confidence, and precision is measured over the
/// top K. A prediction is correct iff its column is dirty and the flagged
/// value is the injected one.

namespace autodetect {

/// One pooled prediction.
struct PooledPrediction {
  size_t case_index;
  Suspicion suspicion;
  bool correct;
};

struct MethodEvaluation {
  std::string method;
  /// All pooled predictions, ranked by confidence descending.
  std::vector<PooledPrediction> ranked;
  size_t num_dirty_cases = 0;

  /// Precision over the top k predictions (k capped at ranked.size(); 0
  /// when there are no predictions at all).
  double PrecisionAt(size_t k) const;
  /// Correct predictions in the top k / number of dirty cases ("relative
  /// recall" in the paper's discussion of Fig. 5).
  double RecallAt(size_t k) const;
  size_t CorrectAt(size_t k) const;
};

/// \brief Runs `method` over every test case (top-1 prediction per column)
/// and pools the ranking.
MethodEvaluation EvaluateMethod(const ErrorDetectorMethod& method,
                                const std::vector<TestCase>& cases);

/// \brief Renders a paper-style table: one row per method, one column per
/// k. `metric` is "precision" or "recall".
std::string FormatPrecisionTable(const std::vector<MethodEvaluation>& evals,
                                 const std::vector<size_t>& ks,
                                 const std::string& title);

}  // namespace autodetect
