#include "eval/testcase.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "stats/npmi.h"
#include "stats/stats_builder.h"
#include "text/language.h"
#include "text/pattern.h"

namespace autodetect {

Result<std::vector<TestCase>> GenerateSpliceTestSet(ColumnSource* source,
                                                    const LanguageStats& crude_stats,
                                                    const SpliceTestOptions& options) {
  if (options.num_dirty == 0) return Status::Invalid("num_dirty must be positive");
  const GeneralizationLanguage crude = LanguageSpace::CrudeG();
  NpmiScorer scorer(&crude_stats, /*smoothing=*/0.0);
  Pcg32 rng(options.seed);

  // Collect host columns and donor values from the stream.
  struct Host {
    std::vector<std::string> values;
    std::vector<uint64_t> keys;
    std::string domain;
  };
  std::vector<Host> hosts;
  std::vector<std::pair<std::string, uint64_t>> donors;  // value + crude key

  const size_t want_hosts =
      options.num_dirty * (1 + options.clean_per_dirty) * 2 + 64;
  source->Reset();
  Column column;
  while (source->Next(&column) && hosts.size() < want_hosts) {
    if (column.values.size() < 4) continue;
    Host h;
    h.values = column.values;
    if (h.values.size() > options.max_column_values) {
      h.values.resize(options.max_column_values);
    }
    h.domain = column.domain;
    h.keys.reserve(h.values.size());
    for (const auto& v : h.values) h.keys.push_back(GeneralizeToKey(v, crude));
    if (hosts.size() % 3 == 0) {
      const std::string& dv = h.values[rng.Below(static_cast<uint32_t>(h.values.size()))];
      donors.emplace_back(dv, GeneralizeToKey(dv, crude));
    }
    hosts.push_back(std::move(h));
  }
  if (hosts.size() < 16 || donors.size() < 8) {
    return Status::Invalid("not enough columns in source for a test set");
  }

  std::vector<TestCase> cases;
  cases.reserve(options.num_dirty * (1 + options.clean_per_dirty));

  // Dirty cases: splice a verified-incompatible donor into a host.
  size_t attempts = 0;
  const size_t max_attempts = options.num_dirty * 200 + 1000;
  size_t made_dirty = 0;
  size_t host_cursor = 0;
  while (made_dirty < options.num_dirty && attempts++ < max_attempts) {
    const Host& host = hosts[host_cursor++ % hosts.size()];
    const auto& [donor_value, donor_key] = donors[rng.Below(static_cast<uint32_t>(donors.size()))];
    // Verify incompatibility with every host value (paper: "manually design
    // and tune a compatibility score to make sure vd is indeed inconsistent
    // with C2").
    bool incompatible = true;
    for (uint64_t hk : host.keys) {
      if (scorer.Score(donor_key, hk) > options.incompatible_threshold) {
        incompatible = false;
        break;
      }
    }
    if (!incompatible) continue;

    TestCase tc;
    tc.values = host.values;
    uint32_t pos = rng.Below(static_cast<uint32_t>(tc.values.size() + 1));
    tc.values.insert(tc.values.begin() + pos, donor_value);
    tc.dirty = true;
    tc.dirty_index = static_cast<int32_t>(pos);
    tc.dirty_value = donor_value;
    tc.error_class = ErrorClass::kForeignValue;
    tc.domain = host.domain;
    cases.push_back(std::move(tc));
    ++made_dirty;
  }
  if (made_dirty < options.num_dirty) {
    AD_LOG(Warning) << "splice test set: wanted " << options.num_dirty
                    << " dirty cases, made " << made_dirty;
    if (made_dirty == 0) return Status::Internal("no dirty test case generated");
  }

  // Clean cases: host columns as-is.
  size_t want_clean = made_dirty * options.clean_per_dirty;
  for (size_t i = 0; i < want_clean && host_cursor + i < hosts.size(); ++i) {
    const Host& host = hosts[host_cursor + i];
    TestCase tc;
    tc.values = host.values;
    tc.domain = host.domain;
    cases.push_back(std::move(tc));
  }

  // Shuffle so case order carries no signal.
  rng.Shuffle(&cases);
  return cases;
}

std::vector<TestCase> GenerateRealisticTestSet(const CorpusProfile& profile,
                                               const RealisticTestOptions& options) {
  GeneratorOptions gen;
  gen.profile = profile;
  gen.profile.dirty_rate = 0.0;
  gen.num_columns = (options.num_dirty + options.num_clean) * 2 + 64;
  gen.inject_errors = false;
  gen.seed = options.seed;
  GeneratedColumnSource source(gen);

  ErrorInjector injector;
  Pcg32 rng(options.seed ^ 0x5eed);

  std::vector<TestCase> cases;
  std::vector<std::string> foreign_pool;
  size_t dirty_made = 0, clean_made = 0;
  Column column;
  while (source.Next(&column) &&
         (dirty_made < options.num_dirty || clean_made < options.num_clean)) {
    if (column.values.size() < 4) continue;
    for (const auto& v : column.values) {
      if (foreign_pool.size() < 256) foreign_pool.push_back(v);
    }
    bool want_dirty = dirty_made < options.num_dirty &&
                      (clean_made >= options.num_clean || rng.Chance(0.4));
    TestCase tc;
    if (want_dirty) {
      Column mutated = column;
      if (!injector.Inject(&mutated, foreign_pool, &rng)) continue;
      tc.values = mutated.values;
      tc.dirty = true;
      tc.dirty_index = mutated.dirty_index;
      tc.dirty_value = mutated.dirty_value();
      tc.error_class = mutated.error_class;
      tc.domain = mutated.domain;
      ++dirty_made;
    } else {
      if (clean_made >= options.num_clean) continue;
      tc.values = column.values;
      tc.domain = column.domain;
      ++clean_made;
    }
    cases.push_back(std::move(tc));
  }
  rng.Shuffle(&cases);
  return cases;
}

}  // namespace autodetect
