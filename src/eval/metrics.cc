#include "eval/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace autodetect {

double MethodEvaluation::PrecisionAt(size_t k) const {
  if (ranked.empty() || k == 0) return 0.0;
  // Paper protocol: precision over the top-k ranked predictions. A method
  // whose list is shorter than k is measured against k regardless — it had
  // the chance to rank k predictions and produced fewer, so the deficit
  // counts against it (this keeps low-recall methods from looking perfect
  // at depths they never reach; the paper's k=5000 ~ its dirty-case count).
  return static_cast<double>(CorrectAt(k)) / static_cast<double>(k);
}

size_t MethodEvaluation::CorrectAt(size_t k) const {
  k = std::min(k, ranked.size());
  size_t correct = 0;
  for (size_t i = 0; i < k; ++i) correct += ranked[i].correct ? 1 : 0;
  return correct;
}

double MethodEvaluation::RecallAt(size_t k) const {
  if (num_dirty_cases == 0) return 0.0;
  return static_cast<double>(CorrectAt(k)) / static_cast<double>(num_dirty_cases);
}

MethodEvaluation EvaluateMethod(const ErrorDetectorMethod& method,
                                const std::vector<TestCase>& cases) {
  MethodEvaluation eval;
  eval.method = std::string(method.name());
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const TestCase& tc = cases[ci];
    if (tc.dirty) ++eval.num_dirty_cases;
    std::vector<Suspicion> predictions = method.RankColumn(tc.values);
    if (predictions.empty()) continue;
    // Top-1 per column: the protocol's unit of prediction.
    const Suspicion& top = predictions.front();
    bool correct = tc.dirty && top.value == tc.dirty_value;
    eval.ranked.push_back(PooledPrediction{ci, top, correct});
  }
  std::stable_sort(eval.ranked.begin(), eval.ranked.end(),
                   [](const PooledPrediction& a, const PooledPrediction& b) {
                     return a.suspicion.score > b.suspicion.score;
                   });
  return eval;
}

std::string FormatPrecisionTable(const std::vector<MethodEvaluation>& evals,
                                 const std::vector<size_t>& ks,
                                 const std::string& title) {
  std::string out = title + "\n";
  out += StrFormat("%-14s", "method");
  for (size_t k : ks) out += StrFormat(" P@%-6zu", k);
  out += StrFormat(" %-6s\n", "preds");
  for (const auto& e : evals) {
    out += StrFormat("%-14s", e.method.c_str());
    for (size_t k : ks) out += StrFormat(" %-8.3f", e.PrecisionAt(k));
    out += StrFormat(" %-6zu\n", e.ranked.size());
  }
  return out;
}

}  // namespace autodetect
