#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/autodetect_method.h"
#include "baselines/baseline.h"
#include "common/result.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "eval/testcase.h"
#include "serve/detection_engine.h"

/// \file harness.h
/// Shared plumbing for benches and examples: train-or-load cached models
/// (training a 144-language pipeline takes ~a minute, and every bench binary
/// is its own process), cached crude-G statistics for test generation, and
/// the standard method line-ups of the paper's figures.

namespace autodetect {

struct HarnessConfig {
  size_t train_columns = 30000;
  CorpusProfile train_profile = CorpusProfile::Web();
  uint64_t train_seed = 20180610;
  TrainOptions train;
  std::string cache_dir = "bench_cache";
};

/// \brief Returns the standard trained model, training it once and caching
/// the result under `config.cache_dir` keyed by profile/size/budget.
Result<Model> TrainOrLoadModel(const HarnessConfig& config);

/// \brief Crude-G statistics over the same training corpus (needed by
/// splice-test generation), cached alongside the model.
Result<LanguageStats> BuildOrLoadCrudeStats(const HarnessConfig& config);

/// \brief Shapes a test set into a unified-API batch (one request per case,
/// named "case<i>/<domain>", tagged with the domain); the runtime benches
/// feed the serving layer with exactly the columns the accuracy benches
/// score.
std::vector<DetectRequest> RequestsFromCases(const std::vector<TestCase>& cases);

/// \brief A set of comparison methods with shared ownership semantics.
class MethodSet {
 public:
  /// All 12 methods of Fig. 4: Auto-Detect + 10 baselines + Union.
  static MethodSet All(const Detector* detector);
  /// The 7 best performers reported in Figs. 5/6.
  static MethodSet Top7(const Detector* detector);

  const std::vector<const ErrorDetectorMethod*>& methods() const { return views_; }

 private:
  std::vector<std::unique_ptr<ErrorDetectorMethod>> owned_;
  std::vector<const ErrorDetectorMethod*> views_;
};

}  // namespace autodetect
