#include "eval/harness.h"

#include <filesystem>
#include <fstream>

#include "baselines/cdm.h"
#include "baselines/dboost.h"
#include "baselines/distance_outliers.h"
#include "baselines/fregex.h"
#include "baselines/linear.h"
#include "baselines/lsa.h"
#include "baselines/pwheel.h"
#include "baselines/union_method.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "stats/stats_builder.h"

namespace autodetect {

namespace fs = std::filesystem;

namespace {

std::string ModelCachePath(const HarnessConfig& c) {
  return StrFormat("%s/model_%s_%zu_%llu_p%02d_m%zu.bin", c.cache_dir.c_str(),
                   c.train_profile.name.c_str(), c.train_columns,
                   static_cast<unsigned long long>(c.train_seed),
                   static_cast<int>(c.train.precision_target * 100),
                   c.train.memory_budget_bytes >> 20);
}

std::string CrudeCachePath(const HarnessConfig& c) {
  return StrFormat("%s/crude_%s_%zu_%llu.bin", c.cache_dir.c_str(),
                   c.train_profile.name.c_str(), c.train_columns,
                   static_cast<unsigned long long>(c.train_seed));
}

GeneratedColumnSource MakeTrainingSource(const HarnessConfig& c) {
  GeneratorOptions gen;
  gen.profile = c.train_profile;
  gen.num_columns = c.train_columns;
  gen.inject_errors = false;  // see DESIGN.md: training corpora are clean
  gen.seed = c.train_seed;
  return GeneratedColumnSource(gen);
}

}  // namespace

Result<Model> TrainOrLoadModel(const HarnessConfig& config) {
  std::error_code ec;
  fs::create_directories(config.cache_dir, ec);
  const std::string path = ModelCachePath(config);
  if (fs::exists(path)) {
    auto loaded = Model::Load(path);
    if (loaded.ok()) return loaded;
    AD_LOG(Warning) << "cache " << path << " unreadable, retraining";
  }
  GeneratedColumnSource source = MakeTrainingSource(config);
  TrainOptions train = config.train;
  train.corpus_name = config.train_profile.name + "-synthetic";
  TrainSession session(train);
  AD_RETURN_NOT_OK(session.BuildStats(&source));
  AD_RETURN_NOT_OK(session.Supervise(&source));
  AD_ASSIGN_OR_RETURN(Model model, session.Finalize());
  AD_RETURN_NOT_OK(model.Save(path));
  return model;
}

Result<LanguageStats> BuildOrLoadCrudeStats(const HarnessConfig& config) {
  std::error_code ec;
  fs::create_directories(config.cache_dir, ec);
  const std::string path = CrudeCachePath(config);
  if (fs::exists(path)) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      BinaryReader reader(&in);
      auto loaded = LanguageStats::Deserialize(&reader);
      if (loaded.ok()) return loaded;
    }
    AD_LOG(Warning) << "cache " << path << " unreadable, rebuilding";
  }
  GeneratedColumnSource source = MakeTrainingSource(config);
  StatsBuilderOptions opts;
  opts.language_ids = {LanguageSpace::IdOf(LanguageSpace::CrudeG())};
  CorpusStats stats = BuildCorpusStats(&source, opts);
  LanguageStats crude = stats.ForLanguage(opts.language_ids[0]);
  std::ofstream out(path, std::ios::binary);
  if (out) {
    BinaryWriter writer(&out);
    crude.Serialize(&writer);
  }
  return crude;
}

std::vector<DetectRequest> RequestsFromCases(const std::vector<TestCase>& cases) {
  std::vector<DetectRequest> requests;
  requests.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    // The domain doubles as the metrics tag, so per-domain scan counts and
    // latency quantiles fall out of any engine run over an eval set.
    requests.push_back(DetectRequest{
        StrFormat("case%zu/%s", i, cases[i].domain.c_str()), cases[i].values,
        RequestContext{"", cases[i].domain}});
  }
  return requests;
}

MethodSet MethodSet::All(const Detector* detector) {
  MethodSet set;
  set.owned_.push_back(std::make_unique<AutoDetectMethod>(detector));
  set.owned_.push_back(std::make_unique<LinearDetector>());
  set.owned_.push_back(std::make_unique<LinearPDetector>());
  set.owned_.push_back(std::make_unique<FRegexDetector>());
  set.owned_.push_back(std::make_unique<PWheelDetector>());
  set.owned_.push_back(std::make_unique<DBoostDetector>());
  set.owned_.push_back(std::make_unique<CdmDetector>());
  set.owned_.push_back(std::make_unique<LsaDetector>());
  set.owned_.push_back(std::make_unique<SvddDetector>());
  set.owned_.push_back(std::make_unique<DbodDetector>());
  set.owned_.push_back(std::make_unique<LofDetector>());
  for (const auto& m : set.owned_) set.views_.push_back(m.get());
  // Union over the ten baselines (everything but Auto-Detect itself).
  std::vector<const ErrorDetectorMethod*> constituents(set.views_.begin() + 1,
                                                       set.views_.end());
  set.owned_.push_back(std::make_unique<UnionDetector>(std::move(constituents)));
  set.views_.push_back(set.owned_.back().get());
  return set;
}

MethodSet MethodSet::Top7(const Detector* detector) {
  MethodSet set;
  set.owned_.push_back(std::make_unique<AutoDetectMethod>(detector));
  set.owned_.push_back(std::make_unique<FRegexDetector>());
  set.owned_.push_back(std::make_unique<PWheelDetector>());
  set.owned_.push_back(std::make_unique<DBoostDetector>());
  set.owned_.push_back(std::make_unique<SvddDetector>());
  set.owned_.push_back(std::make_unique<DbodDetector>());
  set.owned_.push_back(std::make_unique<LofDetector>());
  for (const auto& m : set.owned_) set.views_.push_back(m.get());
  return set;
}

}  // namespace autodetect
