#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "io/serde.h"

/// \file count_min.h
/// Count–min sketch (Cormode & Muthukrishnan 2005), used per paper Sec. 3.4
/// to compress per-language co-occurrence dictionaries by 10–100x. The
/// sketch never underestimates: estimate(k) >= true(k), and with
/// width = ceil(e/eps), depth = ceil(ln(1/delta)) it overestimates by at
/// most eps*N with probability 1-delta (N = total inserted mass).
///
/// Budget-driven sizing (FromMemoryBudget / WidthForBudget) rounds the width
/// DOWN to a power of two, so counter storage never exceeds the budget and
/// the trainer's selection knapsack can price a sketched language honestly
/// (PlannedBytes is exactly what FromMemoryBudget will allocate). The
/// resulting guarantee for a budget B and depth d is
///
///   width = 2^floor(log2(B / (4*d)))          (>= 1 even for tiny budgets)
///   eps   = e / width                          (overestimate <= eps*N)
///   delta = e^-d                               (probability of exceeding it)
///
/// so halving the budget at fixed depth doubles eps in the worst case;
/// AddConservative tightens this considerably on the power-law key
/// distributions real co-occurrence tables exhibit.

namespace autodetect {

class CountMinSketch {
 public:
  /// \brief Direct sizing. \param width counters per row, \param depth rows.
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0xc0ffee);

  /// \brief Sizing from the (eps, delta) guarantee.
  static CountMinSketch FromErrorBounds(double epsilon, double delta,
                                        uint64_t seed = 0xc0ffee);

  /// \brief Sizes the sketch to at most `budget_bytes` of counter storage
  /// with the given depth: width = WidthForBudget(budget_bytes, depth).
  /// Degenerate budgets (below depth * 4 bytes) still get width 1 so the
  /// sketch stays functional, which is the only case that can exceed the
  /// budget.
  static CountMinSketch FromMemoryBudget(size_t budget_bytes, size_t depth = 4,
                                         uint64_t seed = 0xc0ffee);

  /// \brief The power-of-two width FromMemoryBudget(budget_bytes, depth)
  /// picks: the largest 2^k with 2^k * depth * 4 <= budget_bytes, min 1.
  static size_t WidthForBudget(size_t budget_bytes, size_t depth);

  /// \brief Exactly MemoryBytes() of the sketch FromMemoryBudget would
  /// build — the trainer prices knapsack candidates with this so the memory
  /// budget reflects what the model artifact will actually carry.
  static size_t PlannedBytes(size_t budget_bytes, size_t depth);

  /// Adds `count` to key. Counters saturate instead of wrapping.
  void Add(uint64_t key, uint64_t count = 1);

  /// Point estimate: min over rows. Never below the true count.
  uint64_t Estimate(uint64_t key) const;

  /// \brief Count–mean–min estimate (Deng & Rafiei, VLDB 2007): each row's
  /// expected collision noise (total - counter) / (width - 1) is subtracted
  /// from its counter, the median of the corrected rows is taken, and the
  /// result is clamped into [0, Estimate(key)]. Near-unbiased where
  /// Estimate is biased high — in particular it restores genuinely-zero
  /// counts that collision mass masks at small widths. The price: unlike
  /// Estimate, this can underestimate, and under heavy-tailed (zipf) mass
  /// the mean per-counter noise dwarfs most true counts, so the correction
  /// zeroes the entire tail of real keys. That is why the serving path
  /// (LanguageStats::CoCount) uses AddConservative + Estimate instead:
  /// co-occurrence mass is strongly zipf and the detector's NPMI signal
  /// lives in the tail. Use this estimator only for near-uniform mass fed
  /// with plain Add. Falls back to Estimate when width < 2 (no off-key
  /// mass to measure noise from).
  uint64_t EstimateCorrected(uint64_t key) const;

  /// Conservative update variant of Add: only raises counters that are
  /// below the new estimate. Strictly reduces overestimation on skewed
  /// (power-law) key distributions — the distribution shape the paper
  /// observes for real co-occurrence counts. Incompatible with
  /// EstimateCorrected: the correction calibrates noise from TotalMass()
  /// assuming every row's counters sum to it, which only plain Add
  /// maintains.
  void AddConservative(uint64_t key, uint64_t count = 1);

  /// \brief Element-wise sum with `other` (counter saturation preserved).
  /// Requires identical width, depth and hash parameters — i.e. both
  /// sketches built with the same (width, depth, seed). Merging sketches fed
  /// by plain Add is exact: the merged sketch equals the sketch of the
  /// concatenated streams, so Merge is associative and commutative (the
  /// property distributed stats aggregation relies on). Sketches fed by
  /// AddConservative merge safely (never-underestimate still holds) but the
  /// merged estimates may be looser than a single-pass conservative build.
  Status Merge(const CountMinSketch& other);

  /// Total mass inserted (sum of all Add counts).
  uint64_t TotalMass() const { return total_; }

  size_t width() const { return width_; }
  size_t depth() const { return rows_.size() / (width_ ? width_ : 1); }

  /// Bytes of counter storage (the dominant memory term).
  size_t MemoryBytes() const { return rows_.size() * sizeof(uint32_t); }

  void Serialize(BinaryWriter* writer) const;
  static Result<CountMinSketch> Deserialize(BinaryReader* reader);

  /// Frozen blob geometry: header + hash params padded to kPlaneAlign, then
  /// depth counter planes each padded to a kPlaneAlign multiple, so planes
  /// start cache-line-aligned whenever the blob does (the ADMODEL2 SKCH
  /// section starts page-aligned and concatenates whole blobs, so every
  /// blob — and hence every plane — keeps the alignment). Cache-line, not
  /// page, alignment: page-padding each plane costs a ~20 KiB floor per
  /// sketched language, which defeats small-width sketches entirely, while
  /// 64-byte alignment preserves the only property Estimate() needs (no
  /// counter read straddles a cache line). Every blob is a whole multiple
  /// of kPlaneAlign bytes.
  static constexpr size_t kPlaneAlign = 64;
  static constexpr char kFrozenMagic[9] = "CMSKETCH";  ///< 8 on-disk bytes
  static constexpr size_t kFrozenHeadBytes = 48;  ///< magic + 5 u64 fields

  /// \brief Appends the frozen blob: magic, u64 width/depth/total/
  /// plane_stride/planes_off, depth x (u64 a, u64 b), zero pad to
  /// planes_off, then the counter planes (each zero-padded to plane_stride).
  /// Deterministic: the same sketch always produces the same bytes.
  void AppendFrozen(std::string* out) const;

  /// \brief Bytes AppendFrozen will emit for these dimensions.
  static size_t FrozenBytes(size_t width, size_t depth);

  /// \brief Zero-copy read view over a frozen blob (typically inside an
  /// mmapped ADMODEL2 SKCH section). Counter planes are read in place; only
  /// the depth hash parameters (<= 64 pairs) are materialised at
  /// FromBytes time. Estimate() is bit-identical to the owning sketch's.
  class FrozenView {
   public:
    FrozenView() = default;

    /// \brief Validates and adopts `data[0, len)`. Fail-closed: returns
    /// IOError when the blob is shorter than its header claims (truncation)
    /// and Corruption for structural damage (bad magic, implausible
    /// dimensions, misaligned offsets). `data` must stay mapped for the
    /// view's lifetime and be 8-byte aligned.
    static Result<FrozenView> FromBytes(const void* data, size_t len);

    /// Point estimate: min over rows, same hash mapping as the owning
    /// sketch.
    uint64_t Estimate(uint64_t key) const;

    /// Count–mean–min estimate; bit-identical to the owning sketch's
    /// EstimateCorrected. See CountMinSketch::EstimateCorrected.
    uint64_t EstimateCorrected(uint64_t key) const;

    uint64_t TotalMass() const { return total_; }
    size_t width() const { return width_; }
    size_t depth() const { return hashes_.size(); }
    /// Bytes of live counter storage (width * depth * 4), excluding padding.
    size_t CounterBytes() const {
      return width_ * hashes_.size() * sizeof(uint32_t);
    }
    /// Total frozen blob bytes consumed from the mapping.
    size_t bytes() const { return bytes_; }
    bool valid() const { return base_ != nullptr; }

    /// \brief Re-emits the exact blob bytes (for re-serialising a mapped
    /// model without thawing).
    void AppendTo(std::string* out) const;

    /// \brief Deep-copies into an owning sketch (v1 serialisation of mapped
    /// models needs mutable access).
    CountMinSketch Thaw() const;

   private:
    const uint8_t* base_ = nullptr;
    const uint8_t* planes_ = nullptr;
    size_t bytes_ = 0;
    size_t width_ = 0;
    size_t plane_stride_ = 0;
    uint64_t total_ = 0;
    std::vector<PairwiseHash> hashes_;
  };

 private:
  size_t width_;
  std::vector<PairwiseHash> hashes_;  // one per row
  std::vector<uint32_t> rows_;        // depth * width, row-major
  uint64_t total_ = 0;
};

}  // namespace autodetect
