#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "io/serde.h"

/// \file count_min.h
/// Count–min sketch (Cormode & Muthukrishnan 2005), used per paper Sec. 3.4
/// to compress per-language co-occurrence dictionaries by 10–100x. The
/// sketch never underestimates: estimate(k) >= true(k), and with
/// width = ceil(e/eps), depth = ceil(ln(1/delta)) it overestimates by at
/// most eps*N with probability 1-delta (N = total inserted mass).

namespace autodetect {

class CountMinSketch {
 public:
  /// \brief Direct sizing. \param width counters per row, \param depth rows.
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0xc0ffee);

  /// \brief Sizing from the (eps, delta) guarantee.
  static CountMinSketch FromErrorBounds(double epsilon, double delta,
                                        uint64_t seed = 0xc0ffee);

  /// \brief Sizes the sketch to approximately `budget_bytes` of counter
  /// storage with the given depth.
  static CountMinSketch FromMemoryBudget(size_t budget_bytes, size_t depth = 4,
                                         uint64_t seed = 0xc0ffee);

  /// Adds `count` to key. Counters saturate instead of wrapping.
  void Add(uint64_t key, uint64_t count = 1);

  /// Point estimate: min over rows. Never below the true count.
  uint64_t Estimate(uint64_t key) const;

  /// Conservative update variant of Add: only raises counters that are
  /// below the new estimate. Strictly reduces overestimation on skewed
  /// (power-law) key distributions — the distribution shape the paper
  /// observes for real co-occurrence counts.
  void AddConservative(uint64_t key, uint64_t count = 1);

  /// Total mass inserted (sum of all Add counts).
  uint64_t TotalMass() const { return total_; }

  size_t width() const { return width_; }
  size_t depth() const { return rows_.size() / (width_ ? width_ : 1); }

  /// Bytes of counter storage (the dominant memory term).
  size_t MemoryBytes() const { return rows_.size() * sizeof(uint32_t); }

  void Serialize(BinaryWriter* writer) const;
  static Result<CountMinSketch> Deserialize(BinaryReader* reader);

 private:
  size_t width_;
  std::vector<PairwiseHash> hashes_;  // one per row
  std::vector<uint32_t> rows_;        // depth * width, row-major
  uint64_t total_ = 0;
};

}  // namespace autodetect
