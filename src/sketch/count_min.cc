#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace autodetect {

namespace {
constexpr uint32_t kCounterMax = std::numeric_limits<uint32_t>::max();

uint32_t SaturatingAdd(uint32_t a, uint64_t b) {
  uint64_t sum = static_cast<uint64_t>(a) + b;
  return sum > kCounterMax ? kCounterMax : static_cast<uint32_t>(sum);
}
}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(std::max<size_t>(1, width)) {
  depth = std::max<size_t>(1, depth);
  Pcg32 rng(seed);
  hashes_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    hashes_.emplace_back(rng.NextU64() % (PairwiseHash::kPrime - 1) + 1,
                         rng.NextU64() % PairwiseHash::kPrime);
  }
  rows_.assign(depth * width_, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double epsilon, double delta,
                                               uint64_t seed) {
  AD_CHECK(epsilon > 0 && epsilon < 1);
  AD_CHECK(delta > 0 && delta < 1);
  size_t width = static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<size_t>(1, depth), seed);
}

CountMinSketch CountMinSketch::FromMemoryBudget(size_t budget_bytes, size_t depth,
                                                uint64_t seed) {
  depth = std::max<size_t>(1, depth);
  size_t counters = std::max<size_t>(depth, budget_bytes / sizeof(uint32_t));
  return CountMinSketch(counters / depth, depth, seed);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  const size_t d = hashes_.size();
  for (size_t i = 0; i < d; ++i) {
    size_t idx = i * width_ + hashes_[i](key, width_);
    rows_[idx] = SaturatingAdd(rows_[idx], count);
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t best = kCounterMax;
  const size_t d = hashes_.size();
  for (size_t i = 0; i < d; ++i) {
    best = std::min(best, rows_[i * width_ + hashes_[i](key, width_)]);
  }
  return best;
}

void CountMinSketch::AddConservative(uint64_t key, uint64_t count) {
  const size_t d = hashes_.size();
  uint64_t target = Estimate(key) + count;
  for (size_t i = 0; i < d; ++i) {
    size_t idx = i * width_ + hashes_[i](key, width_);
    if (rows_[idx] < target) {
      rows_[idx] = target > kCounterMax ? kCounterMax : static_cast<uint32_t>(target);
    }
  }
  total_ += count;
}

void CountMinSketch::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(width_);
  writer->WriteU64(hashes_.size());
  for (const auto& h : hashes_) {
    writer->WriteU64(h.a());
    writer->WriteU64(h.b());
  }
  writer->WriteU64(total_);
  writer->WriteU64(rows_.size());
  for (uint32_t v : rows_) writer->WriteU32(v);
}

Result<CountMinSketch> CountMinSketch::Deserialize(BinaryReader* reader) {
  AD_ASSIGN_OR_RETURN(uint64_t width, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t depth, reader->ReadU64());
  if (width == 0 || depth == 0 || width * depth > (1ULL << 33)) {
    return Status::Corruption("implausible sketch dimensions");
  }
  CountMinSketch sketch(1, 1);
  sketch.width_ = static_cast<size_t>(width);
  sketch.hashes_.clear();
  for (uint64_t i = 0; i < depth; ++i) {
    AD_ASSIGN_OR_RETURN(uint64_t a, reader->ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t b, reader->ReadU64());
    sketch.hashes_.emplace_back(a, b);
  }
  AD_ASSIGN_OR_RETURN(sketch.total_, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n != width * depth) return Status::Corruption("sketch size mismatch");
  sketch.rows_.resize(static_cast<size_t>(n));
  for (auto& v : sketch.rows_) {
    AD_ASSIGN_OR_RETURN(v, reader->ReadU32());
  }
  return sketch;
}

}  // namespace autodetect
