#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace autodetect {

namespace {
constexpr uint32_t kCounterMax = std::numeric_limits<uint32_t>::max();

uint32_t SaturatingAdd(uint32_t a, uint64_t b) {
  uint64_t sum = static_cast<uint64_t>(a) + b;
  return sum > kCounterMax ? kCounterMax : static_cast<uint32_t>(sum);
}

size_t RoundUpTo(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Shared tail of the count-mean-min estimators: median of the
/// noise-corrected row values, clamped into [0, min_est].
uint64_t CorrectedMedian(double* vals, size_t d, uint64_t min_est) {
  std::sort(vals, vals + d);
  double med =
      (d & 1) ? vals[d / 2] : 0.5 * (vals[d / 2 - 1] + vals[d / 2]);
  if (med <= 0) return 0;
  uint64_t rounded = static_cast<uint64_t>(med + 0.5);
  return rounded < min_est ? rounded : min_est;
}

/// Depth cap for the estimators' stack scratch. FrozenView::FromBytes
/// rejects depth > 64 outright; deeper owned sketches (possible via the
/// direct constructor) just fall back to the plain min estimate.
constexpr size_t kMaxCorrectedDepth = 64;
}  // namespace

constexpr char CountMinSketch::kFrozenMagic[9];

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(std::max<size_t>(1, width)) {
  depth = std::max<size_t>(1, depth);
  Pcg32 rng(seed);
  hashes_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    hashes_.emplace_back(rng.NextU64() % (PairwiseHash::kPrime - 1) + 1,
                         rng.NextU64() % PairwiseHash::kPrime);
  }
  rows_.assign(depth * width_, 0);
}

CountMinSketch CountMinSketch::FromErrorBounds(double epsilon, double delta,
                                               uint64_t seed) {
  AD_CHECK(epsilon > 0 && epsilon < 1);
  AD_CHECK(delta > 0 && delta < 1);
  size_t width = static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<size_t>(1, depth), seed);
}

size_t CountMinSketch::WidthForBudget(size_t budget_bytes, size_t depth) {
  depth = std::max<size_t>(1, depth);
  size_t max_counters = budget_bytes / (depth * sizeof(uint32_t));
  size_t width = 1;
  while (width <= max_counters / 2) width *= 2;
  return width;
}

size_t CountMinSketch::PlannedBytes(size_t budget_bytes, size_t depth) {
  depth = std::max<size_t>(1, depth);
  return WidthForBudget(budget_bytes, depth) * depth * sizeof(uint32_t);
}

CountMinSketch CountMinSketch::FromMemoryBudget(size_t budget_bytes, size_t depth,
                                                uint64_t seed) {
  depth = std::max<size_t>(1, depth);
  return CountMinSketch(WidthForBudget(budget_bytes, depth), depth, seed);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  const size_t d = hashes_.size();
  for (size_t i = 0; i < d; ++i) {
    size_t idx = i * width_ + hashes_[i](key, width_);
    rows_[idx] = SaturatingAdd(rows_[idx], count);
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t best = kCounterMax;
  const size_t d = hashes_.size();
  for (size_t i = 0; i < d; ++i) {
    best = std::min(best, rows_[i * width_ + hashes_[i](key, width_)]);
  }
  return best;
}

uint64_t CountMinSketch::EstimateCorrected(uint64_t key) const {
  const size_t d = hashes_.size();
  const uint64_t min_est = Estimate(key);
  if (width_ < 2 || d > kMaxCorrectedDepth) return min_est;
  double vals[kMaxCorrectedDepth];
  const double denom = static_cast<double>(width_ - 1);
  for (size_t i = 0; i < d; ++i) {
    const uint32_t c = rows_[i * width_ + hashes_[i](key, width_)];
    const uint64_t off_mass = total_ > c ? total_ - c : 0;
    vals[i] = static_cast<double>(c) - static_cast<double>(off_mass) / denom;
  }
  return CorrectedMedian(vals, d, min_est);
}

void CountMinSketch::AddConservative(uint64_t key, uint64_t count) {
  const size_t d = hashes_.size();
  uint64_t target = Estimate(key) + count;
  for (size_t i = 0; i < d; ++i) {
    size_t idx = i * width_ + hashes_[i](key, width_);
    if (rows_[idx] < target) {
      rows_[idx] = target > kCounterMax ? kCounterMax : static_cast<uint32_t>(target);
    }
  }
  total_ += count;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (width_ != other.width_ || hashes_.size() != other.hashes_.size()) {
    return Status::Invalid("cannot merge sketches with different dimensions");
  }
  for (size_t i = 0; i < hashes_.size(); ++i) {
    if (hashes_[i].a() != other.hashes_[i].a() ||
        hashes_[i].b() != other.hashes_[i].b()) {
      return Status::Invalid("cannot merge sketches with different hash seeds");
    }
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    rows_[i] = SaturatingAdd(rows_[i], other.rows_[i]);
  }
  total_ += other.total_;
  return Status::OK();
}

void CountMinSketch::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(width_);
  writer->WriteU64(hashes_.size());
  for (const auto& h : hashes_) {
    writer->WriteU64(h.a());
    writer->WriteU64(h.b());
  }
  writer->WriteU64(total_);
  writer->WriteU64(rows_.size());
  for (uint32_t v : rows_) writer->WriteU32(v);
}

Result<CountMinSketch> CountMinSketch::Deserialize(BinaryReader* reader) {
  AD_ASSIGN_OR_RETURN(uint64_t width, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t depth, reader->ReadU64());
  if (width == 0 || depth == 0 || width * depth > (1ULL << 33)) {
    return Status::Corruption("implausible sketch dimensions");
  }
  CountMinSketch sketch(1, 1);
  sketch.width_ = static_cast<size_t>(width);
  sketch.hashes_.clear();
  for (uint64_t i = 0; i < depth; ++i) {
    AD_ASSIGN_OR_RETURN(uint64_t a, reader->ReadU64());
    AD_ASSIGN_OR_RETURN(uint64_t b, reader->ReadU64());
    sketch.hashes_.emplace_back(a, b);
  }
  AD_ASSIGN_OR_RETURN(sketch.total_, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n != width * depth) return Status::Corruption("sketch size mismatch");
  sketch.rows_.resize(static_cast<size_t>(n));
  for (auto& v : sketch.rows_) {
    AD_ASSIGN_OR_RETURN(v, reader->ReadU32());
  }
  return sketch;
}

size_t CountMinSketch::FrozenBytes(size_t width, size_t depth) {
  size_t planes_off = RoundUpTo(kFrozenHeadBytes + depth * 16, kPlaneAlign);
  size_t stride = RoundUpTo(width * sizeof(uint32_t), kPlaneAlign);
  return planes_off + depth * stride;
}

void CountMinSketch::AppendFrozen(std::string* out) const {
  const size_t depth = hashes_.size();
  const size_t stride = RoundUpTo(width_ * sizeof(uint32_t), kPlaneAlign);
  const size_t planes_off = RoundUpTo(kFrozenHeadBytes + depth * 16, kPlaneAlign);
  const size_t start = out->size();
  out->append(kFrozenMagic, 8);
  AppendU64(out, width_);
  AppendU64(out, depth);
  AppendU64(out, total_);
  AppendU64(out, stride);
  AppendU64(out, planes_off);
  for (const auto& h : hashes_) {
    AppendU64(out, h.a());
    AppendU64(out, h.b());
  }
  out->append(start + planes_off - out->size(), '\0');
  for (size_t i = 0; i < depth; ++i) {
    out->append(reinterpret_cast<const char*>(rows_.data() + i * width_),
                width_ * sizeof(uint32_t));
    out->append(stride - width_ * sizeof(uint32_t), '\0');
  }
  AD_DCHECK(out->size() - start == FrozenBytes(width_, depth));
}

Result<CountMinSketch::FrozenView> CountMinSketch::FrozenView::FromBytes(
    const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (reinterpret_cast<uintptr_t>(p) % 8 != 0) {
    return Status::Corruption("frozen sketch blob is not 8-byte aligned");
  }
  if (len < kFrozenHeadBytes) {
    return Status::IOError("truncated frozen sketch: header needs " +
                           std::to_string(kFrozenHeadBytes) + " bytes, got " +
                           std::to_string(len));
  }
  if (std::memcmp(p, kFrozenMagic, 8) != 0) {
    return Status::Corruption("frozen sketch: bad magic");
  }
  uint64_t head[5];
  std::memcpy(head, p + 8, sizeof(head));
  const uint64_t width = head[0], depth = head[1], total = head[2];
  const uint64_t stride = head[3], planes_off = head[4];
  if (width == 0 || width > (1ULL << 31) || depth == 0 || depth > 64) {
    return Status::Corruption("frozen sketch: implausible dimensions (width " +
                              std::to_string(width) + ", depth " +
                              std::to_string(depth) + ")");
  }
  if (stride < width * sizeof(uint32_t) || stride % 8 != 0 ||
      stride > (1ULL << 33)) {
    return Status::Corruption("frozen sketch: bad plane stride");
  }
  if (planes_off < kFrozenHeadBytes + depth * 16 || planes_off % 8 != 0 ||
      planes_off > (1ULL << 20)) {
    return Status::Corruption("frozen sketch: bad planes offset");
  }
  const uint64_t required = planes_off + depth * stride;
  if (required > len) {
    return Status::IOError("truncated frozen sketch: needs " +
                           std::to_string(required) + " bytes, got " +
                           std::to_string(len));
  }
  FrozenView view;
  view.base_ = p;
  view.planes_ = p + planes_off;
  view.bytes_ = static_cast<size_t>(required);
  view.width_ = static_cast<size_t>(width);
  view.plane_stride_ = static_cast<size_t>(stride);
  view.total_ = total;
  view.hashes_.reserve(depth);
  const uint8_t* params = p + kFrozenHeadBytes;
  for (uint64_t i = 0; i < depth; ++i) {
    uint64_t ab[2];
    std::memcpy(ab, params + i * 16, sizeof(ab));
    view.hashes_.emplace_back(ab[0], ab[1]);
  }
  return view;
}

uint64_t CountMinSketch::FrozenView::Estimate(uint64_t key) const {
  uint32_t best = kCounterMax;
  const size_t d = hashes_.size();
  for (size_t i = 0; i < d; ++i) {
    const uint32_t* plane =
        reinterpret_cast<const uint32_t*>(planes_ + i * plane_stride_);
    best = std::min(best, plane[hashes_[i](key, width_)]);
  }
  return best;
}

uint64_t CountMinSketch::FrozenView::EstimateCorrected(uint64_t key) const {
  const size_t d = hashes_.size();
  const uint64_t min_est = Estimate(key);
  if (width_ < 2) return min_est;
  double vals[kMaxCorrectedDepth];  // FromBytes rejects depth > 64
  const double denom = static_cast<double>(width_ - 1);
  for (size_t i = 0; i < d; ++i) {
    const uint32_t* plane =
        reinterpret_cast<const uint32_t*>(planes_ + i * plane_stride_);
    const uint32_t c = plane[hashes_[i](key, width_)];
    const uint64_t off_mass = total_ > c ? total_ - c : 0;
    vals[i] = static_cast<double>(c) - static_cast<double>(off_mass) / denom;
  }
  return CorrectedMedian(vals, d, min_est);
}

void CountMinSketch::FrozenView::AppendTo(std::string* out) const {
  out->append(reinterpret_cast<const char*>(base_), bytes_);
}

CountMinSketch CountMinSketch::FrozenView::Thaw() const {
  CountMinSketch sketch(1, 1);
  sketch.width_ = width_;
  sketch.hashes_ = hashes_;
  sketch.total_ = total_;
  sketch.rows_.resize(hashes_.size() * width_);
  for (size_t i = 0; i < hashes_.size(); ++i) {
    std::memcpy(sketch.rows_.data() + i * width_, planes_ + i * plane_stride_,
                width_ * sizeof(uint32_t));
  }
  return sketch;
}

}  // namespace autodetect
