#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace autodetect {

namespace {

Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<int> RawConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("unparseable IPv4 address '" + resolved + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Status::IOError(
        StrFormat("connect %s:%u: %s", resolved.c_str(), unsigned{port},
                  std::strerror(errno)));
    ::close(fd);
    return err;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<WireClient> WireClient::Connect(const std::string& host, uint16_t port) {
  AD_ASSIGN_OR_RETURN(int fd, RawConnect(host, port));
  WireClient client(fd);
  Status preamble = SendAll(fd, std::string_view(kWireMagic, kWireMagicLen));
  if (!preamble.ok()) {
    client.Close();
    return preamble;
  }
  return client;
}

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)), limits_(other.limits_) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    limits_ = other.limits_;
    other.fd_ = -1;
  }
  return *this;
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireClient::SendRequest(const WireRequest& request) {
  if (fd_ < 0) return Status::Invalid("client is closed");
  return SendAll(fd_, EncodeRequestFrame(request));
}

Status WireClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Invalid("client is closed");
  return SendAll(fd_, bytes);
}

Result<FrameView> WireClient::ReadFrame() {
  while (true) {
    AD_ASSIGN_OR_RETURN(std::optional<FrameView> frame,
                        PeekFrame(buffer_, limits_));
    if (frame.has_value()) return *frame;
    char chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-frame");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<WireBatchResult> WireClient::ReadBatch(uint64_t request_id) {
  auto finish = [](WireBatchResult&& result) {
    std::sort(result.reports.begin(), result.reports.end(),
              [](const WireReport& a, const WireReport& b) {
                return a.column_index < b.column_index;
              });
    return std::move(result);
  };

  // The batch may already have drained into the pending store while an
  // earlier ReadBatch chased a different request_id.
  auto ready = pending_.find(request_id);
  if (ready != pending_.end() && (ready->second.done || ready->second.errored)) {
    WireBatchResult result = std::move(ready->second);
    pending_.erase(ready);
    return finish(std::move(result));
  }

  while (true) {
    AD_ASSIGN_OR_RETURN(FrameView frame, ReadFrame());
    // The view aliases buffer_; decode before consuming.
    switch (frame.type) {
      case FrameType::kColumnReport: {
        AD_ASSIGN_OR_RETURN(WireReport report,
                            DecodeReportPayload(frame.payload, limits_));
        pending_[report.request_id].reports.push_back(std::move(report));
        break;
      }
      case FrameType::kBatchDone: {
        AD_ASSIGN_OR_RETURN(WireBatchDone done,
                            DecodeBatchDonePayload(frame.payload));
        pending_[done.request_id].done = true;
        break;
      }
      case FrameType::kError: {
        AD_ASSIGN_OR_RETURN(WireError error,
                            DecodeErrorPayload(frame.payload, limits_));
        // request_id 0 marks a connection-level failure (the server closes
        // after it): it terminates whoever is waiting, not a specific batch.
        uint64_t id = error.request_id == 0 ? request_id : error.request_id;
        WireBatchResult& entry = pending_[id];
        entry.errored = true;
        entry.error = std::move(error);
        break;
      }
      case FrameType::kDetectRequest:
        return Status::Corruption("server sent a client-only frame type");
    }
    buffer_.erase(0, frame.frame_len);
    auto it = pending_.find(request_id);
    if (it != pending_.end() && (it->second.done || it->second.errored)) {
      WireBatchResult result = std::move(it->second);
      pending_.erase(it);
      return finish(std::move(result));
    }
  }
}

namespace {

Result<HttpResult> HttpRoundTrip(const std::string& host, uint16_t port,
                                 const std::string& raw_request) {
  AD_ASSIGN_OR_RETURN(int fd, RawConnect(host, port));
  Status sent = SendAll(fd, raw_request);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  std::string response;
  char chunk[65536];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) break;  // Connection: close framing
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  // Ignore interim 100-continue responses.
  while (response.rfind("HTTP/1.1 100", 0) == 0) {
    size_t end = response.find("\r\n\r\n");
    if (end == std::string::npos) break;
    response.erase(0, end + 4);
  }
  if (response.rfind("HTTP/1.", 0) != 0) {
    return Status::Corruption("response is not HTTP");
  }
  size_t sp = response.find(' ');
  HttpResult result;
  result.status_code = std::atoi(response.c_str() + sp + 1);
  size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::Corruption("response has no header terminator");
  }
  result.body = response.substr(head_end + 4);
  return result;
}

}  // namespace

Result<HttpResult> HttpGet(const std::string& host, uint16_t port,
                           const std::string& target) {
  std::string request = StrFormat(
      "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n",
      target.c_str(), host.c_str());
  return HttpRoundTrip(host, port, request);
}

Result<HttpResult> HttpPost(const std::string& host, uint16_t port,
                            const std::string& target, const std::string& body,
                            const std::string& content_type) {
  std::string request = StrFormat(
      "POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: %s\r\n"
      "Content-Length: %zu\r\nConnection: close\r\n\r\n",
      target.c_str(), host.c_str(), content_type.c_str(), body.size());
  request.append(body);
  return HttpRoundTrip(host, port, request);
}

}  // namespace autodetect
