#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/wire.h"

/// \file client.h
/// Blocking client helpers for the network server — the loopback half of
/// tests/net_test.cc and tools/serve_smoke.cpp. Deliberately simple
/// (blocking sockets, one thread): the server is the async party; clients
/// exist to prove the protocol from the outside.

namespace autodetect {

/// Everything the server sent back for one request_id.
struct WireBatchResult {
  /// Sorted by column_index on return (the wire may deliver out of order).
  std::vector<WireReport> reports;
  bool done = false;       ///< kBatchDone seen
  bool errored = false;    ///< kError seen (terminal; reports may be partial)
  WireError error;
};

/// A blocking ADWIRE1 connection. Movable, not copyable; closes on destroy.
class WireClient {
 public:
  /// Connects and sends the protocol preamble.
  static Result<WireClient> Connect(const std::string& host, uint16_t port);

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  Status SendRequest(const WireRequest& request);
  /// Raw bytes straight onto the socket (malformed-frame tests).
  Status SendRaw(std::string_view bytes);

  /// Reads frames until `request_id`'s kBatchDone or a kError arrives.
  /// Frames for other request_ids seen along the way accumulate in a
  /// pending store, so interleaved batches on one connection can be read in
  /// any order. Fails on disconnect or an undecodable server frame.
  Result<WireBatchResult> ReadBatch(uint64_t request_id);

  void Close();
  int fd() const { return fd_; }

 private:
  explicit WireClient(int fd) : fd_(fd) {}
  Result<FrameView> ReadFrame();

  int fd_ = -1;
  std::string buffer_;
  WireLimits limits_;
  /// Batches whose frames arrived while draining a different request_id.
  std::map<uint64_t, WireBatchResult> pending_;
};

/// A parsed HTTP exchange result.
struct HttpResult {
  int status_code = 0;
  std::string body;
};

/// One-shot blocking HTTP requests against the server (Connection: close).
Result<HttpResult> HttpGet(const std::string& host, uint16_t port,
                           const std::string& target);
Result<HttpResult> HttpPost(const std::string& host, uint16_t port,
                            const std::string& target, const std::string& body,
                            const std::string& content_type = "application/json");

/// Opens a raw TCP connection (protocol-less, for slow-loris/garbage tests).
Result<int> RawConnect(const std::string& host, uint16_t port);

}  // namespace autodetect
