#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/json.h"

namespace autodetect {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// An admission-refused column's report: name echoed, status accurate.
DetectReport ShedReportFor(const WireColumn& column, const std::string& tag) {
  DetectReport report;
  report.name = column.name;
  report.tag = tag;
  report.status = ColumnStatus::kShed;
  return report;
}

bool CaseInsensitiveContains(std::string_view haystack, std::string_view lower_needle) {
  if (lower_needle.empty()) return true;
  for (size_t i = 0; i + lower_needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < lower_needle.size() &&
           std::tolower(static_cast<unsigned char>(haystack[i + j])) ==
               lower_needle[j]) {
      ++j;
    }
    if (j == lower_needle.size()) return true;
  }
  return false;
}

}  // namespace

/// One accepted connection. The event loop owns reads, protocol parsing and
/// the socket itself; dispatch threads only ever append to `outbuf` (under
/// `mu`) and wake the loop to flush — single-writer discipline on the fd.
struct Server::Conn {
  int fd = -1;
  Loop* loop = nullptr;
  enum class Mode { kSniff, kWire, kHttp };

  // Loop-thread-only state.
  Mode mode = Mode::kSniff;
  std::string inbuf;
  std::chrono::steady_clock::time_point last_rx;
  bool sent_continue = false;  ///< HTTP 100-continue already answered

  // Cross-thread state, under `mu`.
  std::mutex mu;
  std::string outbuf;
  bool close_after_flush = false;
  bool kill = false;    ///< loop must close without waiting for a flush
  bool closed = false;  ///< fd closed; all sends drop
  uint64_t next_local_id = 1;
  std::unordered_map<uint64_t, CancelSource> inflight;

  std::atomic<size_t> inflight_count{0};  ///< lock-free view for the sweeper
};

/// One event-loop thread: its own SO_REUSEPORT listener, epoll set and
/// eventfd; the kernel spreads incoming connections across the listeners.
struct Server::Loop {
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  size_t heartbeat_id = 0;  ///< watchdog slot, valid when a watchdog is set
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;  // loop thread only
  std::mutex pending_mu;
  std::vector<std::shared_ptr<Conn>> pending;  ///< conns with fresh outbuf/kill
};

/// Streams ADWIRE1 report frames as the executor delivers columns, mapping
/// tenant-ticket shedding onto accurate kShed statuses. Thread-safe (called
/// concurrently from engine workers).
class Server::WireSink : public ReportSink {
 public:
  WireSink(Server* server, std::shared_ptr<Conn> conn, uint64_t request_id)
      : server_(server), conn_(std::move(conn)), request_id_(request_id) {}

  void OnReport(size_t index, DetectReport&& report) override {
    WireReport wire;
    wire.request_id = request_id_;
    wire.column_index = index;
    wire.report = std::move(report);
    std::string frame = EncodeReportFrame(wire);
    server_->metrics_.frames_out->Add(1);
    server_->SendToConn(conn_, std::move(frame));
  }

 private:
  Server* server_;
  std::shared_ptr<Conn> conn_;
  uint64_t request_id_;
};

namespace {

/// Wraps a protocol sink with tenant-admission semantics: when the batch's
/// ticket is shed mid-flight (a shed-oldest victim), unscanned columns are
/// cancelled promptly and their statuses rewritten from the cancellation
/// statuses to the truthful kShed. Thread-safe.
///
/// Shed accounting invariant: every kShed report charges exactly one
/// serve.admission.* counter. Columns the ENGINE shed (its own admission
/// controller) were already counted there, so this sink only tallies the
/// columns IT relabeled — the caller charges those, and only those, to the
/// tenant's controller.
class TicketSink : public ReportSink {
 public:
  TicketSink(ReportSink& inner, AdmissionController::Ticket* ticket,
             CancelSource source)
      : inner_(inner), ticket_(ticket), source_(std::move(source)) {}

  void OnReport(size_t index, DetectReport&& report) override {
    if (ticket_ != nullptr && ticket_->shed()) {
      // First observation of the shed flag: cancel the batch so columns not
      // yet started stop costing workers, then relabel the cancellations.
      source_.Cancel();
      if (report.status == ColumnStatus::kCancelled ||
          report.status == ColumnStatus::kDeadlineExceeded) {
        report.status = ColumnStatus::kShed;
        relabeled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (report.status == ColumnStatus::kShed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
    inner_.OnReport(index, std::move(report));
  }

  size_t shed() const { return shed_.load(std::memory_order_relaxed); }
  size_t relabeled() const {
    return relabeled_.load(std::memory_order_relaxed);
  }

 private:
  ReportSink& inner_;
  AdmissionController::Ticket* ticket_;
  CancelSource source_;
  std::atomic<size_t> shed_{0};       ///< all kShed reports seen (return value)
  std::atomic<size_t> relabeled_{0};  ///< kShed minted here (tenant-charged)
};

/// Collects reports into index order for the buffered HTTP response.
/// Disjoint-slot writes; the executor's completion barrier publishes them.
class CollectSink : public ReportSink {
 public:
  explicit CollectSink(size_t columns) : reports_(columns) {}
  void OnReport(size_t index, DetectReport&& report) override {
    if (index < reports_.size()) reports_[index] = std::move(report);
  }
  std::vector<DetectReport>& reports() { return reports_; }

 private:
  std::vector<DetectReport> reports_;
};

}  // namespace

Server::Server(DetectionExecutor* executor, ServerOptions options)
    : executor_(executor),
      options_(std::move(options)),
      registry_(OrDefaultRegistry(options_.metrics)) {
  if (options_.num_acceptors == 0) options_.num_acceptors = 1;
  metrics_.connections = registry_->GetCounter("serve.net.connections_total");
  metrics_.active_connections = registry_->GetGauge("serve.net.active_connections");
  metrics_.bytes_read = registry_->GetCounter("serve.net.bytes_read_total");
  metrics_.bytes_written = registry_->GetCounter("serve.net.bytes_written_total");
  metrics_.frames_in = registry_->GetCounter("serve.net.frames_in_total");
  metrics_.frames_out = registry_->GetCounter("serve.net.frames_out_total");
  metrics_.http_requests = registry_->GetCounter("serve.net.http_requests_total");
  metrics_.requests = registry_->GetCounter("serve.net.requests_total");
  metrics_.request_latency_us =
      registry_->GetHistogram("serve.net.request_latency_us");
  metrics_.protocol_errors =
      registry_->GetCounter("serve.net.protocol_errors_total");
  metrics_.disconnect_cancels =
      registry_->GetCounter("serve.net.disconnect_cancels_total");
  metrics_.timeout_closes =
      registry_->GetCounter("serve.net.timeout_closes_total");
  metrics_.overflow_closes =
      registry_->GetCounter("serve.net.overflow_closes_total");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::Invalid("server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  std::string host = options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("unparseable IPv4 listen address '" + host + "'");
  }

  uint16_t bound_port = options_.port;
  auto cleanup = [this] {
    for (auto& loop : loops_) {
      if (loop->listen_fd >= 0) ::close(loop->listen_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    }
    loops_.clear();
  };

  for (size_t i = 0; i < options_.num_acceptors; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (loop->listen_fd < 0) {
      cleanup();
      return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    addr.sin_port = htons(bound_port);
    if (::bind(loop->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      Status err = Status::IOError(StrFormat("bind %s:%u: %s", host.c_str(),
                                             unsigned{bound_port},
                                             std::strerror(errno)));
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
      loops_.push_back(std::move(loop));
      cleanup();
      return err;
    }
    if (bound_port == 0) {
      // First listener picked the ephemeral port; the rest share it via
      // SO_REUSEPORT so the kernel load-balances accepts across loops.
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      ::getsockname(loop->listen_fd, reinterpret_cast<sockaddr*>(&actual), &len);
      bound_port = ntohs(actual.sin_port);
    }
    if (::listen(loop->listen_fd, 256) != 0) {
      Status err = Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
      loops_.push_back(std::move(loop));
      cleanup();
      return err;
    }
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->wake_fd < 0 || loop->epoll_fd < 0) {
      loops_.push_back(std::move(loop));
      cleanup();
      return Status::IOError("eventfd/epoll_create1 failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->listen_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->listen_fd, &ev);
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }

  port_ = bound_port;
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  if (options_.watchdog != nullptr) {
    // Register every loop's heartbeat slot before any loop thread runs, so
    // the watchdog's slot vector is stable while Beat races CheckNow.
    for (size_t i = 0; i < loops_.size(); ++i) {
      loops_[i]->heartbeat_id =
          options_.watchdog->RegisterHeartbeat(StrFormat("acceptor-%zu", i));
    }
  }
  dispatch_ = std::make_unique<ThreadPool>(options_.dispatch_threads);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { RunLoop(*raw); });
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) WakeLoop(*loop);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Loop exit closed every connection, which cancelled all in-flight
  // batches — the dispatch pool drains quickly, its sends dropping on the
  // closed connections. Only then is it safe to tear down the fds the
  // dispatch threads could still wake.
  dispatch_.reset();
  for (auto& loop : loops_) {
    if (loop->listen_fd >= 0) ::close(loop->listen_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    loop->listen_fd = loop->wake_fd = loop->epoll_fd = -1;
  }
  loops_.clear();
  started_ = false;
  running_.store(false, std::memory_order_release);
}

void Server::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // already draining
  }
  if (options_.health != nullptr) options_.health->SetDraining();
  // Each loop notices the flag on its next wakeup and closes its own
  // listener (listen_fd is loop-thread state; poking it cross-thread would
  // race the event dispatch).
  for (auto& loop : loops_) WakeLoop(*loop);
}

bool Server::AwaitDrain(uint64_t timeout_ms) {
  if (timeout_ms == 0) timeout_ms = options_.drain_timeout_ms;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (inflight_requests_.load(std::memory_order_acquire) == 0 &&
        outbuf_bytes_.load(std::memory_order_acquire) == 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void Server::WakeLoop(Loop& loop) {
  if (loop.wake_fd < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

void Server::SendToConn(const std::shared_ptr<Conn>& conn, std::string&& bytes) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed || conn->kill) return;
    conn->outbuf.append(bytes);
    outbuf_bytes_.fetch_add(static_cast<int64_t>(bytes.size()),
                            std::memory_order_acq_rel);
    if (conn->outbuf.size() > options_.max_outbuf_bytes) {
      // The client stopped reading while reports stream at it; holding the
      // backlog for a dead reader starves everyone else's memory.
      conn->kill = true;
      overflow = true;
    }
  }
  if (overflow) metrics_.overflow_closes->Add(1);
  Loop& loop = *conn->loop;
  {
    std::lock_guard<std::mutex> lock(loop.pending_mu);
    loop.pending.push_back(conn);
  }
  WakeLoop(loop);
}

void Server::RunLoop(Loop& loop) {
  std::vector<epoll_event> events(128);
  auto last_sweep = std::chrono::steady_clock::now();
  const auto sweep_every =
      std::chrono::milliseconds(std::max<uint64_t>(options_.sweep_interval_ms, 1));

  while (!stopping_.load(std::memory_order_acquire)) {
    if (options_.watchdog != nullptr) {
      options_.watchdog->Beat(loop.heartbeat_id);
    }
    if (draining_.load(std::memory_order_acquire) && loop.listen_fd >= 0) {
      // Drain: this loop stops accepting. Closing our SO_REUSEPORT listener
      // makes fresh connects fail fast at the TCP layer; requests already
      // buffered on live connections keep flowing to completion.
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, loop.listen_fd, nullptr);
      ::close(loop.listen_fd);
      loop.listen_fd = -1;
    }
    int n = ::epoll_wait(loop.epoll_fd, events.data(),
                         static_cast<int>(events.size()),
                         static_cast<int>(sweep_every.count()));
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        uint64_t drained;
        while (::read(loop.wake_fd, &drained, sizeof(drained)) > 0) {}
        continue;
      }
      if (fd == loop.listen_fd) {
        AcceptNew(loop);
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      uint32_t mask = events[i].events;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConn(loop, conn, /*cancel_inflight=*/true);
        continue;
      }
      if (mask & EPOLLIN) HandleReadable(loop, conn);
      if ((mask & EPOLLOUT) && loop.conns.count(fd)) FlushConn(loop, conn);
    }

    // Dispatch threads queued fresh output (or kill orders) and woke us.
    std::vector<std::shared_ptr<Conn>> pending;
    {
      std::lock_guard<std::mutex> lock(loop.pending_mu);
      pending.swap(loop.pending);
    }
    for (auto& conn : pending) {
      bool kill;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closed) continue;
        kill = conn->kill;
      }
      if (kill) {
        CloseConn(loop, conn, /*cancel_inflight=*/true);
      } else {
        FlushConn(loop, conn);
      }
    }

    // Timeout sweep: slow-loris partial requests get the short timeout,
    // idle keep-alive connections the long one.
    auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= sweep_every) {
      last_sweep = now;
      std::vector<std::shared_ptr<Conn>> victims;
      for (auto& [fd, conn] : loop.conns) {
        auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - conn->last_rx)
                           .count();
        // A connection that has bytes of an incomplete request buffered —
        // or never finished the protocol preamble — is "partial": a
        // legitimate client finishes a request quickly, a slow-loris
        // trickles forever.
        bool partial = !conn->inbuf.empty() || conn->mode == Conn::Mode::kSniff;
        bool busy = conn->inflight_count.load(std::memory_order_relaxed) > 0;
        if (partial && !busy &&
            idle_ms > static_cast<int64_t>(options_.partial_timeout_ms)) {
          victims.push_back(conn);
        } else if (!partial && !busy &&
                   idle_ms > static_cast<int64_t>(options_.idle_timeout_ms)) {
          victims.push_back(conn);
        }
      }
      for (auto& conn : victims) {
        metrics_.timeout_closes->Add(1);
        stat_timeout_closes_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, conn, /*cancel_inflight=*/true);
      }
    }
  }

  // Shutdown: close every connection, cancelling what is in flight so the
  // dispatch pool can drain fast.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(loop.conns.size());
  for (auto& [fd, conn] : loop.conns) all.push_back(conn);
  for (auto& conn : all) CloseConn(loop, conn, /*cancel_inflight=*/true);
}

void Server::AcceptNew(Loop& loop) {
  while (true) {
    if (AD_FAILPOINT("net.accept.fail")) return;  // simulated accept() error
    int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = &loop;
    conn->last_rx = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    loop.conns.emplace(fd, std::move(conn));
    metrics_.connections->Add(1);
    metrics_.active_connections->Add(1);
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(Loop& loop, const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (AD_FAILPOINT("net.read.oom")) {
        // Simulated allocation failure growing the receive buffer: the
        // connection fails closed instead of the process dying.
        CloseConn(loop, conn, /*cancel_inflight=*/true);
        return;
      }
      conn->inbuf.append(buf, static_cast<size_t>(n));
      conn->last_rx = std::chrono::steady_clock::now();
      metrics_.bytes_read->Add(static_cast<uint64_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      // Client hung up: whatever it had in flight is work nobody will read.
      CloseConn(loop, conn, /*cancel_inflight=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(loop, conn, /*cancel_inflight=*/true);
    return;
  }
  ProcessInbuf(loop, conn);
}

void Server::ProcessInbuf(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->mode == Conn::Mode::kSniff) {
    if (LooksLikeWirePreamble(conn->inbuf)) {
      if (conn->inbuf.size() < kWireMagicLen) return;  // partial preamble
      conn->inbuf.erase(0, kWireMagicLen);
      conn->mode = Conn::Mode::kWire;
    } else if (!conn->inbuf.empty()) {
      conn->mode = Conn::Mode::kHttp;
    } else {
      return;
    }
  }
  bool open = conn->mode == Conn::Mode::kWire ? ProcessWire(loop, conn)
                                              : ProcessHttp(loop, conn);
  (void)open;
}

/// Appends bytes from the loop thread and flushes immediately (same-thread
/// fast path for inline responses and error frames).
void Server::SendInline(Loop& loop, const std::shared_ptr<Conn>& conn,
                        std::string&& bytes, bool close_after) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->outbuf.append(bytes);
    outbuf_bytes_.fetch_add(static_cast<int64_t>(bytes.size()),
                            std::memory_order_acq_rel);
    if (close_after) conn->close_after_flush = true;
  }
  FlushConn(loop, conn);
}

bool Server::ProcessWire(Loop& loop, const std::shared_ptr<Conn>& conn) {
  while (true) {
    // Budget check straight off the length prefix: a hostile frame claiming
    // more than the per-request budget is refused from the 5-byte header
    // alone — its payload is never buffered, so resident memory stays
    // bounded no matter what the prefix claims.
    if (options_.memory != nullptr && conn->inbuf.size() >= kWireHeaderLen) {
      uint32_t claim = static_cast<uint8_t>(conn->inbuf[0]) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(conn->inbuf[1])) << 8) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(conn->inbuf[2])) << 16) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(conn->inbuf[3])) << 24);
      if (options_.memory->WouldExceedPerRequest(claim)) {
        // Run the claim through Admit so the rejection is counted and the
        // error message is the budget's own typed kResourceExhausted text.
        Status refused = options_.memory->Admit(claim).status();
        WireError error{0, std::string(refused.message())};
        SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/true);
        return false;
      }
    }
    auto peeked = PeekFrame(conn->inbuf, options_.wire_limits);
    if (!peeked.ok()) {
      // Framing is unrecoverable (oversized prefix / unknown type): answer
      // with one error frame and close — never crash, never guess.
      metrics_.protocol_errors->Add(1);
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireError error{0, std::string(peeked.status().message())};
      SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/true);
      return false;
    }
    if (!peeked.ValueOrDie().has_value()) return true;  // partial frame
    FrameView frame = *peeked.ValueOrDie();
    metrics_.frames_in->Add(1);

    if (frame.type != FrameType::kDetectRequest) {
      metrics_.protocol_errors->Add(1);
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireError error{0, StrFormat("unexpected client frame type %u",
                                   unsigned{static_cast<uint8_t>(frame.type)})};
      conn->inbuf.erase(0, frame.frame_len);
      SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/true);
      return false;
    }

    const size_t payload_bytes = frame.payload.size();
    auto decoded = DecodeRequestPayload(frame.payload, options_.wire_limits);
    conn->inbuf.erase(0, frame.frame_len);
    if (!decoded.ok()) {
      metrics_.protocol_errors->Add(1);
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireError error{0, std::string(decoded.status().message())};
      SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/true);
      return false;
    }
    WireRequest request = std::move(decoded).ValueOrDie();

    if (draining_.load(std::memory_order_acquire)) {
      // The frame was intact (the connection stays usable for the client's
      // earlier in-flight responses), but no new work starts during drain.
      WireError error{request.request_id,
                      "server draining; not accepting new requests"};
      SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/false);
      continue;
    }

    // Wire-decode charge: the decoded request's strings are alive from here
    // until the batch completes. A global-budget refusal is request-scoped
    // and retryable, so the connection stays open.
    MemoryBudget::Charge charge;
    if (options_.memory != nullptr) {
      auto admitted = options_.memory->Admit(payload_bytes);
      if (!admitted.ok()) {
        WireError error{request.request_id,
                        std::string(admitted.status().message())};
        SendInline(loop, conn, EncodeErrorFrame(error), /*close_after=*/false);
        continue;
      }
      charge = std::move(admitted).ValueOrDie();
    }

    // Register the request's cancellation scope before dispatch so a
    // disconnect observed by this loop reaches the batch immediately.
    CancelSource source =
        request.deadline_ms > 0
            ? CancelSource::WithDeadline(
                  std::chrono::milliseconds(request.deadline_ms))
            : CancelSource();
    uint64_t local_id;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      local_id = conn->next_local_id++;
      conn->inflight.emplace(local_id, source);
    }
    conn->inflight_count.fetch_add(1, std::memory_order_relaxed);
    inflight_requests_.fetch_add(1, std::memory_order_acq_rel);
    // Submit takes a copyable std::function; the move-only charge rides in
    // a shared_ptr.
    auto charge_box =
        std::make_shared<MemoryBudget::Charge>(std::move(charge));
    dispatch_->Submit([this, conn, request = std::move(request), local_id,
                       source = std::move(source), charge_box]() mutable {
      DispatchWireRequest(conn, std::move(request), local_id,
                          std::move(source), std::move(*charge_box));
    });
  }
}

bool Server::ProcessHttp(Loop& loop, const std::shared_ptr<Conn>& conn) {
  while (true) {
    // curl waits on "Expect: 100-continue" before sending larger bodies;
    // acknowledge as soon as the header block is complete.
    if (!conn->sent_continue) {
      size_t head_end = conn->inbuf.find("\r\n\r\n");
      if (head_end != std::string::npos &&
          CaseInsensitiveContains(
              std::string_view(conn->inbuf).substr(0, head_end),
              "100-continue")) {
        conn->sent_continue = true;
        SendInline(loop, conn, "HTTP/1.1 100 Continue\r\n\r\n",
                   /*close_after=*/false);
      }
    }

    auto parsed = ParseHttpRequest(conn->inbuf, options_.http_limits);
    if (!parsed.ok()) {
      metrics_.protocol_errors->Add(1);
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      int code = parsed.status().IsCapacityExceeded() ? 413 : 400;
      std::string body = "{\"error\":";
      AppendJsonString(&body, parsed.status().message());
      body.append("}\n");
      SendInline(loop, conn,
                 BuildHttpResponse(code, "application/json", body,
                                   /*keep_alive=*/false),
                 /*close_after=*/true);
      return false;
    }
    if (!parsed.ValueOrDie().has_value()) return true;  // incomplete
    HttpRequest request = std::move(*parsed.ValueOrDie());
    conn->inbuf.erase(0, request.consumed);
    conn->sent_continue = false;
    metrics_.http_requests->Add(1);
    stat_http_requests_.fetch_add(1, std::memory_order_relaxed);

    if (request.method == "GET" && request.target == "/metrics") {
      SendInline(loop, conn,
                 BuildHttpResponse(200, "text/plain; version=0.0.4",
                                   registry_->ToPrometheus(),
                                   request.keep_alive),
                 /*close_after=*/!request.keep_alive);
      continue;
    }
    if (request.method == "GET" && request.target == "/healthz") {
      // With a ladder: JSON state, 200 while serving (healthy/degraded),
      // 503 otherwise. Without one the endpoint still tells load balancers
      // about drain.
      std::string body;
      int code;
      if (options_.health != nullptr) {
        body = options_.health->ToJson();
        body.push_back('\n');
        code = options_.health->Serving() ? 200 : 503;
      } else if (draining_.load(std::memory_order_acquire)) {
        body = "{\"state\":\"draining\",\"draining\":true,\"conditions\":[]}\n";
        code = 503;
      } else {
        body = "{\"state\":\"healthy\",\"draining\":false,\"conditions\":[]}\n";
        code = 200;
      }
      SendInline(loop, conn,
                 BuildHttpResponse(code, "application/json", body,
                                   request.keep_alive),
                 /*close_after=*/!request.keep_alive);
      continue;
    }
    if (request.method == "POST" && request.target == "/drain") {
      BeginDrain();
      SendInline(loop, conn,
                 BuildHttpResponse(200, "application/json",
                                   "{\"state\":\"draining\"}\n",
                                   request.keep_alive),
                 /*close_after=*/!request.keep_alive);
      continue;
    }
    if (request.target == "/detect") {
      if (request.method != "POST") {
        SendInline(loop, conn,
                   BuildHttpResponse(405, "application/json",
                                     "{\"error\":\"POST required\"}\n",
                                     request.keep_alive),
                   /*close_after=*/!request.keep_alive);
        continue;
      }
      if (draining_.load(std::memory_order_acquire)) {
        SendInline(loop, conn,
                   BuildHttpResponse(
                       503, "application/json",
                       "{\"error\":\"server draining; not accepting new "
                       "requests\"}\n",
                       request.keep_alive, {{"Retry-After", "1"}}),
                   /*close_after=*/!request.keep_alive);
        continue;
      }
      MemoryBudget::Charge http_charge;
      if (options_.memory != nullptr) {
        auto admitted = options_.memory->Admit(request.body.size());
        if (!admitted.ok()) {
          std::string body = "{\"error\":";
          AppendJsonString(&body, admitted.status().message());
          body.append("}\n");
          SendInline(loop, conn,
                     BuildHttpResponse(503, "application/json", body,
                                       request.keep_alive,
                                       {{"Retry-After", "1"}}),
                     /*close_after=*/!request.keep_alive);
          continue;
        }
        http_charge = std::move(admitted).ValueOrDie();
      }
      auto wire = ParseJsonDetectRequest(request.body, options_.wire_limits);
      if (!wire.ok()) {
        metrics_.protocol_errors->Add(1);
        stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        std::string body = "{\"error\":";
        AppendJsonString(&body, wire.status().message());
        body.append("}\n");
        SendInline(loop, conn,
                   BuildHttpResponse(400, "application/json", body,
                                     request.keep_alive),
                   /*close_after=*/!request.keep_alive);
        continue;
      }
      WireRequest detect = std::move(wire).ValueOrDie();
      CancelSource source =
          detect.deadline_ms > 0
              ? CancelSource::WithDeadline(
                    std::chrono::milliseconds(detect.deadline_ms))
              : CancelSource();
      uint64_t local_id;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        local_id = conn->next_local_id++;
        conn->inflight.emplace(local_id, source);
      }
      conn->inflight_count.fetch_add(1, std::memory_order_relaxed);
      inflight_requests_.fetch_add(1, std::memory_order_acq_rel);
      bool keep_alive = request.keep_alive;
      auto charge_box =
          std::make_shared<MemoryBudget::Charge>(std::move(http_charge));
      dispatch_->Submit([this, conn, detect = std::move(detect), local_id,
                         source = std::move(source), keep_alive,
                         charge_box]() mutable {
        DispatchHttpDetect(conn, std::move(detect), local_id,
                           std::move(source), keep_alive,
                           std::move(*charge_box));
      });
      continue;
    }
    SendInline(loop, conn,
               BuildHttpResponse(404, "application/json",
                                 "{\"error\":\"unknown endpoint\"}\n",
                                 request.keep_alive),
               /*close_after=*/!request.keep_alive);
  }
}

size_t Server::RunDetect(const WireRequest& request, const CancelSource& source,
                         ReportSink& sink) {
  const auto start = std::chrono::steady_clock::now();
  metrics_.requests->Add(1);
  stat_requests_.fetch_add(1, std::memory_order_relaxed);

  AdmissionController* controller =
      options_.tenants == nullptr ? nullptr
                                  : options_.tenants->ControllerFor(request.tenant);
  std::shared_ptr<AdmissionController::Ticket> ticket;
  if (controller != nullptr) {
    ticket = controller->Admit(request.columns.size());
    if (ticket == nullptr) {
      // The tenant is over quota: every column comes back kShed — visible
      // in the reports AND in serve.admission.tenant.<name>.* — while
      // other tenants' capacity is untouched.
      for (size_t i = 0; i < request.columns.size(); ++i) {
        sink.OnReport(i, ShedReportFor(request.columns[i], request.tag));
      }
      controller->CountShedColumns(request.columns.size());
      metrics_.request_latency_us->Record(ElapsedUs(start));
      return request.columns.size();
    }
  }

  std::vector<DetectRequest> batch = ToDetectBatch(request);
  for (auto& r : batch) r.cancel = source.token();

  TicketSink ticketed(sink, ticket.get(), source);
  executor_->Detect(batch, ticketed);

  if (controller != nullptr) {
    // Charge the tenant only for columns the ticket sink relabeled; kShed
    // reports the engine produced were counted by its own controller, and
    // charging them twice would double every serve.admission.* total.
    if (ticketed.relabeled() > 0) {
      controller->CountShedColumns(ticketed.relabeled());
    }
    controller->Release(ticket);
  }
  metrics_.request_latency_us->Record(ElapsedUs(start));
  return ticketed.shed();
}

void Server::CompleteRequest(const std::shared_ptr<Conn>& conn,
                             uint64_t local_id) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->inflight.erase(local_id);
  }
  conn->inflight_count.fetch_sub(1, std::memory_order_relaxed);
}

void Server::FinishDispatched(const std::shared_ptr<Conn>& conn,
                              uint64_t local_id, std::string&& final_bytes) {
  // Deregister before the terminal bytes go out: a client that reads them
  // and closes instantly must not race CloseConn into counting a spurious
  // disconnect-cancel for an already-finished request. The drain-visible
  // in-flight count drops only after the bytes are buffered, so AwaitDrain
  // can never observe "nothing in flight, nothing buffered" while the
  // terminal response is still in this thread's hands.
  CompleteRequest(conn, local_id);
  if (!final_bytes.empty()) SendToConn(conn, std::move(final_bytes));
  inflight_requests_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::DispatchWireRequest(std::shared_ptr<Conn> conn, WireRequest request,
                                 uint64_t local_id, CancelSource source,
                                 MemoryBudget::Charge charge) {
  Watchdog::TaskScope watched(options_.watchdog, "wire");
  if (AD_FAILPOINT("serve.worker.wedge")) {
    // Chaos hook: park this worker long enough for the watchdog to flag it.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }
  // Materialization charge: RunDetect's ToDetectBatch copies every column
  // string. Refusal is the same typed error the admission path produces.
  if (!charge.Extend(WireRequestBytes(request))) {
    WireError error{request.request_id,
                    "ResourceExhausted: column materialization exceeds the "
                    "memory budget"};
    FinishDispatched(conn, local_id, EncodeErrorFrame(error));
    return;
  }
  WireSink sink(this, conn, request.request_id);
  RunDetect(request, source, sink);
  metrics_.frames_out->Add(1);
  FinishDispatched(conn, local_id,
                   EncodeBatchDoneFrame(
                       {request.request_id, request.columns.size()}));
}

void Server::DispatchHttpDetect(std::shared_ptr<Conn> conn, WireRequest request,
                                uint64_t local_id, CancelSource source,
                                bool keep_alive, MemoryBudget::Charge charge) {
  Watchdog::TaskScope watched(options_.watchdog, "http");
  if (AD_FAILPOINT("serve.worker.wedge")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }
  std::string response;
  if (!charge.Extend(WireRequestBytes(request))) {
    response = BuildHttpResponse(
        503, "application/json",
        "{\"error\":\"column materialization exceeds the memory budget\"}\n",
        keep_alive, {{"Retry-After", "1"}});
  } else {
    CollectSink sink(request.columns.size());
    RunDetect(request, source, sink);
    std::string body = DetectResponseToJson(request.request_id, sink.reports());
    body.push_back('\n');
    response = BuildHttpResponse(200, "application/json", body, keep_alive);
  }
  if (!keep_alive) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->close_after_flush = true;
  }
  FinishDispatched(conn, local_id, std::move(response));
}

void Server::FlushConn(Loop& loop, const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  bool want_out = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    while (!conn->outbuf.empty()) {
      ssize_t n = ::send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                         MSG_NOSIGNAL);
      if (n > 0) {
        metrics_.bytes_written->Add(static_cast<uint64_t>(n));
        conn->outbuf.erase(0, static_cast<size_t>(n));
        outbuf_bytes_.fetch_sub(n, std::memory_order_acq_rel);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Hard write error — peer vanished.
      close_now = true;
      break;
    }
    if (!close_now) {
      want_out = !conn->outbuf.empty();
      if (!want_out && conn->close_after_flush) close_now = true;
    }
  }
  if (close_now) {
    CloseConn(loop, conn, /*cancel_inflight=*/true);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                       bool cancel_inflight) {
  std::vector<CancelSource> sources;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    sources.reserve(conn->inflight.size());
    for (auto& [id, source] : conn->inflight) sources.push_back(source);
    conn->inflight.clear();
    // Whatever never reached the wire is dropped with the connection; the
    // drain accounting must not wait for bytes nobody can flush.
    outbuf_bytes_.fetch_sub(static_cast<int64_t>(conn->outbuf.size()),
                            std::memory_order_acq_rel);
    conn->outbuf.clear();
  }
  if (cancel_inflight && !sources.empty()) {
    // Disconnect-as-cancel: nobody will read these reports, so the engine
    // should stop scanning them at its next poll.
    for (auto& source : sources) source.Cancel();
    metrics_.disconnect_cancels->Add(sources.size());
    stat_disconnect_cancels_.fetch_add(sources.size(),
                                       std::memory_order_relaxed);
  }
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  loop.conns.erase(conn->fd);
  metrics_.active_connections->Add(-1);
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.connections = stat_connections_.load(std::memory_order_relaxed);
  stats.requests = stat_requests_.load(std::memory_order_relaxed);
  stats.http_requests = stat_http_requests_.load(std::memory_order_relaxed);
  stats.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  stats.disconnect_cancels =
      stat_disconnect_cancels_.load(std::memory_order_relaxed);
  stats.timeout_closes = stat_timeout_closes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace autodetect
