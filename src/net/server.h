#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "detect/api.h"
#include "net/http.h"
#include "net/tenant.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/lifecycle.h"

/// \file server.h
/// The asynchronous network front-end: `autodetect serve`. Thread-per-core
/// epoll event loops accept connections on one port shared via SO_REUSEPORT
/// and sniff the first bytes to pick the protocol — the ADWIRE1 binary
/// protocol (net/wire.h) or an HTTP/1.1 JSON fallback (net/http.h) for
/// curl/browser/Prometheus clients. Detection work never runs on an event
/// loop: complete requests are handed to a dispatch pool that drives the
/// DetectionExecutor's *streaming* API, so every column's report frame hits
/// the wire the moment that column finishes scanning — a client scanning a
/// wide table sees findings while the tail is still queued. (The HTTP
/// surface buffers one JSON response per request; streaming delivery is the
/// binary protocol's contract.)
///
/// Endpoints (HTTP): POST /detect (JSON body, see net/json.h),
/// GET /metrics (Prometheus text), GET /healthz.
///
/// Isolation and resilience:
///  * Per-tenant admission (net/tenant.h): each request's tenant resolves
///    to its own AdmissionController; an over-quota tenant's batches are
///    shed — with accurate kShed reports and
///    serve.admission.tenant.<name>.* counters — while other tenants'
///    capacity is untouched.
///  * Disconnect-as-cancel: every in-flight request holds a CancelSource;
///    when the client drops, the server fires it and the engine abandons
///    the batch's unscanned columns at the next poll. A dead client stops
///    costing CPU within one column's latency.
///  * Per-request deadlines: a wire/JSON `deadline_ms` becomes a
///    CancelSource::WithDeadline on the same token, so deadline expiry and
///    disconnect share one cooperative mechanism.
///  * Slow-loris defense: a sweeper closes connections that sit on a
///    partial request (or the protocol preamble) past
///    partial_timeout_ms — trickling one byte per second never parks a
///    connection slot. Idle keep-alive connections get the separate,
///    longer idle_timeout_ms.
///  * Write backpressure: a client that stops reading while reports
///    stream at it is disconnected once its output buffer passes
///    max_outbuf_bytes.
///  * Memory budgets: with a MemoryBudget wired in, a frame whose length
///    prefix alone exceeds the per-request budget is refused from the
///    5-byte header — the payload is never buffered — and admitted
///    requests charge decode + materialization bytes, so overload is a
///    typed kResourceExhausted error (wire kError / HTTP 503 +
///    Retry-After), never an OOM.
///  * Lifecycle: BeginDrain() (SIGTERM, POST /drain) closes the
///    listeners, refuses new requests with a typed error, flips /healthz
///    to draining and lets in-flight batches finish; AwaitDrain() waits
///    for them (bounded by drain_timeout_ms), after which Stop() cancels
///    stragglers through the normal CancelSource path. A Watchdog, when
///    attached, sees every dispatch task and acceptor-loop heartbeat.
///
/// Metrics (serve.net.*): connections_total, active_connections,
/// bytes_read_total, bytes_written_total, frames_in_total,
/// frames_out_total, http_requests_total, requests_total,
/// request_latency_us, protocol_errors_total, disconnect_cancels_total,
/// timeout_closes_total, overflow_closes_total.

namespace autodetect {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;        ///< 0 = ephemeral; read the chosen one off port()
  size_t num_acceptors = 2; ///< event-loop threads (each its own listener)
  size_t dispatch_threads = 0;  ///< blocking-detect pool; 0 = hw concurrency
  WireLimits wire_limits;
  HttpLimits http_limits;
  /// Longest a connection may sit on an incomplete request (or an
  /// unfinished protocol preamble) before it is closed.
  uint64_t partial_timeout_ms = 5000;
  /// Longest an idle keep-alive connection (no buffered bytes, no in-flight
  /// requests) is kept open.
  uint64_t idle_timeout_ms = 120000;
  uint64_t sweep_interval_ms = 100;  ///< sweeper granularity
  /// Disconnect clients whose unread response backlog passes this.
  size_t max_outbuf_bytes = 64u << 20;
  /// Per-tenant admission quotas; not owned, may be null (no quotas). Must
  /// outlive the server.
  TenantTable* tenants = nullptr;
  /// Registry for serve.net.* metrics and GET /metrics; null = process
  /// default.
  MetricsRegistry* metrics = nullptr;
  /// Byte budget charged at wire decode and column materialization; not
  /// owned, may be null (no budget). Must outlive the server.
  MemoryBudget* memory = nullptr;
  /// Health ladder surfaced via /healthz and driven by drain; not owned,
  /// may be null (/healthz then degrades to plain "ok" / 503 draining).
  HealthLadder* health = nullptr;
  /// Watchdog fed by dispatch TaskScopes and acceptor-loop heartbeats; not
  /// owned, may be null. Register/Start happens inside Server::Start.
  Watchdog* watchdog = nullptr;
  /// Default bound for AwaitDrain(0): how long a drain waits for in-flight
  /// batches before the caller falls through to Stop()'s cancellation.
  uint64_t drain_timeout_ms = 10000;
};

/// Point-in-time server counters (mirrors the serve.net.* metrics so tests
/// and operators can assert without a registry scrape).
struct ServerStats {
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t http_requests = 0;
  uint64_t protocol_errors = 0;
  uint64_t disconnect_cancels = 0;
  uint64_t timeout_closes = 0;
};

class Server {
 public:
  /// \param executor not owned; must outlive the server. Any
  /// DetectionExecutor works; production wiring passes a DetectionEngine.
  Server(DetectionExecutor* executor, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the event loops, dispatch pool and
  /// sweeper. Returns the error (address in use, bad host) without any
  /// thread started on failure.
  Status Start();

  /// Stops accepting, cancels in-flight work, closes every connection and
  /// joins all threads. Idempotent; also run by the destructor.
  void Stop();

  /// Enters graceful drain: every loop closes its listener, new requests on
  /// existing connections get a typed "draining" error, /healthz flips to
  /// 503 draining, and in-flight batches keep running. Idempotent,
  /// irreversible, safe from any thread (including signal-driven CLI code
  /// calling it off the main thread).
  void BeginDrain();

  /// Blocks until every admitted request has completed AND its response
  /// bytes have left the output buffers, or `timeout_ms` elapsed (0 = the
  /// options' drain_timeout_ms). Returns true when the server drained
  /// clean; false on timeout — the caller then invokes Stop(), which
  /// cancels the stragglers through the existing CancelSource path.
  bool AwaitDrain(uint64_t timeout_ms = 0);

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// The bound port (after Start); useful with port 0.
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats Stats() const;

 private:
  struct Conn;
  struct Loop;

  // --- event-loop side (single-threaded per Loop; the timeout sweep runs
  // inside each loop on its own connections, so no cross-thread state) ---
  void RunLoop(Loop& loop);
  void AcceptNew(Loop& loop);
  void HandleReadable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void ProcessInbuf(Loop& loop, const std::shared_ptr<Conn>& conn);
  bool ProcessWire(Loop& loop, const std::shared_ptr<Conn>& conn);
  bool ProcessHttp(Loop& loop, const std::shared_ptr<Conn>& conn);
  void SendInline(Loop& loop, const std::shared_ptr<Conn>& conn,
                  std::string&& bytes, bool close_after);
  void FlushConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  void CloseConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                 bool cancel_inflight);

  // --- dispatch side (dispatch pool threads) ---
  void DispatchWireRequest(std::shared_ptr<Conn> conn, WireRequest request,
                           uint64_t local_id, CancelSource source,
                           MemoryBudget::Charge charge);
  void DispatchHttpDetect(std::shared_ptr<Conn> conn, WireRequest request,
                          uint64_t local_id, CancelSource source,
                          bool keep_alive, MemoryBudget::Charge charge);
  /// Runs one decoded request through tenant admission and the executor,
  /// streaming every column's report (including admission-shed ones) into
  /// `sink`. Returns the number of shed columns.
  size_t RunDetect(const WireRequest& request, const CancelSource& source,
                   ReportSink& sink);
  /// Finishes one dispatched request: deregisters it and decrements the
  /// drain-visible in-flight count. `final_bytes`, when non-empty, is the
  /// terminal response (batch-done frame / HTTP body) — it is appended
  /// BEFORE the in-flight count drops so AwaitDrain can never observe
  /// "nothing in flight, nothing buffered" with the terminal bytes still
  /// in a dispatch thread's hands.
  void FinishDispatched(const std::shared_ptr<Conn>& conn, uint64_t local_id,
                        std::string&& final_bytes);
  void CompleteRequest(const std::shared_ptr<Conn>& conn, uint64_t local_id);

  /// Appends bytes to the connection's output buffer and wakes its loop.
  /// Safe from any thread; a no-op once the connection closed.
  void SendToConn(const std::shared_ptr<Conn>& conn, std::string&& bytes);
  void WakeLoop(Loop& loop);

  class WireSink;
  friend class WireSink;

  DetectionExecutor* executor_;
  ServerOptions options_;
  MetricsRegistry* registry_;

  struct Metrics {
    Counter* connections = nullptr;
    Gauge* active_connections = nullptr;
    Counter* bytes_read = nullptr;
    Counter* bytes_written = nullptr;
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* http_requests = nullptr;
    Counter* requests = nullptr;
    Histogram* request_latency_us = nullptr;
    Counter* protocol_errors = nullptr;
    Counter* disconnect_cancels = nullptr;
    Counter* timeout_closes = nullptr;
    Counter* overflow_closes = nullptr;
  };
  Metrics metrics_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::unique_ptr<ThreadPool> dispatch_;

  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;

  /// Requests admitted to dispatch and not yet fully answered; paired with
  /// outbuf_bytes_ (unsent response bytes) these are the two quantities
  /// AwaitDrain waits to see hit zero.
  std::atomic<int64_t> inflight_requests_{0};
  std::atomic<int64_t> outbuf_bytes_{0};

  std::atomic<uint64_t> stat_connections_{0};
  std::atomic<uint64_t> stat_requests_{0};
  std::atomic<uint64_t> stat_http_requests_{0};
  std::atomic<uint64_t> stat_protocol_errors_{0};
  std::atomic<uint64_t> stat_disconnect_cancels_{0};
  std::atomic<uint64_t> stat_timeout_closes_{0};
};

}  // namespace autodetect
