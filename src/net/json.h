#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "detect/api.h"
#include "net/wire.h"

/// \file json.h
/// The JSON side of the network front-end: a small strict JSON parser (no
/// extensions, fails closed on malformed input) plus the bridges between
/// the HTTP fallback's request/response bodies and the same WireRequest /
/// DetectReport structures the binary protocol uses. One request model,
/// two encodings — the server logic never branches on protocol past the
/// transport layer.
///
/// Request body (POST /detect):
///   {"tenant": "acme", "tag": "t1.csv", "deadline_ms": 250,
///    "columns": [{"name": "year", "values": ["1962", "1981"]}]}
/// tenant/tag/deadline_ms are optional; columns is required.
///
/// Response body:
///   {"request_id": 0, "columns": 1, "reports": [
///     {"index": 0, "name": "year", "tag": "t1.csv", "status": "ok",
///      "latency_us": 120, "distinct_values": 2, "cells": [...],
///      "pairs": [...]}]}
///
/// Numbers are emitted with enough precision (%.17g) to round-trip doubles,
/// but JSON is the convenience surface — byte-exact report equality is the
/// binary protocol's contract, not this one's.

namespace autodetect {

/// One parsed JSON value (tagged union, object keys kept in input order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First value under `key`, or null when absent / not an object.
  const JsonValue* Find(std::string_view key) const;

  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }
};

/// Strict RFC-8259 parse of the whole input (trailing non-whitespace is an
/// error). Depth-limited so hostile nesting cannot blow the stack.
Result<JsonValue> ParseJson(std::string_view text, size_t max_depth = 64);

/// Appends `s` to `out` as a quoted JSON string with escaping.
void AppendJsonString(std::string* out, std::string_view s);

/// Parses the /detect request body into the shared wire request shape.
/// Enforces the same limits as the binary decoder (column/value counts,
/// string sizes) so neither surface is the permissive one.
Result<WireRequest> ParseJsonDetectRequest(std::string_view body,
                                           const WireLimits& limits = {});

/// One report as a JSON object (used inside the /detect response array).
std::string DetectReportToJson(const DetectReport& report, size_t index);

/// The whole /detect response body. `reports` is indexed by column.
std::string DetectResponseToJson(uint64_t request_id,
                                 const std::vector<DetectReport>& reports);

}  // namespace autodetect
