#include "net/wire.h"

#include <sstream>

#include "common/string_util.h"

namespace autodetect {

namespace {

/// Builds a complete frame around an already-encoded payload.
std::string FinishFrame(FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kWireHeaderLen + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>(len >> (8 * i)));
  }
  frame.push_back(static_cast<char>(type));
  frame.append(payload);
  return frame;
}

bool ValidFrameType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kDetectRequest) &&
         raw <= static_cast<uint8_t>(FrameType::kError);
}

}  // namespace

std::string EncodeRequestFrame(const WireRequest& request) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(request.request_id);
  writer.WriteString(request.tenant);
  writer.WriteString(request.tag);
  writer.WriteU64(request.deadline_ms);
  writer.WriteU64(request.columns.size());
  for (const auto& column : request.columns) {
    writer.WriteString(column.name);
    writer.WriteU64(column.values.size());
    for (const auto& value : column.values) writer.WriteString(value);
  }
  return FinishFrame(FrameType::kDetectRequest, out.str());
}

void EncodeDetectReport(BinaryWriter* writer, const DetectReport& report) {
  writer->WriteString(report.name);
  writer->WriteString(report.tag);
  writer->WriteU8(static_cast<uint8_t>(report.status));
  writer->WriteU64(report.latency_us);
  writer->WriteU64(report.column.distinct_values);
  writer->WriteU64(report.column.cells.size());
  for (const auto& cell : report.column.cells) {
    writer->WriteU32(cell.row);
    writer->WriteString(cell.value);
    writer->WriteDouble(cell.confidence);
    writer->WriteU32(cell.incompatible_with);
  }
  writer->WriteU64(report.column.pairs.size());
  for (const auto& pair : report.column.pairs) {
    writer->WriteString(pair.u);
    writer->WriteString(pair.v);
    writer->WriteDouble(pair.confidence);
  }
}

Result<DetectReport> DecodeDetectReport(BinaryReader* reader,
                                        const WireLimits& limits) {
  DetectReport report;
  AD_ASSIGN_OR_RETURN(report.name, reader->ReadString(limits.max_string_bytes));
  AD_ASSIGN_OR_RETURN(report.tag, reader->ReadString(limits.max_string_bytes));
  AD_ASSIGN_OR_RETURN(uint8_t raw_status, reader->ReadU8());
  if (raw_status > static_cast<uint8_t>(ColumnStatus::kShed)) {
    return reader->Corrupt(
        StrFormat("unknown column status %u", unsigned{raw_status}));
  }
  report.status = static_cast<ColumnStatus>(raw_status);
  AD_ASSIGN_OR_RETURN(report.latency_us, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(report.column.distinct_values, reader->ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t num_cells, reader->ReadU64());
  if (num_cells > limits.max_values) {
    return reader->Corrupt(
        StrFormat("implausible cell-finding count %llu",
                  static_cast<unsigned long long>(num_cells)));
  }
  report.column.cells.reserve(num_cells);
  for (uint64_t i = 0; i < num_cells; ++i) {
    CellFinding cell;
    AD_ASSIGN_OR_RETURN(cell.row, reader->ReadU32());
    AD_ASSIGN_OR_RETURN(cell.value,
                        reader->ReadString(limits.max_string_bytes));
    AD_ASSIGN_OR_RETURN(cell.confidence, reader->ReadDouble());
    AD_ASSIGN_OR_RETURN(cell.incompatible_with, reader->ReadU32());
    report.column.cells.push_back(std::move(cell));
  }
  AD_ASSIGN_OR_RETURN(uint64_t num_pairs, reader->ReadU64());
  if (num_pairs > limits.max_values) {
    return reader->Corrupt(
        StrFormat("implausible pair-finding count %llu",
                  static_cast<unsigned long long>(num_pairs)));
  }
  report.column.pairs.reserve(num_pairs);
  for (uint64_t i = 0; i < num_pairs; ++i) {
    PairFinding pair;
    AD_ASSIGN_OR_RETURN(pair.u, reader->ReadString(limits.max_string_bytes));
    AD_ASSIGN_OR_RETURN(pair.v, reader->ReadString(limits.max_string_bytes));
    AD_ASSIGN_OR_RETURN(pair.confidence, reader->ReadDouble());
    report.column.pairs.push_back(std::move(pair));
  }
  return report;
}

std::string EncodeReportFrame(const WireReport& report) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(report.request_id);
  writer.WriteU64(report.column_index);
  EncodeDetectReport(&writer, report.report);
  return FinishFrame(FrameType::kColumnReport, out.str());
}

std::string EncodeBatchDoneFrame(const WireBatchDone& done) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(done.request_id);
  writer.WriteU64(done.columns);
  return FinishFrame(FrameType::kBatchDone, out.str());
}

std::string EncodeErrorFrame(const WireError& error) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(error.request_id);
  writer.WriteString(error.message);
  return FinishFrame(FrameType::kError, out.str());
}

Result<std::optional<FrameView>> PeekFrame(std::string_view buffer,
                                           const WireLimits& limits) {
  if (buffer.size() < kWireHeaderLen) return std::optional<FrameView>();
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[i]))
                   << (8 * i);
  }
  if (payload_len > limits.max_frame_bytes) {
    return Status::Corruption(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte limit",
                  payload_len, limits.max_frame_bytes));
  }
  uint8_t raw_type = static_cast<uint8_t>(buffer[4]);
  if (!ValidFrameType(raw_type)) {
    return Status::Corruption(
        StrFormat("unknown frame type %u", unsigned{raw_type}));
  }
  if (buffer.size() < kWireHeaderLen + payload_len) {
    return std::optional<FrameView>();
  }
  FrameView view;
  view.type = static_cast<FrameType>(raw_type);
  view.payload = buffer.substr(kWireHeaderLen, payload_len);
  view.frame_len = kWireHeaderLen + payload_len;
  return std::optional<FrameView>(view);
}

Result<WireRequest> DecodeRequestPayload(std::string_view payload,
                                         const WireLimits& limits) {
  BinaryReader reader(payload.data(), payload.size());
  WireRequest request;
  AD_ASSIGN_OR_RETURN(request.request_id, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(request.tenant,
                      reader.ReadString(limits.max_string_bytes));
  AD_ASSIGN_OR_RETURN(request.tag, reader.ReadString(limits.max_string_bytes));
  AD_ASSIGN_OR_RETURN(request.deadline_ms, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(uint64_t num_columns, reader.ReadU64());
  if (num_columns > limits.max_columns) {
    return reader.Corrupt(
        StrFormat("implausible column count %llu",
                  static_cast<unsigned long long>(num_columns)));
  }
  request.columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    WireColumn column;
    AD_ASSIGN_OR_RETURN(column.name,
                        reader.ReadString(limits.max_string_bytes));
    AD_ASSIGN_OR_RETURN(uint64_t num_values, reader.ReadU64());
    if (num_values > limits.max_values) {
      return reader.Corrupt(
          StrFormat("implausible value count %llu in column %llu",
                    static_cast<unsigned long long>(num_values),
                    static_cast<unsigned long long>(c)));
    }
    column.values.reserve(num_values);
    for (uint64_t v = 0; v < num_values; ++v) {
      AD_ASSIGN_OR_RETURN(std::string value,
                          reader.ReadString(limits.max_string_bytes));
      column.values.push_back(std::move(value));
    }
    request.columns.push_back(std::move(column));
  }
  if (reader.offset() != payload.size()) {
    return reader.Corrupt("trailing bytes after request payload");
  }
  return request;
}

Result<WireReport> DecodeReportPayload(std::string_view payload,
                                       const WireLimits& limits) {
  BinaryReader reader(payload.data(), payload.size());
  WireReport report;
  AD_ASSIGN_OR_RETURN(report.request_id, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(report.column_index, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(report.report, DecodeDetectReport(&reader, limits));
  if (reader.offset() != payload.size()) {
    return reader.Corrupt("trailing bytes after report payload");
  }
  return report;
}

Result<WireBatchDone> DecodeBatchDonePayload(std::string_view payload) {
  BinaryReader reader(payload.data(), payload.size());
  WireBatchDone done;
  AD_ASSIGN_OR_RETURN(done.request_id, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(done.columns, reader.ReadU64());
  if (reader.offset() != payload.size()) {
    return reader.Corrupt("trailing bytes after batch-done payload");
  }
  return done;
}

Result<WireError> DecodeErrorPayload(std::string_view payload,
                                     const WireLimits& limits) {
  BinaryReader reader(payload.data(), payload.size());
  WireError error;
  AD_ASSIGN_OR_RETURN(error.request_id, reader.ReadU64());
  AD_ASSIGN_OR_RETURN(error.message,
                      reader.ReadString(limits.max_string_bytes));
  if (reader.offset() != payload.size()) {
    return reader.Corrupt("trailing bytes after error payload");
  }
  return error;
}

size_t WireRequestBytes(const WireRequest& request) {
  size_t bytes = request.tenant.size() + request.tag.size();
  for (const auto& column : request.columns) {
    bytes += column.name.size() + sizeof(WireColumn);
    for (const auto& value : column.values) {
      bytes += value.size() + sizeof(std::string);
    }
  }
  return bytes;
}

std::vector<DetectRequest> ToDetectBatch(const WireRequest& request) {
  std::vector<DetectRequest> batch;
  batch.reserve(request.columns.size());
  for (const auto& column : request.columns) {
    DetectRequest r;
    r.name = column.name;
    r.values = column.values;
    r.context = RequestContext{request.tenant, request.tag,
                               request.deadline_ms};
    batch.push_back(std::move(r));
  }
  return batch;
}

}  // namespace autodetect
