#include "net/tenant.h"

#include <cstdlib>

#include "common/string_util.h"

namespace autodetect {

Status TenantTable::Parse(std::string_view spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::Invalid(StrFormat(
          "tenant spec entry '%.*s' is not name=cap[:policy]",
          static_cast<int>(entry.size()), entry.data()));
    }
    std::string name(entry.substr(0, eq));
    std::string_view rest = entry.substr(eq + 1);
    std::string_view cap_str = rest;
    TenantSpec tenant_spec;
    size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      cap_str = rest.substr(0, colon);
      AD_ASSIGN_OR_RETURN(tenant_spec.policy,
                          ParseAdmissionPolicy(rest.substr(colon + 1)));
    }
    char* end = nullptr;
    std::string cap_token(cap_str);
    unsigned long long cap = std::strtoull(cap_token.c_str(), &end, 10);
    if (cap_token.empty() || end != cap_token.c_str() + cap_token.size()) {
      return Status::Invalid(StrFormat(
          "tenant spec entry '%.*s' has a malformed column cap",
          static_cast<int>(entry.size()), entry.data()));
    }
    tenant_spec.queue_cap_columns = static_cast<size_t>(cap);
    SetSpec(name, tenant_spec);
  }
  return Status::OK();
}

void TenantTable::SetSpec(const std::string& tenant, TenantSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant == "*") {
    default_spec_ = spec;
  } else {
    specs_[tenant] = spec;
  }
  // Quotas are fixed once a controller exists; dropping it here lets a
  // re-SetSpec before first use take effect (the server configures the
  // table before accepting connections).
  controllers_.erase(tenant);
}

TenantSpec TenantTable::SpecFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = specs_.find(tenant);
  return it == specs_.end() ? default_spec_ : it->second;
}

std::string TenantTable::MetricLabel(const std::string& tenant) {
  if (tenant.empty()) return "anonymous";
  std::string label = tenant;
  for (char& c : label) {
    if (c == '.' || c == ' ') c = '_';
  }
  return label;
}

AdmissionController* TenantTable::ControllerFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = controllers_.find(tenant);
  if (existing != controllers_.end()) return existing->second.get();

  auto spec_it = specs_.find(tenant);
  const TenantSpec& spec =
      spec_it == specs_.end() ? default_spec_ : spec_it->second;
  if (spec.queue_cap_columns == 0) return nullptr;  // unlimited

  AdmissionOptions options;
  options.queue_cap_columns = spec.queue_cap_columns;
  options.policy = spec.policy;
  options.block_timeout_ms = spec.block_timeout_ms;
  options.metrics = metrics_;
  options.metric_prefix =
      "serve.admission.tenant." + MetricLabel(tenant) + ".";
  auto controller = std::make_unique<AdmissionController>(std::move(options));
  AdmissionController* raw = controller.get();
  controllers_.emplace(tenant, std::move(controller));
  return raw;
}

std::vector<std::string> TenantTable::ConfiguredTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  return names;
}

}  // namespace autodetect
