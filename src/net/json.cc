#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace autodetect {

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Parse() {
    AD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view msg) const {
    return Status::Invalid(StrFormat("JSON parse error at byte %zu: %.*s",
                                     pos_, static_cast<int>(msg.size()),
                                     msg.data()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        AD_ASSIGN_OR_RETURN(v.str, ParseString());
        return v;
      }
      case 't': {
        if (!ConsumeLiteral("true")) return Error("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!ConsumeLiteral("false")) return Error("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!ConsumeLiteral("null")) return Error("bad literal");
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      AD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      AD_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      AD_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      v.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          AD_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair → one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF && ConsumeLiteral("\\u")) {
            AD_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    return v;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    // RFC 8259 grammar checks strtod is laxer about: a digit must follow
    // any minus sign, and a leading zero cannot be followed by digits.
    size_t digit = token[0] == '-' ? 1 : 0;
    if (digit >= token.size() ||
        !std::isdigit(static_cast<unsigned char>(token[digit]))) {
      pos_ = start;
      return Error("malformed number");
    }
    if (token[digit] == '0' && digit + 1 < token.size() &&
        std::isdigit(static_cast<unsigned char>(token[digit + 1]))) {
      pos_ = start;
      return Error("number has a leading zero");
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("malformed number");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
};

/// %.17g round-trips every finite double; trims to a clean "1" for whole
/// numbers that fit.
std::string JsonNumber(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

/// Reads a non-negative integer field with a default; rejects wrong types.
Status ReadCount(const JsonValue& object, std::string_view key,
                 uint64_t* out) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->IsNumber() || v->number < 0 || v->number != std::floor(v->number)) {
    return Status::Invalid(
        StrFormat("field \"%.*s\" must be a non-negative integer",
                  static_cast<int>(key.size()), key.data()));
  }
  *out = static_cast<uint64_t>(v->number);
  return Status::OK();
}

Status ReadString(const JsonValue& object, std::string_view key,
                  size_t max_bytes, std::string* out) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->IsString() || v->str.size() > max_bytes) {
    return Status::Invalid(StrFormat("field \"%.*s\" must be a string",
                                     static_cast<int>(key.size()),
                                     key.data()));
  }
  *out = v->str;
  return Status::OK();
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text, size_t max_depth) {
  return JsonParser(text, max_depth).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", static_cast<unsigned char>(c)));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

Result<WireRequest> ParseJsonDetectRequest(std::string_view body,
                                           const WireLimits& limits) {
  AD_ASSIGN_OR_RETURN(JsonValue root, ParseJson(body));
  if (!root.IsObject()) {
    return Status::Invalid("detect request body must be a JSON object");
  }
  WireRequest request;
  AD_RETURN_NOT_OK(ReadCount(root, "request_id", &request.request_id));
  AD_RETURN_NOT_OK(
      ReadString(root, "tenant", limits.max_string_bytes, &request.tenant));
  AD_RETURN_NOT_OK(
      ReadString(root, "tag", limits.max_string_bytes, &request.tag));
  AD_RETURN_NOT_OK(ReadCount(root, "deadline_ms", &request.deadline_ms));
  const JsonValue* columns = root.Find("columns");
  if (columns == nullptr || !columns->IsArray()) {
    return Status::Invalid("detect request needs a \"columns\" array");
  }
  if (columns->array.size() > limits.max_columns) {
    return Status::Invalid(StrFormat("too many columns (%zu > %zu)",
                                     columns->array.size(),
                                     limits.max_columns));
  }
  request.columns.reserve(columns->array.size());
  for (size_t c = 0; c < columns->array.size(); ++c) {
    const JsonValue& col = columns->array[c];
    if (!col.IsObject()) {
      return Status::Invalid(
          StrFormat("columns[%zu] must be an object", c));
    }
    WireColumn column;
    AD_RETURN_NOT_OK(
        ReadString(col, "name", limits.max_string_bytes, &column.name));
    const JsonValue* values = col.Find("values");
    if (values == nullptr || !values->IsArray()) {
      return Status::Invalid(
          StrFormat("columns[%zu] needs a \"values\" array", c));
    }
    if (values->array.size() > limits.max_values) {
      return Status::Invalid(
          StrFormat("columns[%zu] has too many values", c));
    }
    column.values.reserve(values->array.size());
    for (const JsonValue& value : values->array) {
      if (!value.IsString()) {
        return Status::Invalid(
            StrFormat("columns[%zu] values must all be strings", c));
      }
      if (value.str.size() > limits.max_string_bytes) {
        return Status::Invalid(StrFormat("columns[%zu] value too large", c));
      }
      column.values.push_back(value.str);
    }
    request.columns.push_back(std::move(column));
  }
  return request;
}

std::string DetectReportToJson(const DetectReport& report, size_t index) {
  std::string out;
  out.append(StrFormat("{\"index\":%zu,\"name\":", index));
  AppendJsonString(&out, report.name);
  out.append(",\"tag\":");
  AppendJsonString(&out, report.tag);
  out.append(StrFormat(
      ",\"status\":\"%s\",\"latency_us\":%llu,\"distinct_values\":%zu",
      std::string(ColumnStatusName(report.status)).c_str(),
      static_cast<unsigned long long>(report.latency_us),
      report.column.distinct_values));
  out.append(",\"cells\":[");
  for (size_t i = 0; i < report.column.cells.size(); ++i) {
    const CellFinding& cell = report.column.cells[i];
    if (i > 0) out.push_back(',');
    out.append(StrFormat("{\"row\":%u,\"value\":", cell.row));
    AppendJsonString(&out, cell.value);
    out.append(StrFormat(",\"confidence\":%s,\"incompatible_with\":%u}",
                         JsonNumber(cell.confidence).c_str(),
                         cell.incompatible_with));
  }
  out.append("],\"pairs\":[");
  for (size_t i = 0; i < report.column.pairs.size(); ++i) {
    const PairFinding& pair = report.column.pairs[i];
    if (i > 0) out.push_back(',');
    out.append("{\"u\":");
    AppendJsonString(&out, pair.u);
    out.append(",\"v\":");
    AppendJsonString(&out, pair.v);
    out.append(StrFormat(",\"confidence\":%s}",
                         JsonNumber(pair.confidence).c_str()));
  }
  out.append("]}");
  return out;
}

std::string DetectResponseToJson(uint64_t request_id,
                                 const std::vector<DetectReport>& reports) {
  std::string out = StrFormat("{\"request_id\":%llu,\"columns\":%zu,"
                              "\"reports\":[",
                              static_cast<unsigned long long>(request_id),
                              reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(DetectReportToJson(reports[i], i));
  }
  out.append("]}");
  return out;
}

}  // namespace autodetect
