#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "serve/resilience.h"

/// \file tenant.h
/// Per-tenant isolation for the network server. Every wire/HTTP request
/// names a tenant (RequestContext::tenant; empty = the anonymous tenant),
/// and the server resolves it here before the batch reaches the engine:
/// each tenant with a quota gets its own AdmissionController, so one
/// tenant flooding the server sheds *its own* batches while everyone
/// else's capacity is untouched. Controllers publish under
/// "serve.admission.tenant.<name>." (resilience.h metric set), so
/// per-tenant shed/reject counts are attributable in /metrics alongside
/// the per-tenant scan counters (detect.tenant.<name>.*).
///
/// Quotas are per-tenant *concurrent columns in flight*. A tenant absent
/// from the table gets the default spec; a cap of 0 means unlimited (no
/// controller, no tracking cost).

namespace autodetect {

/// One tenant's admission quota.
struct TenantSpec {
  /// Concurrent in-flight column cap; 0 = unlimited.
  size_t queue_cap_columns = 0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// kBlock only: longest an over-quota batch waits for capacity.
  uint64_t block_timeout_ms = 250;
};

class TenantTable {
 public:
  /// \param metrics destination for per-tenant controllers; null = process
  /// default registry.
  explicit TenantTable(MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// Parses the CLI quota spec into this table: comma-separated
  /// `name=cap[:policy]` entries, policy one of block | shed-oldest |
  /// reject (default reject). `*` names the default spec applied to
  /// unlisted tenants, e.g.
  ///   "acme=512:block,free=64,*=4096:shed-oldest"
  /// Empty spec = everything unlimited. On error, entries before the bad
  /// one are already installed; callers treat the table as dead.
  Status Parse(std::string_view spec);

  /// Installs/overrides one tenant's quota ("*" sets the default).
  void SetSpec(const std::string& tenant, TenantSpec spec);

  /// The admission controller enforcing `tenant`'s quota, created lazily on
  /// first use; null when the tenant is unlimited. The pointer stays valid
  /// for the table's lifetime. Thread-safe. The anonymous tenant ("") is a
  /// tenant like any other and falls under the default spec.
  AdmissionController* ControllerFor(const std::string& tenant);

  /// The spec `tenant` resolves to (explicit entry or default).
  TenantSpec SpecFor(const std::string& tenant) const;

  /// Tenants with explicit entries (for startup logging).
  std::vector<std::string> ConfiguredTenants() const;

 private:
  /// Metric-safe tenant label: dots would splice into the metric-name
  /// hierarchy, so they are mapped to '_'.
  static std::string MetricLabel(const std::string& tenant);

  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  TenantSpec default_spec_;  ///< unlimited unless the spec listed "*"
  std::unordered_map<std::string, TenantSpec> specs_;
  std::unordered_map<std::string, std::unique_ptr<AdmissionController>>
      controllers_;
};

}  // namespace autodetect
