#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "net/wire.h"

namespace autodetect {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimWs(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

Result<std::optional<HttpRequest>> ParseHttpRequest(std::string_view buffer,
                                                    const HttpLimits& limits) {
  size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_head_bytes) {
      return Status::CapacityExceeded(
          StrFormat("HTTP header block exceeds %zu bytes",
                    limits.max_head_bytes));
    }
    return std::optional<HttpRequest>();
  }
  if (head_end > limits.max_head_bytes) {
    return Status::CapacityExceeded(StrFormat(
        "HTTP header block exceeds %zu bytes", limits.max_head_bytes));
  }

  HttpRequest request;
  std::string_view head = buffer.substr(0, head_end);
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::Invalid("malformed HTTP request line");
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::Invalid("unsupported HTTP version");
  }
  request.keep_alive = version != "HTTP/1.0";

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string_view line = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::Invalid("malformed HTTP header line");
    }
    request.headers.emplace_back(ToLower(TrimWs(line.substr(0, colon))),
                                 std::string(TrimWs(line.substr(colon + 1))));
  }

  if (const std::string* connection = request.Header("connection")) {
    std::string value = ToLower(*connection);
    if (value == "close") request.keep_alive = false;
    if (value == "keep-alive") request.keep_alive = true;
  }
  if (request.Header("transfer-encoding") != nullptr) {
    return Status::Invalid("chunked transfer encoding is not supported");
  }

  size_t body_len = 0;
  if (const std::string* content_length = request.Header("content-length")) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(content_length->c_str(), &end, 10);
    if (end != content_length->c_str() + content_length->size()) {
      return Status::Invalid("malformed Content-Length");
    }
    if (parsed > limits.max_body_bytes) {
      return Status::CapacityExceeded(StrFormat(
          "HTTP body of %llu bytes exceeds the %zu-byte limit", parsed,
          limits.max_body_bytes));
    }
    body_len = static_cast<size_t>(parsed);
  }

  size_t total = head_end + 4 + body_len;
  if (buffer.size() < total) return std::optional<HttpRequest>();
  request.body = std::string(buffer.substr(head_end + 4, body_len));
  request.consumed = total;
  return std::optional<HttpRequest>(std::move(request));
}

std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  return BuildHttpResponse(status_code, content_type, body, keep_alive, {});
}

std::string BuildHttpResponse(
    int status_code, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %.*s\r\nContent-Type: %.*s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n",
      status_code, static_cast<int>(ReasonPhrase(status_code).size()),
      ReasonPhrase(status_code).data(), static_cast<int>(content_type.size()),
      content_type.data(), body.size(), keep_alive ? "keep-alive" : "close");
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out.append(body);
  return out;
}

bool LooksLikeWirePreamble(std::string_view head) {
  size_t n = std::min(head.size(), kWireMagicLen);
  return head.compare(0, n, kWireMagic, n) == 0;
}

}  // namespace autodetect
