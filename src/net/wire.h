#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "detect/api.h"
#include "io/serde.h"

/// \file wire.h
/// ADWIRE1 — the length-prefixed binary protocol the network server
/// (net/server.h) speaks. It exists so streaming detection survives the
/// wire: each column's DetectReport is framed and sent the moment that
/// column's scan completes, not when the whole batch drains, so a client
/// scanning a 500-column table sees its first findings while the tail is
/// still queued.
///
/// Connection layout (client → server):
///   magic "ADWIRE1\n" (8 bytes, sent once)   — also how the server sniffs
///                                              binary vs HTTP on a shared
///                                              port (no HTTP method starts
///                                              with these bytes)
///   frame*                                    — any number of requests
///
/// Frame layout (both directions):
///   u32  payload_len   little-endian, counts only the payload bytes
///   u8   type          FrameType below
///   u8[payload_len]    payload, encoded with io/serde.h primitives
///
/// Per request the server answers with exactly
///   kColumnReport × columns  (one per column, arrival order unspecified)
///   kBatchDone × 1           (always last for that request_id)
/// or a single kError frame when the request payload itself was
/// undecodable. Multiple requests may be in flight on one connection;
/// request_id (chosen by the client) ties responses to requests.
///
/// Decoding fails closed: payloads larger than WireLimits::max_frame_bytes,
/// unknown frame types, and semantically invalid payloads (implausible
/// counts, truncated strings) all yield structured errors — never a crash,
/// never a partially-applied request. The error taxonomy follows io/serde.h:
/// IOError = truncated, Corruption = bytes present but invalid.
///
/// All doubles (finding confidences) travel as raw IEEE-754 bits via
/// BinaryWriter::WriteDouble, so a report decoded off the wire is
/// byte-identical to the in-process DetectReport — the loopback test in
/// tests/net_test.cc asserts exactly that.

namespace autodetect {

/// The 8-byte connection preamble. Chosen to be impossible as an HTTP
/// request prefix so one port can serve both protocols.
inline constexpr char kWireMagic[] = "ADWIRE1\n";
inline constexpr size_t kWireMagicLen = 8;

/// Frame header: u32 payload_len + u8 type.
inline constexpr size_t kWireHeaderLen = 5;

enum class FrameType : uint8_t {
  kDetectRequest = 1,  ///< client → server: one batch of columns
  kColumnReport = 2,   ///< server → client: one column's DetectReport
  kBatchDone = 3,      ///< server → client: request fully answered
  kError = 4,          ///< server → client: request-level failure
};

/// Decode-side guards against hostile or corrupt length prefixes.
struct WireLimits {
  size_t max_frame_bytes = 64u << 20;  ///< payload cap; larger = Corruption
  size_t max_string_bytes = 4u << 20;  ///< any single value/name/tag
  size_t max_columns = 64u << 10;      ///< columns per request
  size_t max_values = 4u << 20;        ///< values per column
};

/// One column of a wire request.
struct WireColumn {
  std::string name;
  std::vector<std::string> values;
};

/// Payload of a kDetectRequest frame. Maps 1:1 onto a batch of
/// DetectRequests with RequestContext{tenant, tag, deadline_ms}.
struct WireRequest {
  uint64_t request_id = 0;  ///< client-chosen; echoed on every response frame
  std::string tenant;
  std::string tag;
  uint64_t deadline_ms = 0;
  std::vector<WireColumn> columns;
};

/// Payload of a kColumnReport frame.
struct WireReport {
  uint64_t request_id = 0;
  uint64_t column_index = 0;  ///< position in the request's column list
  DetectReport report;
};

/// Payload of a kBatchDone frame.
struct WireBatchDone {
  uint64_t request_id = 0;
  uint64_t columns = 0;  ///< how many kColumnReport frames preceded it
};

/// Payload of a kError frame. request_id is 0 when the failure predates
/// decoding an id (e.g. an oversized frame header).
struct WireError {
  uint64_t request_id = 0;
  std::string message;
};

// --- Encoding (returns the complete frame: header + payload) ---

std::string EncodeRequestFrame(const WireRequest& request);
std::string EncodeReportFrame(const WireReport& report);
std::string EncodeBatchDoneFrame(const WireBatchDone& done);
std::string EncodeErrorFrame(const WireError& error);

/// Serializes one DetectReport (shared by the report frame and tests).
void EncodeDetectReport(BinaryWriter* writer, const DetectReport& report);
Result<DetectReport> DecodeDetectReport(BinaryReader* reader,
                                        const WireLimits& limits = {});

// --- Incremental framing ---

/// A complete frame found at the head of a receive buffer. `payload` points
/// into the buffer passed to PeekFrame — consume `frame_len` bytes only
/// after acting on it.
struct FrameView {
  FrameType type = FrameType::kError;
  std::string_view payload;
  size_t frame_len = 0;  ///< header + payload bytes to consume
};

/// Inspects the head of `buffer` for one frame.
///  * nullopt        — the buffer holds only a partial frame; read more.
///  * FrameView      — a complete frame (type validated, length within
///                     limits); payload still needs its own decode.
///  * error Status   — unrecoverable framing violation (oversized length
///                     prefix, unknown frame type). The connection cannot
///                     be resynchronized and must be closed after an error
///                     frame.
Result<std::optional<FrameView>> PeekFrame(std::string_view buffer,
                                           const WireLimits& limits = {});

// --- Payload decoding (the payload of a validated FrameView) ---

Result<WireRequest> DecodeRequestPayload(std::string_view payload,
                                         const WireLimits& limits = {});
Result<WireReport> DecodeReportPayload(std::string_view payload,
                                       const WireLimits& limits = {});
Result<WireBatchDone> DecodeBatchDonePayload(std::string_view payload);
Result<WireError> DecodeErrorPayload(std::string_view payload,
                                     const WireLimits& limits = {});

/// Converts a wire request into the engine's batch shape: one DetectRequest
/// per column, all sharing RequestContext{tenant, tag, deadline_ms}.
std::vector<DetectRequest> ToDetectBatch(const WireRequest& request);

/// Working-set bytes a decoded request holds in its strings — what
/// ToDetectBatch will copy. The serving layer charges this against the
/// MemoryBudget at column-materialization time.
size_t WireRequestBytes(const WireRequest& request);

}  // namespace autodetect
