#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

/// \file http.h
/// The HTTP/1.1 fallback surface of the network server — just enough of
/// the protocol for `curl` and language HTTP clients to reach /detect and
/// for Prometheus to scrape /metrics, sharing the binary protocol's port
/// via first-bytes sniffing (net/wire.h). Supported: request line +
/// headers + Content-Length bodies, keep-alive, Connection: close. Not
/// supported (responded with clean errors, never crashes): chunked
/// transfer encoding, upgrades, pipelined bodies beyond the buffer limits.

namespace autodetect {

/// One parsed HTTP request at the head of a receive buffer.
struct HttpRequest {
  std::string method;   ///< uppercase as sent ("GET", "POST")
  std::string target;   ///< request target, e.g. "/detect"
  std::vector<std::pair<std::string, std::string>> headers;  ///< names lowered
  std::string body;
  size_t consumed = 0;  ///< bytes of the buffer this request occupied
  bool keep_alive = true;

  /// Header value by lower-case name, or null.
  const std::string* Header(std::string_view lower_name) const;
};

/// Guards for the incremental parser.
struct HttpLimits {
  size_t max_head_bytes = 64u << 10;  ///< request line + headers
  size_t max_body_bytes = 64u << 20;
};

/// Inspects the head of `buffer` for one complete request.
///  * nullopt      — incomplete; read more bytes (unless the buffer already
///                   exceeds the head/body limits, which is an error).
///  * HttpRequest  — complete; consume `consumed` bytes.
///  * error Status — malformed or over-limit; answer 400/413 and close.
Result<std::optional<HttpRequest>> ParseHttpRequest(
    std::string_view buffer, const HttpLimits& limits = {});

/// Serializes a response with Content-Length framing.
std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body, bool keep_alive);

/// Same, with extra response headers (e.g. {"Retry-After", "1"} on a 503).
std::string BuildHttpResponse(
    int status_code, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers);

/// True when the first bytes of a connection can only be the ADWIRE1
/// preamble (used with the magic in net/wire.h to sniff the protocol).
/// Handles partial prefixes: returns true while `head` is a prefix of the
/// magic, so the sniffer waits for more bytes instead of misrouting.
bool LooksLikeWirePreamble(std::string_view head);

}  // namespace autodetect
