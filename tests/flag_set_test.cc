// Tests for the shared CLI flag parser (tools/flag_set.h): typed binding,
// strict error behaviour, and the auto-generated --help output that every
// autodetect_cli command now serves.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flag_set.h"

namespace autodetect {
namespace {

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(FlagSetTest, BindsTypedValuesAndPositionals) {
  std::string s = "default";
  int64_t n = 7;
  double d = 0.5;
  bool b = false;
  FlagSet flags;
  flags.String("name", &s, "a string");
  flags.Int("count", &n, "an int");
  flags.Double("ratio", &d, "a double");
  flags.Bool("verbose", &b, "a switch");

  std::vector<std::string> args = {"tool",  "cmd",     "--name", "x",
                                   "pos1",  "--count", "42",     "--ratio",
                                   "0.25",  "--verbose", "pos2"};
  std::vector<char*> argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data(), 2).ok());
  EXPECT_EQ(s, "x");
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_FALSE(flags.help_requested());
}

TEST(FlagSetTest, StrictErrors) {
  int64_t n = 0;
  FlagSet flags;
  flags.Int("count", &n, "an int");
  flags.Deprecated("num", "count");

  {
    std::vector<std::string> args = {"tool", "cmd", "--bogus", "1"};
    std::vector<char*> argv = Argv(args);
    Status status = flags.Parse(static_cast<int>(argv.size()), argv.data(), 2);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("--bogus"), std::string::npos);
  }
  {
    std::vector<std::string> args = {"tool", "cmd", "--count", "zebra"};
    std::vector<char*> argv = Argv(args);
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data(), 2).ok());
  }
  {
    std::vector<std::string> args = {"tool", "cmd", "--count"};
    std::vector<char*> argv = Argv(args);
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data(), 2).ok());
  }
  {
    // Retired spellings point at the replacement instead of "unknown flag".
    std::vector<std::string> args = {"tool", "cmd", "--num", "3"};
    std::vector<char*> argv = Argv(args);
    Status status = flags.Parse(static_cast<int>(argv.size()), argv.data(), 2);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("--count"), std::string::npos);
  }
}

TEST(FlagSetTest, HelpShortCircuitsParsing) {
  int64_t n = 7;
  FlagSet flags;
  flags.Int("count", &n, "an int");

  // Everything after --help is skipped: the unknown flag is not an error,
  // and no value binds.
  std::vector<std::string> args = {"tool", "cmd", "--help", "--bogus",
                                   "--count", "9"};
  std::vector<char*> argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data(), 2).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_EQ(n, 7);

  FlagSet short_form;
  std::vector<std::string> short_args = {"tool", "cmd", "-h"};
  std::vector<char*> short_argv = Argv(short_args);
  ASSERT_TRUE(short_form
                  .Parse(static_cast<int>(short_argv.size()),
                         short_argv.data(), 2)
                  .ok());
  EXPECT_TRUE(short_form.help_requested());
}

TEST(FlagSetTest, UsageIsGeneratedFromRegistrations) {
  std::string s = "model.bin";
  std::string empty;
  int64_t n = 42;
  double d = 0.95;
  bool b = false;
  FlagSet flags;
  flags.String("model", &s, "the model file");
  flags.String("out", &empty, "output path");
  flags.Int("jobs", &n, "worker threads");
  flags.Double("precision", &d, "precision target");
  flags.Bool("watch", &b, "hot reload");

  std::string usage = flags.Usage();
  // Typed value hints per flag kind; switches take none.
  EXPECT_NE(usage.find("--model <str>"), std::string::npos);
  EXPECT_NE(usage.find("--jobs <int>"), std::string::npos);
  EXPECT_NE(usage.find("--precision <float>"), std::string::npos);
  EXPECT_EQ(usage.find("--watch <"), std::string::npos);
  // Help text and registration-time defaults ride along.
  EXPECT_NE(usage.find("worker threads"), std::string::npos);
  EXPECT_NE(usage.find("(default: 42)"), std::string::npos);
  EXPECT_NE(usage.find("(default: 0.95)"), std::string::npos);
  EXPECT_NE(usage.find("(default: \"model.bin\")"), std::string::npos);
  // Empty-string and bool defaults are noise, so they are omitted.
  size_t out_line = usage.find("--out");
  size_t out_eol = usage.find('\n', out_line);
  EXPECT_EQ(usage.substr(out_line, out_eol - out_line).find("default"),
            std::string::npos);
  // The built-in --help documents itself.
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace autodetect
