/// \file lifecycle_test.cc
/// Unit tests for the server lifecycle & overload-defense layer
/// (serve/lifecycle.h): MemoryBudget two-phase charging, HealthLadder
/// severity/stickiness, Watchdog wedge and stall detection, and the
/// CircuitBreaker state machine with its deterministic jittered windows.
/// Everything here is synchronous — time-dependent behaviour is driven
/// through CheckNow() and small real windows, never through sleeps-and-hope
/// assertions on background threads.

#include "serve/lifecycle.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/model_registry.h"

namespace autodetect {
namespace {

// ------------------------------------------------------------- MemoryBudget

TEST(MemoryBudgetTest, DisabledBudgetAdmitsEverything) {
  MemoryBudget budget;  // both limits 0 = unlimited
  EXPECT_FALSE(budget.enabled());
  auto charge = budget.Admit(size_t{1} << 40);
  ASSERT_TRUE(charge.ok());
  EXPECT_TRUE(charge->Extend(size_t{1} << 40));
  EXPECT_EQ(budget.rejected_total(), 0u);
}

TEST(MemoryBudgetTest, PerRequestCapRejectsTyped) {
  MetricsRegistry metrics;
  MemoryBudget budget({/*global_bytes=*/0, /*per_request_bytes=*/100, &metrics});
  EXPECT_TRUE(budget.WouldExceedPerRequest(101));
  EXPECT_FALSE(budget.WouldExceedPerRequest(100));

  auto rejected = budget.Admit(101);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_EQ(budget.rejected_total(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.mem.rejected_total")->Value(), 1u);

  auto admitted = budget.Admit(60);
  ASSERT_TRUE(admitted.ok());
  // Cumulative per-request cap: 60 admitted + 50 more would be 110 > 100.
  EXPECT_FALSE(admitted->Extend(50));
  EXPECT_EQ(admitted->bytes(), 60u);
  EXPECT_TRUE(admitted->Extend(40));
  EXPECT_EQ(admitted->bytes(), 100u);
}

TEST(MemoryBudgetTest, GlobalBudgetReleasesAndTracksPeak) {
  MemoryBudget budget({/*global_bytes=*/1000, /*per_request_bytes=*/0});
  auto a = budget.Admit(600);
  ASSERT_TRUE(a.ok());
  auto b = budget.Admit(300);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(budget.inflight_bytes(), 900u);

  // 900 + 200 does not fit; the refusal is retryable-flavoured.
  auto refused = budget.Admit(200);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  EXPECT_NE(refused.status().ToString().find("retry"), std::string::npos);

  a->Release();
  EXPECT_EQ(budget.inflight_bytes(), 300u);
  a->Release();  // idempotent
  EXPECT_EQ(budget.inflight_bytes(), 300u);
  auto c = budget.Admit(200);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(budget.peak_bytes(), 900u);
}

TEST(MemoryBudgetTest, MoveTransfersOwnershipAndDestructorReleases) {
  MemoryBudget budget({/*global_bytes=*/1000, /*per_request_bytes=*/0});
  {
    auto a = budget.Admit(400);
    ASSERT_TRUE(a.ok());
    MemoryBudget::Charge moved = std::move(*a);
    EXPECT_EQ(moved.bytes(), 400u);
    EXPECT_EQ(a->bytes(), 0u);  // NOLINT(bugprone-use-after-move): contract
    EXPECT_EQ(budget.inflight_bytes(), 400u);
  }
  // The moved-to charge went out of scope: everything returned, once.
  EXPECT_EQ(budget.inflight_bytes(), 0u);
}

TEST(MemoryBudgetTest, ConcurrentChargingNeverOversubscribes) {
  MemoryBudget budget({/*global_bytes=*/10000, /*per_request_bytes=*/0});
  std::vector<std::thread> threads;
  std::atomic<size_t> admitted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &admitted] {
      for (int i = 0; i < 200; ++i) {
        auto charge = budget.Admit(100);
        if (charge.ok()) {
          admitted.fetch_add(1);
          EXPECT_LE(budget.inflight_bytes(), 10000u);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(admitted.load(), 0u);
  EXPECT_EQ(budget.inflight_bytes(), 0u);
  EXPECT_LE(budget.peak_bytes(), 10000u);
}

// ------------------------------------------------------------- HealthLadder

TEST(HealthLadderTest, SeverityOrderingAndRecovery) {
  MetricsRegistry metrics;
  HealthLadder ladder(&metrics);
  EXPECT_EQ(ladder.state(), HealthState::kHealthy);
  EXPECT_TRUE(ladder.Serving());

  ladder.SetCondition("worker-wedged", true);
  EXPECT_EQ(ladder.state(), HealthState::kDegraded);
  EXPECT_TRUE(ladder.Serving());  // degraded still serves
  EXPECT_EQ(metrics.GetGauge("serve.health.state")->Value(), 1.0);

  ladder.SetUnhealthyCondition("acceptor-stalled", true);
  EXPECT_EQ(ladder.state(), HealthState::kUnhealthy);
  EXPECT_FALSE(ladder.Serving());

  ladder.SetUnhealthyCondition("acceptor-stalled", false);
  EXPECT_EQ(ladder.state(), HealthState::kDegraded);
  ladder.SetCondition("worker-wedged", false);
  EXPECT_EQ(ladder.state(), HealthState::kHealthy);
  EXPECT_EQ(metrics.GetGauge("serve.health.state")->Value(), 0.0);
}

TEST(HealthLadderTest, DrainingIsStickyAndOutranksDegraded) {
  HealthLadder ladder;
  ladder.SetCondition("breaker:model-reload", true);
  ladder.SetDraining();
  EXPECT_EQ(ladder.state(), HealthState::kDraining);
  EXPECT_FALSE(ladder.Serving());
  // Clearing the condition cannot un-drain.
  ladder.SetCondition("breaker:model-reload", false);
  EXPECT_EQ(ladder.state(), HealthState::kDraining);
  EXPECT_TRUE(ladder.draining());
  // Unhealthy still outranks draining (the server cannot even drain).
  ladder.SetUnhealthyCondition("acceptor-stalled", true);
  EXPECT_EQ(ladder.state(), HealthState::kUnhealthy);
}

TEST(HealthLadderTest, ToJsonIsDeterministic) {
  HealthLadder ladder;
  EXPECT_EQ(ladder.ToJson(),
            "{\"state\":\"healthy\",\"draining\":false,\"conditions\":[]}");
  ladder.SetCondition("worker-wedged", true);
  ladder.SetCondition("breaker:model-reload", true);
  const std::string json = ladder.ToJson();
  EXPECT_NE(json.find("\"state\":\"degraded\""), std::string::npos);
  // Conditions are sorted for deterministic output.
  EXPECT_LT(json.find("breaker:model-reload"), json.find("worker-wedged"));
}

// ----------------------------------------------------------------- Watchdog

TEST(WatchdogTest, WedgedTaskFlipsDegradedAndRecovers) {
  HealthLadder ladder;
  WatchdogOptions options;
  options.wedge_timeout_ms = 20;
  options.health = &ladder;
  Watchdog dog(options);  // no Start(): checks driven synchronously
  {
    Watchdog::TaskScope scope(&dog, "wire");
    dog.CheckNow();
    EXPECT_EQ(dog.wedged_tasks(), 0u);  // fresh task is not wedged
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    dog.CheckNow();
    EXPECT_EQ(dog.wedged_tasks(), 1u);
    EXPECT_EQ(ladder.state(), HealthState::kDegraded);
  }
  dog.CheckNow();
  EXPECT_EQ(dog.wedged_tasks(), 0u);
  EXPECT_EQ(ladder.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, StalledHeartbeatFlipsUnhealthyAndRecovers) {
  HealthLadder ladder;
  WatchdogOptions options;
  options.stall_timeout_ms = 20;
  options.health = &ladder;
  Watchdog dog(options);
  const size_t id = dog.RegisterHeartbeat("acceptor-0");
  dog.Beat(id);
  dog.CheckNow();
  EXPECT_EQ(dog.stalled_loops(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  dog.CheckNow();
  EXPECT_EQ(dog.stalled_loops(), 1u);
  EXPECT_EQ(ladder.state(), HealthState::kUnhealthy);
  dog.Beat(id);
  dog.CheckNow();
  EXPECT_EQ(dog.stalled_loops(), 0u);
  EXPECT_EQ(ladder.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, NullSafeTaskScopeAndThreadLifecycle) {
  { Watchdog::TaskScope scope(nullptr, "noop"); }  // must not crash
  Watchdog dog({/*interval_ms=*/5});
  dog.Start();
  { Watchdog::TaskScope scope(&dog, "wire"); }
  dog.Stop();
  dog.Stop();  // idempotent
}

// ----------------------------------------------------------- CircuitBreaker

CircuitBreakerOptions FastBreaker(std::string name, HealthLadder* health,
                                  MetricsRegistry* metrics) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_base_ms = 20;
  options.open_max_ms = 200;
  options.name = std::move(name);
  options.health = health;
  options.metrics = metrics;
  return options;
}

TEST(CircuitBreakerTest, TripsAfterThresholdAndRefusesWhileOpen) {
  MetricsRegistry metrics;
  HealthLadder ladder;
  CircuitBreaker breaker(FastBreaker("reload", &ladder, &metrics));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // under threshold
  }
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_total(), 1u);
  EXPECT_EQ(ladder.state(), HealthState::kDegraded);
  EXPECT_FALSE(breaker.Allow());  // refused inside the window
  EXPECT_GE(metrics.GetCounter("serve.breaker.reload.rejected_total")->Value(),
            1u);
  // The jittered window lands in [base/2, base].
  EXPECT_GE(breaker.open_window_ms(), 10u);
  EXPECT_LE(breaker.open_window_ms(), 20u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  HealthLadder ladder;
  CircuitBreaker breaker(FastBreaker("probe-ok", &ladder, nullptr));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(breaker.open_window_ms() + 5));
  // First Allow after the window is the probe; it transitions to half-open.
  ASSERT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // only one probe in flight
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(ladder.state(), HealthState::kHealthy);
  // A closed breaker starts counting failures from zero again.
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithDoubledWindow) {
  CircuitBreaker breaker(FastBreaker("probe-bad", nullptr, nullptr));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  const uint64_t first_window = breaker.open_window_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(first_window + 5));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // probe fails: re-trip, window doubles
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.open_total(), 2u);
  EXPECT_GE(breaker.open_window_ms(), 20u);  // [40/2, 40] after doubling
  EXPECT_LE(breaker.open_window_ms(), 40u);
}

TEST(CircuitBreakerTest, JitterIsDeterministicPerName) {
  // Same name => same PCG stream => identical window sequence, run to run.
  auto windows = [](const std::string& name) {
    CircuitBreaker breaker(FastBreaker(name, nullptr, nullptr));
    std::vector<uint64_t> out;
    for (int trip = 0; trip < 3; ++trip) {
      for (int i = 0; i < 3; ++i) {
        if (breaker.Allow()) breaker.RecordFailure();
      }
      out.push_back(breaker.open_window_ms());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(breaker.open_window_ms() + 5));
      if (breaker.Allow()) breaker.RecordFailure();  // re-trip via probe
      out.push_back(breaker.open_window_ms());
      if (breaker.state() == BreakerState::kOpen) break;  // enough samples
    }
    return out;
  };
  EXPECT_EQ(windows("alpha"), windows("alpha"));
}

TEST(CircuitBreakerTest, RegistryReloadRefusedWhileOpen) {
  MetricsRegistry metrics;
  CircuitBreaker breaker(FastBreaker("model-reload", nullptr, &metrics));
  ModelRegistry registry(&metrics);
  registry.AttachBreaker(&breaker);
  const uint64_t errors_before =
      metrics.GetCounter("model.reload.errors_total")->Value();
  // Three loads of a nonexistent artifact trip the breaker...
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(registry.Reload("/nonexistent/model.bin").ok());
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(metrics.GetCounter("model.reload.errors_total")->Value(),
            errors_before + 3);
  // ...after which Reload is refused without touching the disk: typed
  // kResourceExhausted, and errors_total does NOT advance.
  Status refused = registry.Reload("/nonexistent/model.bin");
  EXPECT_TRUE(refused.IsResourceExhausted());
  EXPECT_EQ(metrics.GetCounter("model.reload.errors_total")->Value(),
            errors_before + 3);
}

}  // namespace
}  // namespace autodetect
