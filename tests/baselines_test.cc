// Tests for all ten baseline detectors plus Union. Each baseline has its
// own failure/strength profile; tests exercise the behaviours the paper's
// comparison relies on.

#include <gtest/gtest.h>

#include "baselines/cdm.h"
#include "baselines/dboost.h"
#include "baselines/distance_outliers.h"
#include "baselines/fregex.h"
#include "baselines/linear.h"
#include "baselines/lsa.h"
#include "baselines/lzw.h"
#include "baselines/pwheel.h"
#include "baselines/union_method.h"

namespace autodetect {
namespace {

std::vector<std::string> YearsWithDot() {
  return {"1962", "1981", "1974", "1990", "2003", "1944", "1958", "1865."};
}

std::vector<std::string> DatesWithForeign() {
  return {"2011-01-01", "2011-02-02", "2011-03-03",
          "2011-04-04", "2011-05-05", "Seattle"};
}

bool Flags(const ErrorDetectorMethod& m, const std::vector<std::string>& column,
           const std::string& value) {
  for (const auto& s : m.RankColumn(column)) {
    if (s.value == value) return true;
  }
  return false;
}

// ---------------------------------------------------------- shared basics

class EveryBaselineTest
    : public ::testing::TestWithParam<std::shared_ptr<ErrorDetectorMethod>> {};

TEST_P(EveryBaselineTest, EmptyAndTinyColumnsYieldNothing) {
  const auto& m = *GetParam();
  EXPECT_TRUE(m.RankColumn({}).empty()) << m.name();
  EXPECT_TRUE(m.RankColumn({"a"}).empty()) << m.name();
  EXPECT_TRUE(m.RankColumn({"a", "a"}).empty()) << m.name();
}

TEST_P(EveryBaselineTest, UniformColumnYieldsNothing) {
  const auto& m = *GetParam();
  std::vector<std::string> uniform(12, "2011-01-01");
  EXPECT_TRUE(m.RankColumn(uniform).empty()) << m.name();
}

TEST_P(EveryBaselineTest, RankedByDescendingScore) {
  const auto& m = *GetParam();
  std::vector<std::string> messy = {"1962", "1981",   "1974",  "1990",
                                    "18.5", "Sea",    "1865.", "2:45",
                                    "2003", "(1999)", "1944",  "1958"};
  auto out = m.RankColumn(messy);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].score, out[i].score) << m.name();
  }
}

TEST_P(EveryBaselineTest, RowsPointAtActualValues) {
  const auto& m = *GetParam();
  std::vector<std::string> column = DatesWithForeign();
  for (const auto& s : m.RankColumn(column)) {
    ASSERT_LT(s.row, column.size()) << m.name();
    EXPECT_EQ(column[s.row], s.value) << m.name();
  }
}

TEST_P(EveryBaselineTest, Deterministic) {
  const auto& m = *GetParam();
  auto column = YearsWithDot();
  auto a = m.RankColumn(column);
  auto b = m.RankColumn(column);
  ASSERT_EQ(a.size(), b.size()) << m.name();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, EveryBaselineTest,
    ::testing::Values(std::make_shared<FRegexDetector>(),
                      std::make_shared<PWheelDetector>(),
                      std::make_shared<DBoostDetector>(),
                      std::make_shared<LinearDetector>(),
                      std::make_shared<LinearPDetector>(),
                      std::make_shared<CdmDetector>(),
                      std::make_shared<LsaDetector>(),
                      std::make_shared<SvddDetector>(),
                      std::make_shared<DbodDetector>(),
                      std::make_shared<LofDetector>()),
    [](const auto& info) {
      std::string name(info.param->name());
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ----------------------------------------------------------------- FRegex

TEST(FRegexTest, FlagsNonConformingValueInTypedColumn) {
  FRegexDetector m;
  std::vector<std::string> emails = {"alice@example.com", "bob@mail.org",
                                     "carol@corp.net", "dave@uni.edu",
                                     "not-an-email"};
  auto out = m.RankColumn(emails);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "not-an-email");
  EXPECT_NEAR(out[0].score, 0.8, 1e-9);  // 4/5 conforming
}

TEST(FRegexTest, NoPredictionWithoutDominantType) {
  FRegexDetector m;
  // Nothing regex-typable dominates here.
  std::vector<std::string> column = {"a-1", "?x", "==", "~~", "zz9!"};
  EXPECT_TRUE(m.RankColumn(column).empty());
}

TEST(FRegexTest, Col1SeparatorsConfuseIt) {
  // The paper's Col-1: local regex typing flags the separated value.
  FRegexDetector m;
  std::vector<std::string> col;
  for (int i = 0; i < 12; ++i) col.push_back(std::to_string(100 + i));
  col.push_back("1,000");
  EXPECT_TRUE(Flags(m, col, "1,000"));
}

TEST(FRegexTest, TypeLibraryIsBroad) {
  EXPECT_GE(FRegexDetector().types().size(), 15u);
}

// ----------------------------------------------------------------- PWheel

TEST(PWheelTest, FlagsStructuralOutlier) {
  PWheelDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
  EXPECT_TRUE(Flags(m, YearsWithDot(), "1865."));
}

TEST(PWheelTest, UniformStructureClean) {
  PWheelDetector m;
  std::vector<std::string> dates;
  for (int d = 1; d <= 9; ++d) dates.push_back("2011-01-0" + std::to_string(d));
  EXPECT_TRUE(m.RankColumn(dates).empty());
}

TEST(PWheelTest, FiftyFiftyMixtureNotFlagged) {
  // The paper's Col-3 observation: MDL keeps both patterns for a 50-50 mix
  // and reports nothing.
  PWheelDetector m;
  std::vector<std::string> col;
  for (int i = 1; i <= 6; ++i) {
    col.push_back("2011-01-0" + std::to_string(i));
    col.push_back("2011/02/0" + std::to_string(i));
  }
  EXPECT_TRUE(m.RankColumn(col).empty());
}

TEST(PWheelTest, InferPatternsCoversCleanValues) {
  PWheelDetector m;
  auto patterns = m.InferPatterns(YearsWithDot());
  EXPECT_FALSE(patterns.empty());
}

// ----------------------------------------------------------------- dBoost

TEST(DBoostTest, FlagsShapeDeviant) {
  DBoostDetector m;
  EXPECT_TRUE(Flags(m, YearsWithDot(), "1865."));
}

TEST(DBoostTest, FlagsNumericSigmaOutlier) {
  DBoostDetector m;
  std::vector<std::string> col = {"10", "11", "12", "10", "11", "12",
                                  "11", "10", "12", "11", "90000"};
  EXPECT_TRUE(Flags(m, col, "90000"));
}

TEST(DBoostTest, FlagsImplausibleDateField) {
  DBoostDetector m;
  std::vector<std::string> col = {"2011-01-01", "2011-02-02", "2011-03-03",
                                  "2011-99-04", "2011-05-05"};
  EXPECT_TRUE(Flags(m, col, "2011-99-04"));
}

TEST(DBoostTest, ToleratesEpsilonFractionMixtures) {
  DBoostDetector m;
  // 50-50 mixture: no dominant mode, no shape prediction.
  std::vector<std::string> col;
  for (int i = 1; i <= 6; ++i) {
    col.push_back(std::to_string(i * 11));
    col.push_back("v" + std::to_string(i));
  }
  EXPECT_FALSE(Flags(m, col, "v1"));
}

// ----------------------------------------------------------------- Linear

TEST(LinearTest, FlagsClassDeviant) {
  LinearDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
}

TEST(LinearPTest, GeneralizationReducesFalseAlarmsOnVaryingText) {
  // Raw Linear sees each name as deviating positions; LinearP generalizes
  // first, so a same-pattern column scores cleaner.
  std::vector<std::string> names = {"Amy Lake", "Bob Hill", "Eva Rose",
                                    "Tom Wood", "Joe Dale"};
  LinearDetector raw;
  LinearPDetector generalized;
  EXPECT_LE(generalized.RankColumn(names).size(), raw.RankColumn(names).size());
}

// -------------------------------------------------------------------- LZW

TEST(LzwTest, EmptyIsZero) { EXPECT_EQ(LzwCompressedBits(""), 0u); }

TEST(LzwTest, RepetitiveCompressesBetterThanDiverse) {
  std::string repetitive(64, 'a');
  std::string diverse;
  for (int i = 0; i < 64; ++i) diverse.push_back(static_cast<char>('!' + (i * 7) % 90));
  EXPECT_LT(LzwCompressedBits(repetitive), LzwCompressedBits(diverse));
}

TEST(LzwTest, BitsGrowWithLength) {
  EXPECT_LT(LzwCompressedBits("abc"), LzwCompressedBits("abcabcabcabcXYZW"));
  EXPECT_EQ(LzwCompressedBytes("a"), 2u);  // 9 bits -> 2 bytes
}

// -------------------------------------------------------------------- CDM

TEST(CdmTest, SelfDistanceBelowCrossDistance) {
  double self = CdmDetector::Distance("\\D[4]-\\D[2]", "\\D[4]-\\D[2]");
  double cross = CdmDetector::Distance("\\D[4]-\\D[2]", "\\U\\l[6] \\l[4]");
  EXPECT_LT(self, cross);
}

TEST(CdmTest, FlagsForeignValue) {
  CdmDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
}

// -------------------------------------------------------------------- LSA

TEST(LsaTest, FlagsEntropyReducingOutlier) {
  LsaDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
}

TEST(LsaTest, BalancedTwoPatternColumnKeepsBoth) {
  LsaDetector m;
  std::vector<std::string> col;
  for (int i = 1; i <= 6; ++i) {
    col.push_back("2011-01-0" + std::to_string(i));
    col.push_back("Name" + std::to_string(i));
  }
  // Removing either half within the 30% budget cannot de-mix a 50-50
  // two-pattern column; LSA can spend at most its removal budget.
  EXPECT_LE(m.RankColumn(col).size(),
            static_cast<size_t>(LsaDetector::kMaxRemovalFraction * col.size()) + 1);
}

// ----------------------------------------------------- distance outliers

TEST(SvddTest, FlagsValueOutsideBall) {
  SvddDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
}

TEST(DbodTest, FlagsIsolatedSingleton) {
  DbodDetector m;
  EXPECT_TRUE(Flags(m, DatesWithForeign(), "Seattle"));
}

TEST(DbodTest, DuplicatedValuesAreNeverOutliers) {
  DbodDetector m;
  std::vector<std::string> col = {"x-1", "x-1", "9999", "9999", "abc", "abc"};
  EXPECT_TRUE(m.RankColumn(col).empty());
}

TEST(LofTest, FlagsLowDensityPoint) {
  LofDetector m;
  std::vector<std::string> col = {"2011-01-01", "2011-02-02", "2011-03-03",
                                  "2011-04-04", "2011-05-05", "2011-06-06",
                                  "Seattle"};
  EXPECT_TRUE(Flags(m, col, "Seattle"));
}

// ------------------------------------------------------------------ Union

TEST(UnionTest, CombinesConstituentPredictions) {
  FRegexDetector fregex;
  PWheelDetector pwheel;
  UnionDetector m({&fregex, &pwheel});
  EXPECT_EQ(m.name(), "Union");
  EXPECT_TRUE(Flags(m, YearsWithDot(), "1865."));
}

TEST(UnionTest, ScoresReflectConsensus) {
  FRegexDetector fregex;
  PWheelDetector pwheel;
  DBoostDetector dboost;
  UnionDetector m({&fregex, &pwheel, &dboost});
  auto out = m.RankColumn(YearsWithDot());
  ASSERT_FALSE(out.empty());
  // "1865." is flagged by several constituents, so it leads with a vote
  // fraction near 1; no score exceeds 1 + tiebreak.
  EXPECT_EQ(out[0].value, "1865.");
  EXPECT_GT(out[0].score, 0.5);
  for (const auto& s : out) {
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.01);
  }
}

TEST(UnionTest, EmptyConstituentsYieldNothing) {
  UnionDetector m({});
  EXPECT_TRUE(m.RankColumn(YearsWithDot()).empty());
}

// -------------------------------------------------------------- utilities

TEST(BaselineUtilTest, ClassPattern) {
  EXPECT_EQ(baseline_util::ClassPattern("2011-01-01"),
            "\\D[4]-\\D[2]-\\D[2]");
  EXPECT_EQ(baseline_util::ClassPattern("Ab1"), "\\L[2]\\D");
}

TEST(BaselineUtilTest, DistinctWithCounts) {
  auto d = baseline_util::DistinctWithCounts({"a", "b", "a", "c", "a"});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].value, "a");
  EXPECT_EQ(d[0].count, 3u);
  EXPECT_EQ(d[0].first_row, 0u);
  EXPECT_EQ(d[1].value, "b");
  EXPECT_EQ(d[1].first_row, 1u);
}

}  // namespace
}  // namespace autodetect
