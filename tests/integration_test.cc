// End-to-end integration tests: the full offline pipeline (corpus →
// statistics → supervision → calibration → selection → model) followed by
// online detection, exercised on the paper's flagship scenarios and on the
// evaluation harness.

#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/autodetect_method.h"
#include "baselines/pwheel.h"
#include "corpus/corpus_generator.h"
#include "detect/detector.h"
#include "detect/trainer.h"
#include "eval/metrics.h"
#include "eval/testcase.h"
#include "stats/stats_builder.h"

namespace autodetect {
namespace {

/// Column-scan convenience over the unified API (detect/api.h).
ColumnReport Analyze(const Detector& detector, const std::vector<std::string>& values) {
  return detector.Detect(DetectRequest{"", values}).column;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions gen;
    gen.num_columns = 8000;
    gen.inject_errors = false;
    gen.seed = 20180610;
    source_ = new GeneratedColumnSource(gen);
    TrainOptions train;
    train.memory_budget_bytes = 48ull << 20;
    train.supervision.target_positives = 10000;
    train.supervision.target_negatives = 10000;
    auto model = TrainModel(source_, train);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new Model(std::move(*model));

    source_->Reset();
    StatsBuilderOptions crude_opts;
    crude_opts.language_ids = {LanguageSpace::IdOf(LanguageSpace::CrudeG())};
    crude_ = new CorpusStats(BuildCorpusStats(source_, crude_opts));
  }
  static void TearDownTestSuite() {
    delete crude_;
    delete model_;
    delete source_;
  }

  static GeneratedColumnSource* source_;
  static Model* model_;
  static CorpusStats* crude_;
};

GeneratedColumnSource* IntegrationFixture::source_ = nullptr;
Model* IntegrationFixture::model_ = nullptr;
CorpusStats* IntegrationFixture::crude_ = nullptr;

TEST_F(IntegrationFixture, SelectsMultipleComplementaryLanguages) {
  EXPECT_GE(model_->languages.size(), 2u);
  // At least one selected language must distinguish symbols (needed for the
  // mixed-date-format class of errors).
  bool symbol_sensitive = false;
  for (const auto& l : model_->languages) {
    if (l.language().TargetFor(CharClass::kSymbol) == TreeNode::kLeaf) {
      symbol_sensitive = true;
    }
  }
  EXPECT_TRUE(symbol_sensitive);
}

TEST_F(IntegrationFixture, PaperIntroductionScenarios) {
  Detector detector(model_);

  // Col-1: trailing separated value is NOT an error.
  std::vector<std::string> col1;
  for (int i = 990; i <= 999; ++i) col1.push_back(std::to_string(i));
  col1.push_back("1,000");
  EXPECT_FALSE(Analyze(detector, col1).HasFindings());

  // Col-2: a float among integers is NOT an error.
  std::vector<std::string> col2;
  for (int i = 90; i <= 99; ++i) col2.push_back(std::to_string(i));
  col2.push_back("1.99");
  EXPECT_FALSE(Analyze(detector, col2).HasFindings());

  // Col-3: a slash date among ISO dates IS an error.
  std::vector<std::string> col3 = {"2011-01-01", "2011-01-02", "2011-01-03",
                                   "2011-01-04", "2011/01/05"};
  auto report = Analyze(detector, col3);
  ASSERT_TRUE(report.HasFindings());
  EXPECT_EQ(report.Top()->value, "2011/01/05");
}

TEST_F(IntegrationFixture, PaperExample2PairJudgments) {
  Detector detector(model_);
  // (v1, v2) from Example 2: different date separators -> incompatible.
  EXPECT_TRUE(detector.ScorePair("2011-01-01", "2011.01.02").incompatible);
  // (v3, v4): month-word vs year prefix -> incompatible.
  EXPECT_TRUE(detector.ScorePair("2014-01", "July-01").incompatible);
  // Same formats -> compatible.
  EXPECT_FALSE(detector.ScorePair("1918-01-01", "2018-12-31").incompatible);
}

TEST_F(IntegrationFixture, BeatsPWheelOnSpliceBenchmark) {
  source_->Reset();
  SpliceTestOptions opts;
  opts.num_dirty = 120;
  opts.clean_per_dirty = 5;
  auto cases = GenerateSpliceTestSet(
      source_, crude_->ForLanguage(LanguageSpace::IdOf(LanguageSpace::CrudeG())),
      opts);
  ASSERT_TRUE(cases.ok()) << cases.status().ToString();

  Detector detector(model_);
  AutoDetectMethod auto_detect(&detector);
  PWheelDetector pwheel;
  MethodEvaluation ours = EvaluateMethod(auto_detect, *cases);
  MethodEvaluation theirs = EvaluateMethod(pwheel, *cases);

  // The paper's headline: global statistics beat the local MDL approach.
  EXPECT_GT(ours.PrecisionAt(100), 0.8);
  EXPECT_GT(ours.PrecisionAt(100), theirs.PrecisionAt(100));
  // And recall is non-trivial.
  EXPECT_GT(ours.RecallAt(300), 0.5);
}

TEST_F(IntegrationFixture, HighPrecisionTargetShrinksOrKeepsCoverage) {
  // Re-running the whole pipeline at a stricter precision target must not
  // produce a more permissive model.
  source_->Reset();
  TrainOptions strict;
  strict.precision_target = 0.99;
  strict.memory_budget_bytes = 48ull << 20;
  strict.supervision.target_positives = 10000;
  strict.supervision.target_negatives = 10000;
  auto strict_model = TrainModel(source_, strict);
  ASSERT_TRUE(strict_model.ok());
  // Thresholds for languages present in both models can only move down.
  for (const auto& sl : strict_model->languages) {
    for (const auto& ll : model_->languages) {
      if (sl.lang_id == ll.lang_id) {
        EXPECT_LE(sl.threshold, ll.threshold + 1e-12);
      }
    }
  }
}

TEST_F(IntegrationFixture, DetectionSurvivesModelRoundTripThroughDisk) {
  std::string path =
      (std::filesystem::temp_directory_path() / "ad_integration_model.bin").string();
  ASSERT_TRUE(model_->Save(path).ok());
  auto loaded = Model::Load(path);
  ASSERT_TRUE(loaded.ok());
  Detector detector(&*loaded);
  std::vector<std::string> col = {"1962", "1981", "1974", "1990", "1865."};
  auto report = Analyze(detector, col);
  ASSERT_TRUE(report.HasFindings());
  EXPECT_EQ(report.Top()->value, "1865.");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace autodetect
